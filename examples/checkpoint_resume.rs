//! Checkpoint a dynamic-workload run mid-flight, then resume it from the
//! snapshot — at a *different* shard count — and verify the result document
//! is **byte-identical** to the uninterrupted run's: the crash-recovery and
//! elastic-resharding contract behind `lb run --checkpoint-every` and
//! `lb run --resume`.
//!
//! Run with: `cargo run --release -p lb-bench --example checkpoint_resume`

use lb_bench::dynamic::Session;
use lb_core::snapshot;
use lb_workloads::Scenario;

fn main() {
    // A compact sustained-load scenario: Poisson arrivals, uniform service,
    // one mid-run rewire. Any scenario file accepted by `lb run` works.
    let scenario = Scenario::parse(
        r#"{
            "name": "checkpoint_resume_demo",
            "seed": 2012,
            "rounds": 120,
            "sample_every": 30,
            "algorithm": "alg1",
            "model": "fos",
            "topology": {"family": "hypercube", "target_n": 64},
            "speeds": {"model": "uniform"},
            "initial": {
                "distribution": {"model": "single_source", "source": 0},
                "tokens_per_node": 8,
                "pad": "degree"
            },
            "arrivals": {"model": "poisson", "rate_per_node": 0.5, "max_weight": 1},
            "completions": {"model": "uniform", "weight_per_speed": 1},
            "churn": [{"round": 60, "kind": "rewire", "seed": 99}]
        }"#,
    )
    .expect("demo scenario parses");

    let rotating = std::env::temp_dir().join("lb_checkpoint_resume_demo.snapshot.jsonl");

    // 1. The uninterrupted reference run, checkpointing every 25 rounds.
    //    Each checkpoint atomically replaces the rotating file (temp file →
    //    fsync → rename), so a crash at any instant leaves the newest
    //    complete snapshot behind — never a torn one. A mid-run callback
    //    copies the rotating file aside to stand in for "the file a crash
    //    left behind".
    let mid_run = std::env::temp_dir().join("lb_checkpoint_resume_demo.mid.jsonl");
    let mid_run_copy = mid_run.clone();
    let rotating_at_callback = rotating.clone();
    let reference = Session::from_scenario(&scenario)
        .checkpoint(rotating.clone(), 25)
        .run(move |sample| {
            // At the round-60 sample the rotating file holds the round-50
            // checkpoint: the last state published before the "crash".
            if sample.round == 60 {
                std::fs::copy(&rotating_at_callback, &mid_run_copy).expect("harvest checkpoint");
            }
        })
        .expect("checkpointed run succeeds");
    let doc = reference.to_json().render_pretty();
    println!(
        "reference run: {} rounds, final max_avg = {:.2}, arrived = {}, completed = {}",
        scenario.rounds,
        reference.last().max_avg,
        reference.last().arrived_weight,
        reference.last().completed_weight,
    );

    // 2. Load the harvested snapshot. It embeds the effective scenario and
    //    the full engine state — discrete loads, task queues in pop order,
    //    the continuous twin, the imitation ledger — as exact integers and
    //    IEEE-754 bit patterns, so nothing is lost to formatting.
    let snap = snapshot::load(&mid_run).expect("snapshot loads");
    println!(
        "snapshot: captured at round {} (the run went on to 120)",
        snap.round
    );

    // 3. Resume from it. The snapshot pins the scenario and seed; the run
    //    continues from the captured round and the final document is
    //    byte-identical to the uninterrupted reference.
    let resumed = Session::from_snapshot(snap.clone())
        .run(|_| {})
        .expect("resume succeeds");
    assert_eq!(
        doc,
        resumed.to_json().render_pretty(),
        "resumed run diverged from the reference"
    );
    println!("resume is byte-identical to the uninterrupted run ✓");

    // 4. Elastic resharding: resume the same snapshot on 4 shards. The shard
    //    count only changes wall-clock parallelism — the determinism contract
    //    keeps the document byte-identical, so a snapshot is the natural
    //    migration unit for moving a run to a bigger (or smaller) machine.
    let resharded = Session::from_snapshot(snap)
        .shards(4)
        .run(|_| {})
        .expect("resharded resume succeeds");
    assert_eq!(
        doc,
        resharded.to_json().render_pretty(),
        "resharded resume diverged from the reference"
    );
    println!("resume at 4 shards is byte-identical too ✓");

    std::fs::remove_file(&rotating).ok();
    std::fs::remove_file(&mid_run).ok();
}
