//! Record a dynamic-workload run to an event trace, then replay the trace
//! through the async ingestion channel and verify the result document is
//! **byte-identical** — the trace record/replay contract behind
//! `lb run --record` and `lb replay`.
//!
//! Run with: `cargo run --release -p lb-bench --example record_replay`

use lb_bench::dynamic::{Producer, Session};
use lb_workloads::{Scenario, Trace};

fn main() {
    // A compact sustained-load scenario: Poisson arrivals, uniform service,
    // one mid-run rewire. Any scenario file accepted by `lb run` works.
    let scenario = Scenario::parse(
        r#"{
            "name": "record_replay_demo",
            "seed": 2012,
            "rounds": 120,
            "sample_every": 30,
            "algorithm": "alg1",
            "model": "fos",
            "topology": {"family": "hypercube", "target_n": 64},
            "speeds": {"model": "uniform"},
            "initial": {
                "distribution": {"model": "single_source", "source": 0},
                "tokens_per_node": 8,
                "pad": "degree"
            },
            "arrivals": {"model": "poisson", "rate_per_node": 0.5, "max_weight": 1},
            "completions": {"model": "uniform", "weight_per_speed": 1},
            "churn": [{"round": 60, "kind": "rewire", "seed": 99}]
        }"#,
    )
    .expect("demo scenario parses");

    let path = std::env::temp_dir().join("lb_record_replay_demo.trace.jsonl");

    // 1. Run and record. Recording taps the applied event stream; it never
    //    perturbs the run.
    let recorded = Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("recorded run succeeds");
    println!(
        "recorded {} rounds: final max_avg = {:.2}, arrived = {}, completed = {}",
        scenario.rounds,
        recorded.last().max_avg,
        recorded.last().arrived_weight,
        recorded.last().completed_weight,
    );

    // 2. Load the trace and replay it. The header embeds the effective
    //    scenario, so the trace is self-contained.
    let trace = Trace::load(&path).expect("trace loads");
    println!(
        "trace: {} recorded round(s), {} event(s)",
        trace.rounds.len(),
        trace.event_count()
    );
    let replayed = Session::from_trace(trace)
        .run(|_| {})
        .expect("replay succeeds");

    // 3. The contract: byte-identical result documents.
    let a = recorded.to_json().render_pretty();
    let b = replayed.to_json().render_pretty();
    assert_eq!(a, b, "replayed run diverged from the recorded run");
    println!("replay is byte-identical to the recorded run ✓");

    // The channel producer mode is equally bit-identical — same scenario,
    // same seed, events streamed through the bounded SPSC channel instead of
    // generated inline.
    let channel = Session::from_scenario(&scenario)
        .producer(Producer::Channel { capacity: 16 })
        .run(|_| {})
        .expect("channel run succeeds");
    assert_eq!(
        a,
        channel.to_json().render_pretty(),
        "channel-driven run diverged from the sync run"
    );
    println!("channel ingestion is byte-identical to the sync path ✓");

    std::fs::remove_file(&path).ok();
}
