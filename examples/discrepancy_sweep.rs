//! Size sweep: the headline property of the paper is that Algorithm 1's final
//! discrepancy does **not** grow with the network size, while the classical
//! round-down discretization's does (on tori it grows like n^(1/2)).
//!
//! This example sweeps the torus side length and prints both, making the
//! divergence visible directly in the terminal.
//!
//! Run with: `cargo run --release -p lb-bench --example discrepancy_sweep`

use lb_bench::harness::{
    measure_balancing_time, run_once, standard_initial_load, ContinuousModel, Discretizer,
    RunConfig,
};
use lb_core::Speeds;
use lb_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>8} {:>10} {:>16} {:>16}",
        "side", "n", "T (FOS)", "alg1 max-min", "round-down max-min"
    );
    for side in [8usize, 12, 16, 24, 32] {
        let graph: std::sync::Arc<lb_graph::Graph> = generators::torus(side, side)?.into();
        let n = graph.node_count();
        let d = graph.max_degree() as u64;
        let speeds = Speeds::uniform(n);
        let initial = standard_initial_load(n, 32, d);
        let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 200_000)?
            .rounds();
        let mut results = Vec::new();
        for discretizer in [Discretizer::Alg1, Discretizer::RoundDown] {
            let outcome = run_once(&RunConfig {
                graph: graph.clone(),
                speeds: speeds.clone(),
                initial: initial.clone(),
                model: ContinuousModel::Fos,
                discretizer,
                rounds: t,
                seed: 1,
            })?;
            results.push(outcome.max_min);
        }
        println!(
            "{:>6} {:>8} {:>10} {:>16.2} {:>16.2}",
            side, n, t, results[0], results[1]
        );
    }
    println!("\nAlgorithm 1 stays below 2*d + 2 = 10 at every size; round-down keeps growing.");
    Ok(())
}
