//! Quickstart: discretize first-order diffusion on a hypercube with
//! Algorithm 1 and watch the discrepancy collapse to O(d).
//!
//! Run with: `cargo run -p lb-bench --example quickstart`

use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds};
use lb_graph::{generators, AlphaScheme, DiffusionMatrix, PowerIterationOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256-node hypercube network of identical processors.
    let graph = generators::hypercube(8)?;
    let n = graph.node_count();
    let d = graph.max_degree();
    let speeds = Speeds::uniform(n);

    // 32 tokens per node on average, all initially on node 0, plus the
    // d·w_max per-node stock that Theorem 3(2) asks for.
    let mut counts = vec![d as u64; n];
    counts[0] += 32 * n as u64;
    let initial = InitialLoad::from_token_counts(counts);
    println!(
        "network: {graph}, initial max-min discrepancy = {:.0}",
        initial.initial_discrepancy(&speeds)
    );

    // How long does the *continuous* process need? (This is the paper's T.)
    let matrix = DiffusionMatrix::uniform(&graph, AlphaScheme::MaxDegreePlusOne)?;
    let lambda =
        lb_graph::spectral::second_eigenvalue(&graph, &matrix, PowerIterationOptions::default());
    println!("diffusion matrix: lambda = {lambda:.4}");

    // Discretize FOS with Algorithm 1 (deterministic flow imitation).
    let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne)?;
    let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo)?;

    for checkpoint in [10usize, 50, 100, 200, 400] {
        while alg1.round() < checkpoint {
            alg1.step();
        }
        let m = alg1.metrics();
        println!(
            "round {:>4}: max-min = {:>7.2}, max-avg = {:>7.2}, dummy tokens created = {}",
            m.round,
            m.max_min,
            m.max_avg,
            alg1.dummy_created()
        );
    }

    let bound = 2.0 * d as f64 + 2.0;
    let final_discrepancy = alg1.metrics().max_min;
    println!("final max-min discrepancy {final_discrepancy:.2} (Theorem 3 bound: {bound})");
    assert!(final_discrepancy <= bound);
    Ok(())
}
