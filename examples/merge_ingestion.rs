//! Drive one scenario through the multi-producer merge stage and through a
//! file-tailed byte-stream source, and verify both emit result JSON
//! **byte-identical** to the synchronous run — the live-ingestion contract
//! behind `lb run --producer merge:<N>` and `lb replay --follow`. Also
//! prints the per-feed backpressure report that channel-fed runs expose out
//! of band.
//!
//! Run with: `cargo run --release -p lb-bench --example merge_ingestion`

use lb_bench::dynamic::{Producer, Session};
use lb_workloads::{Scenario, TraceSource};

fn main() {
    let scenario = Scenario::parse(
        r#"{
            "name": "merge_ingestion_demo",
            "seed": 2026,
            "rounds": 120,
            "sample_every": 30,
            "algorithm": "alg1",
            "model": "fos",
            "topology": {"family": "hypercube", "target_n": 64},
            "speeds": {"model": "uniform"},
            "initial": {
                "distribution": {"model": "single_source", "source": 0},
                "tokens_per_node": 8,
                "pad": "degree"
            },
            "arrivals": {"model": "poisson", "rate_per_node": 0.5, "max_weight": 1},
            "completions": {"model": "uniform", "weight_per_speed": 1},
            "churn": [{"round": 60, "kind": "rewire", "seed": 99}]
        }"#,
    )
    .expect("demo scenario parses");

    // 1. The synchronous reference run, recorded for the byte-stream replay.
    let path = std::env::temp_dir().join("lb_merge_ingestion_demo.trace.jsonl");
    let sync = Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("sync run succeeds");
    let sync_doc = sync.to_json().render_pretty();
    println!(
        "sync: final max_avg = {:.2}, arrived = {}, completed = {}",
        sync.last().max_avg,
        sync.last().arrived_weight,
        sync.last().completed_weight,
    );

    // 2. Three producer threads, each streaming a contiguous slice of every
    //    round's batch; the k-way merge reassembles them bit for bit.
    let merged = Session::from_scenario(&scenario)
        .producer(Producer::Merge {
            feeds: 3,
            capacity: 8,
        })
        .run(|_| {})
        .expect("merged run succeeds");
    assert_eq!(
        sync_doc,
        merged.to_json().render_pretty(),
        "3-feed merge must be byte-identical to sync"
    );
    println!("merge(3): result JSON is byte-identical to the sync run");
    let stats = merged.ingest.expect("merged runs report ingest stats");
    println!("merge(3) ingest report (timing-dependent, out of band):");
    println!("{}", stats.render_pretty());

    // 3. Replay the recorded trace through the file-tail source — the same
    //    path `lb replay --follow` takes against a growing file.
    let source = TraceSource::open(&path).expect("trace tail opens");
    let tailed = Session::from_stream(Box::new(source))
        .run(|_| {})
        .expect("tail replays");
    assert_eq!(
        sync_doc,
        tailed.to_json().render_pretty(),
        "file-tailed replay must be byte-identical to sync"
    );
    println!("file tail: result JSON is byte-identical to the sync run");

    std::fs::remove_file(&path).ok();
    println!("merge ingestion contract holds: sync == merge(3) == file tail");
}
