//! Serve one scenario over a socket: an `lb serve`-style server accepts two
//! concurrent trace-streaming clients (one of which crashes mid-stream and
//! reconnects), merges their feeds into a single live engine, and produces
//! a result document **byte-identical** to the synchronous run — the socket
//! service contract behind `lb serve` and `lb serve-trace --connect`.
//!
//! Run with: `cargo run --release -p lb-bench --example socket_serve`

use lb_bench::dynamic::Session;
use lb_bench::serve::{push_trace, serve, PushOptions, ServeOptions};
use lb_workloads::{Scenario, Trace};
use std::time::Duration;

fn main() {
    let scenario = Scenario::parse(
        r#"{
            "name": "socket_serve_demo",
            "seed": 2012,
            "rounds": 60,
            "sample_every": 15,
            "algorithm": "alg1",
            "model": "fos",
            "topology": {"family": "hypercube", "target_n": 64},
            "speeds": {"model": "uniform"},
            "initial": {
                "distribution": {"model": "single_source", "source": 0},
                "tokens_per_node": 8,
                "pad": "degree"
            },
            "arrivals": {"model": "poisson", "rate_per_node": 0.5, "max_weight": 1},
            "completions": {"model": "uniform", "weight_per_speed": 1},
            "churn": []
        }"#,
    )
    .expect("demo scenario parses");

    // 1. The synchronous reference run, recorded so the clients have a
    //    stream to serve back. The header embeds the effective scenario —
    //    exactly what the server's handshake authenticates against.
    let path = std::env::temp_dir().join("lb_socket_serve_demo.trace.jsonl");
    let reference = Session::from_scenario(&scenario)
        .record(path.clone())
        .run(|_| {})
        .expect("reference run succeeds");
    let reference_doc = reference.to_json().render_pretty();
    let trace = Trace::load(&path).expect("trace loads");
    std::fs::remove_file(&path).ok();
    println!(
        "reference: {} rounds recorded, final max_avg = {:.2}",
        trace.rounds.len(),
        reference.last().max_avg,
    );

    // 2. Start the server on an ephemeral port; it publishes the bound
    //    address through --listen-info so clients never race the bind. The
    //    engine starts once both clients have completed their handshake.
    let info = std::env::temp_dir().join("lb_socket_serve_demo.addr.json");
    let options = ServeOptions {
        clients: 2,
        reconnect_timeout: Duration::from_secs(10),
        listen_info: Some(info.clone()),
        ..ServeOptions::default()
    };
    let server = {
        let scenario = scenario.clone();
        std::thread::spawn(move || serve(&scenario, &options, |_| {}))
    };
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&info) {
            if let Ok(json) = lb_analysis::Json::parse(text.trim()) {
                if let Some(addr) = json.get("addr").and_then(lb_analysis::Json::as_str) {
                    break addr.to_string();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    println!("server listening on {addr}");

    // 3. Two striped clients: "even" carries the even-indexed round
    //    records, "odd" the rest. No two feeds share a round, which is what
    //    keeps the served run byte-identical no matter the admission order.
    //    The "even" client crashes after 5 records (dropping the socket
    //    without the sealing end record), then reconnects: the welcome's
    //    last_round tells it where to resume.
    let odd = {
        let trace = trace.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut push = PushOptions::feed("odd");
            push.stride = (2, 1);
            push_trace(&addr, &trace, &push).expect("odd feed streams")
        })
    };
    let mut push = PushOptions::feed("even");
    push.stride = (2, 0);
    push.abort_after = Some(5);
    let crashed = push_trace(&addr, &trace, &push).expect("even feed connects");
    println!(
        "even feed crashed after {} record(s) (no end record)",
        crashed.rounds_sent
    );
    push.abort_after = None;
    let resumed = loop {
        // The server parks the dropped feed once it observes the hang-up;
        // until then the name is briefly still "connected".
        match push_trace(&addr, &trace, &push) {
            Ok(report) => break report,
            Err(err) if err.to_string().contains("already connected") => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => panic!("reconnect failed: {err}"),
        }
    };
    println!(
        "even feed reconnected, resumed after round {:?}, sent {} more record(s)",
        resumed.resumed_after, resumed.rounds_sent
    );

    // 4. The contract: the served run's result document is byte-identical
    //    to the synchronous reference, crash and all.
    odd.join().expect("odd client");
    let outcome = server
        .join()
        .expect("server thread")
        .expect("serve run succeeds");
    assert_eq!(
        reference_doc,
        outcome.to_json().render_pretty(),
        "served run diverged from the synchronous reference"
    );
    println!("served run is byte-identical to the synchronous reference ✓");
    let stats = outcome.ingest.expect("served runs report ingest stats");
    println!("per-connection ingest report (timing-dependent, out of band):");
    println!("{}", stats.render_pretty());
    std::fs::remove_file(&info).ok();
}
