//! Single-port networks: balancing with matching-based models.
//!
//! Many interconnects can only talk to one neighbour per round. This example
//! runs the two matching models of the paper — periodic matchings from an
//! edge colouring, and fresh random matchings every round — and discretizes
//! both with Algorithm 1 and Algorithm 2, comparing against the round-down
//! baseline.
//!
//! Run with: `cargo run -p lb-bench --example matching_models`

use lb_bench::harness::{
    build_balancer, measure_balancing_time, standard_initial_load, ContinuousModel, Discretizer,
    RunConfig,
};
use lb_core::Speeds;
use lb_graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph: std::sync::Arc<lb_graph::Graph> = generators::random_regular(
        256,
        4,
        &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
    )?
    .into();
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let speeds = Speeds::uniform(n);
    let initial = standard_initial_load(n, 32, d);

    println!("network: {graph}\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "model", "T (rounds)", "algorithm", "max-min"
    );

    for model in [
        ContinuousModel::PeriodicMatching,
        ContinuousModel::RandomMatching { seed: 99 },
    ] {
        let t = measure_balancing_time(&graph, &speeds, &initial, model, 200_000)?.rounds();
        for discretizer in [Discretizer::Alg1, Discretizer::Alg2, Discretizer::RoundDown] {
            let mut balancer = build_balancer(&RunConfig {
                graph: graph.clone(),
                speeds: speeds.clone(),
                initial: initial.clone(),
                model,
                discretizer,
                rounds: t,
                seed: 5,
            })?;
            balancer.run(t);
            println!(
                "{:<22} {:>12} {:>12} {:>12.2}",
                model.label(),
                t,
                discretizer.label(),
                balancer.metrics().max_min
            );
        }
        println!();
    }

    println!(
        "Algorithm 1 ends within 2*d + 2 = {} in both models, independent of n;\n\
         the round-down baseline keeps a larger residual discrepancy.",
        2 * d + 2
    );
    Ok(())
}
