//! Dynamic workloads in ~60 lines: build a [`Scenario`] in code, run it
//! through the scenario driver, and watch the discrepancy stay O(d)-bounded
//! under sustained Poisson load, an adversarial hot-spot phase, and an edge-
//! churn event — none of which exist in the paper's static-drain setting.
//!
//! Run with: `cargo run --release -p lb-bench --example dynamic_arrivals`
//!
//! The same scenario, as JSON, lives at `examples/scenario_poisson.json` and
//! runs via the unified CLI: `lb run examples/scenario_poisson.json`.

use lb_bench::dynamic::Session;
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
};

fn main() -> Result<(), lb_bench::error::BenchError> {
    let scenario = Scenario {
        name: "example_dynamic".into(),
        seed: 42,
        rounds: 300,
        sample_every: 30,
        algorithm: AlgorithmSpec::Alg1,
        model: ModelSpec::Fos,
        topology: TopologySpec {
            family: "expander".into(),
            target_n: 128,
        },
        speeds: SpeedSpec::Uniform,
        initial: InitialSpec {
            distribution: TokenDistribution::SingleSource { source: 0 },
            tokens_per_node: 8,
            pad: PadSpec::Degree,
        },
        // Half a task per node per round arrives on random nodes…
        arrivals: ArrivalSpec::Poisson {
            rate_per_node: 0.5,
            max_weight: 1,
        },
        // …while every node can complete one unit of work per round.
        completions: ServiceSpec::Uniform {
            weight_per_speed: 1,
        },
        // Mid-run, the expander is rewired (edge churn): the imitation
        // ledger resets and balancing continues on the new topology.
        churn: vec![ChurnEvent {
            round: 150,
            kind: ChurnKind::Rewire { seed: 7 },
        }],
        shards: 1,
        federation: 1,
    };

    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>10}",
        "round", "max-min", "real", "arrived", "dummy"
    );
    let outcome = Session::from_scenario(&scenario).run(|s| {
        println!(
            "{:<8} {:>8.2} {:>10.0} {:>12} {:>10}",
            s.round, s.max_min, s.real_weight, s.arrived_weight, s.dummy_load
        );
    })?;

    let d = 4.0; // random 4-regular expander
    let last = outcome.last();
    println!(
        "\nfinal max-min discrepancy {:.2} (graph degree bound regime 2d+2 = {}), \
         {} tasks arrived, {} completed, {} dummies created",
        last.max_min,
        2.0 * d + 2.0,
        last.arrived_weight,
        last.completed_weight,
        outcome.dummy_created
    );
    assert!(
        last.max_min <= 8.0 * d + 2.0,
        "discrepancy left the O(d) regime"
    );
    Ok(())
}
