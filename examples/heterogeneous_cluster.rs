//! A heterogeneous compute cluster: processors of different speeds, jobs of
//! different sizes, balanced with Algorithm 1 over the cluster's switch
//! topology.
//!
//! This is the workload the paper's general model targets: the goal is to
//! equalise *makespans* `load / speed`, not raw loads, while moving only
//! whole jobs.
//!
//! Run with: `cargo run -p lb-bench --example heterogeneous_cluster`

use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::metrics;
use lb_graph::{generators, AlphaScheme};
use lb_workloads::{pad_for_min_load, weighted_load, SpeedModel, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // A 12x12 torus of machines; a third run at 1x, a third at 2x, a third at
    // 4x speed.
    let graph = generators::torus(12, 12)?;
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let speeds = SpeedModel::PowersOfTwo { classes: 3 }.generate(n, &mut rng);

    // A burst of 2000 jobs with sizes 1..=8 lands on one ingress node.
    let w_max = 8u64;
    let mut jobs_per_node = vec![0u64; n];
    jobs_per_node[0] = 2_000;
    let burst = weighted_load(
        &jobs_per_node,
        WeightModel::UniformRange { w_max },
        &mut rng,
    );
    // Every machine keeps a small local queue (d·w_max per speed unit) so the
    // max-min guarantee of Theorem 3(2) applies.
    let initial = pad_for_min_load(&burst, &speeds, d * w_max);

    println!(
        "cluster: {} machines ({} total speed), {} jobs, w_max = {}",
        n,
        speeds.total(),
        initial.task_count(),
        initial.max_weight()
    );
    println!(
        "initial worst makespan: {:.1} (balanced would be {:.1})",
        metrics::max_makespan(&initial.load_vector_f64(), &speeds),
        metrics::balanced_makespan(&initial.load_vector_f64(), &speeds),
    );

    let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne)?;
    let mut balancer = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::LargestFirst)?;

    let mut round = 0usize;
    while round < 3_000 {
        balancer.step();
        round += 1;
        if round.is_multiple_of(500) {
            let m = balancer.metrics();
            println!(
                "round {round:>5}: worst makespan = {:>8.1}, max-min discrepancy = {:>6.1}",
                m.max_makespan, m.max_min
            );
        }
        if balancer.continuous().is_balanced(1.0) && round >= 500 {
            break;
        }
    }

    let m = balancer.metrics();
    let bound = 2.0 * d as f64 * w_max as f64 + 2.0;
    println!(
        "done after {round} rounds: max-min discrepancy = {:.1} (bound 2*d*w_max + 2 = {bound}), \
         dummy jobs created = {}",
        m.max_min,
        balancer.dummy_created()
    );
    assert!(m.max_min <= bound);
    Ok(())
}
