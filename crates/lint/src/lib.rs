//! `lb-lint` — repo-native static analysis for the load-balancing workspace.
//!
//! The engine's guarantees (bit-identical trajectories across shard counts
//! and producer modes, allocation-free steady-state rounds, exact-integer
//! serialization, typed located errors, atomic artefact publication) are
//! contracts the test suite can only sample. This crate enforces them at the
//! source level: a hand-rolled comment/string/raw-string-aware tokenizer
//! ([`tokenizer`]), a token-sequence rule set ([`rules`], R01–R06 plus the
//! R00 suppression-hygiene meta-rule), and a small strict `lint.toml`
//! config ([`config`]) scoping rules to crates and modules.
//!
//! The CLI front-end is `lb lint [--format human|json] [PATHS…]` in
//! `lb-bench`; this crate is the engine. Typical embedding:
//!
//! ```no_run
//! let linter = lb_lint::Linter::load(std::path::Path::new(".")).unwrap();
//! let findings = linter.lint_workspace().unwrap();
//! for f in &findings {
//!     println!("{}", f.human());
//! }
//! ```
//!
//! Everything is deterministic: the walk visits files in sorted order and
//! findings are sorted by (file, line, col, rule), so two runs over the same
//! tree produce byte-identical reports.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lb_analysis::json::Json;

pub mod config;
pub mod rules;
pub mod tokenizer;

pub use config::{Config, Scope};
pub use rules::{known_rule, lint_source, RuleInfo, RULES};

/// One located diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `/`-separated path, relative to the lint root.
    pub file: String,
    /// 1-based line of the anchoring token.
    pub line: usize,
    /// 1-based byte column of the anchoring token.
    pub col: usize,
    /// Rule id (`R00` … `R06`).
    pub rule: &'static str,
    /// What is wrong and which contract it breaks.
    pub message: String,
    /// The trimmed source line the finding anchors to.
    pub snippet: String,
}

impl Finding {
    /// `file:line:col` — the clickable anchor.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }

    /// The rule's short name (`nondeterminism`, `truncating-cast`, …).
    pub fn rule_name(&self) -> &'static str {
        RULES
            .iter()
            .find(|r| r.id == self.rule)
            .map_or("unknown", |r| r.name)
    }

    /// Two-line human rendering: location + rule + message, then the
    /// offending source line.
    pub fn human(&self) -> String {
        format!(
            "{}: {} [{}] {}\n    {}",
            self.location(),
            self.rule,
            self.rule_name(),
            self.message,
            self.snippet
        )
    }

    /// The finding as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Int(self.line as i128)),
            ("col", Json::Int(self.col as i128)),
            ("rule", Json::Str(self.rule.to_string())),
            ("name", Json::Str(self.rule_name().to_string())),
            ("message", Json::Str(self.message.clone())),
            ("snippet", Json::Str(self.snippet.clone())),
        ])
    }
}

/// Renders a whole report as the `lb lint --format json` document.
pub fn report_json(findings: &[Finding]) -> Json {
    Json::obj([
        ("version", Json::Int(1)),
        ("count", Json::Int(findings.len() as i128)),
        (
            "findings",
            Json::Arr(findings.iter().map(Finding::to_json).collect()),
        ),
    ])
}

/// Why a lint run could not complete (distinct from findings: findings are
/// the *successful* output).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// `lint.toml` is malformed (message carries the line number).
    Config { path: PathBuf, message: String },
    /// An explicitly requested path does not exist or is not lintable.
    BadPath { path: PathBuf },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "{}: {}", path.display(), source)
            }
            LintError::Config { path, message } => {
                write!(f, "{}: {}", path.display(), message)
            }
            LintError::BadPath { path } => {
                write!(f, "{}: not a lintable file or directory", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The linter: a root directory plus the `lint.toml` config found there.
pub struct Linter {
    root: PathBuf,
    config: Config,
}

impl Linter {
    /// Loads the linter for `root`, reading `root/lint.toml` when present
    /// (a missing config means "lint everything, all rules everywhere").
    ///
    /// # Errors
    ///
    /// Returns [`LintError::Config`] for a malformed `lint.toml` and
    /// [`LintError::Io`] when the file exists but cannot be read.
    pub fn load(root: &Path) -> Result<Linter, LintError> {
        let config_path = root.join("lint.toml");
        let config = match fs::read_to_string(&config_path) {
            Ok(text) => Config::parse(&text).map_err(|message| LintError::Config {
                path: config_path.clone(),
                message,
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Config::default(),
            Err(source) => {
                return Err(LintError::Io {
                    path: config_path,
                    source,
                })
            }
        };
        Ok(Linter {
            root: root.to_path_buf(),
            config,
        })
    }

    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Lints every `.rs` file under the root that the `[paths]` scope
    /// covers. Findings come back sorted by (file, line, col, rule).
    ///
    /// # Errors
    ///
    /// Returns [`LintError::Io`] when the walk or a file read fails.
    pub fn lint_workspace(&self) -> Result<Vec<Finding>, LintError> {
        self.lint_paths(std::slice::from_ref(&self.root))
    }

    /// Lints an explicit set of files and/or directories. Directories are
    /// walked recursively with the `[paths]` scope applied; explicitly
    /// named files are always linted, scope or not (naming a file is the
    /// stronger signal).
    ///
    /// # Errors
    ///
    /// Returns [`LintError::BadPath`] for a path that is neither a file nor
    /// a directory, and [`LintError::Io`] for read failures.
    pub fn lint_paths(&self, paths: &[PathBuf]) -> Result<Vec<Finding>, LintError> {
        let mut files = Vec::new();
        for path in paths {
            if path.is_dir() {
                self.walk(path, &mut files)?;
            } else if path.is_file() {
                files.push(path.clone());
            } else {
                return Err(LintError::BadPath { path: path.clone() });
            }
        }
        files.sort();
        files.dedup();
        let mut findings = Vec::new();
        for file in &files {
            let rel = self.rel(file);
            let src = fs::read_to_string(file).map_err(|source| LintError::Io {
                path: file.clone(),
                source,
            })?;
            findings.extend(rules::lint_source(&rel, &src, &self.config));
        }
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        Ok(findings)
    }

    /// Collects the `.rs` files under `dir` in sorted order, skipping
    /// `target/`, `.git/` and other dot-directories, and applying the
    /// `[paths]` include/exclude scope.
    fn walk(&self, dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), LintError> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)
            .map_err(|source| LintError::Io {
                path: dir.to_path_buf(),
                source,
            })?
            .map(|entry| {
                entry.map(|e| e.path()).map_err(|source| LintError::Io {
                    path: dir.to_path_buf(),
                    source,
                })
            })
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                // Prune excluded subtrees early; descend into included (or
                // potentially-included) ones.
                let rel = self.rel(&path);
                if !rel.is_empty() && !self.config.paths.could_contain(&rel) {
                    continue;
                }
                self.walk(&path, files)?;
            } else if name.ends_with(".rs") {
                let rel = self.rel(&path);
                if self.config.paths.contains(&rel) {
                    files.push(path);
                }
            }
        }
        Ok(())
    }

    /// The `/`-separated root-relative form of `path` (used for scoping and
    /// reporting). Paths outside the root are rendered as given.
    fn rel(&self, path: &Path) -> String {
        let rel = path.strip_prefix(&self.root).unwrap_or(path);
        rel.to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let findings = vec![Finding {
            file: "crates/core/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            rule: "R01",
            message: "wall-clock read".to_string(),
            snippet: "let t = SystemTime::now();".to_string(),
        }];
        let doc = report_json(&findings);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("count"), Some(&Json::Int(1)));
        let arr = match parsed.get("findings") {
            Some(Json::Arr(items)) => items,
            other => panic!("findings not an array: {other:?}"),
        };
        assert_eq!(arr[0].get("rule"), Some(&Json::Str("R01".to_string())));
        assert_eq!(
            arr[0].get("name"),
            Some(&Json::Str("nondeterminism".to_string()))
        );
        assert_eq!(arr[0].get("line"), Some(&Json::Int(3)));
    }

    #[test]
    fn human_rendering_is_clickable() {
        let f = Finding {
            file: "crates/x.rs".to_string(),
            line: 10,
            col: 5,
            rule: "R03",
            message: "no panics".to_string(),
            snippet: "x.unwrap();".to_string(),
        };
        let text = f.human();
        assert!(text.starts_with("crates/x.rs:10:5: R03 [panic-in-library] no panics"));
        assert!(text.ends_with("    x.unwrap();"));
    }
}
