//! The `lint.toml` configuration: which files the workspace walk covers and
//! which crates/modules each rule applies to.
//!
//! This is a hand-rolled parser for the small TOML subset the linter needs
//! (the container has no registry access, so no `toml` crate): `#` comments,
//! `[section]` / `[rules.RXX]` headers, and `key = [ "string", … ]` arrays.
//! Parsing is strict — unknown sections, unknown keys and malformed values
//! are located errors, so a typo in the config fails loudly instead of
//! silently widening or narrowing a rule's scope.

use std::collections::BTreeMap;

/// An include/exclude path scope. Paths are `/`-separated and relative to
/// the workspace root (the directory holding `lint.toml`); a path matches a
/// file when it is a whole-component prefix of the file's relative path.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub include: Vec<String>,
    pub exclude: Vec<String>,
}

impl Scope {
    /// Whether `rel` (a `/`-separated workspace-relative path) is inside
    /// this scope: under some include root (an empty include list means
    /// "everywhere") and under no exclude root.
    pub fn contains(&self, rel: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|p| path_has_prefix(rel, p));
        included && !self.exclude.iter().any(|p| path_has_prefix(rel, p))
    }

    /// Whether the *directory* `rel` might hold in-scope files — used to
    /// prune whole subtrees during the walk. A directory qualifies when it
    /// is not excluded and either sits under an include root or is an
    /// ancestor of one (walking `crates` must still descend toward an
    /// include of `crates/core/src`).
    pub fn could_contain(&self, rel: &str) -> bool {
        let included = self.include.is_empty()
            || self
                .include
                .iter()
                .any(|p| path_has_prefix(rel, p) || path_has_prefix(p, rel));
        included && !self.exclude.iter().any(|p| path_has_prefix(rel, p))
    }
}

/// `prefix` matches `rel` only on whole path components: `crates/core`
/// covers `crates/core/src/lib.rs` but not `crates/core-extras/x.rs`.
fn path_has_prefix(rel: &str, prefix: &str) -> bool {
    match rel.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

/// The parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// The workspace file set: which paths the walk visits at all.
    pub paths: Scope,
    /// Per-rule scopes, keyed by rule id (`R01` … `R06`). A rule with no
    /// entry applies to every walked file.
    pub rules: BTreeMap<String, Scope>,
}

impl Default for Config {
    /// The zero-config default: lint everything under the root.
    fn default() -> Self {
        Config {
            paths: Scope::default(),
            rules: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Whether `rule` applies to the workspace-relative file `rel`.
    pub fn rule_applies(&self, rule: &str, rel: &str) -> bool {
        self.rules.get(rule).is_none_or(|scope| scope.contains(rel))
    }

    /// Parses a `lint.toml` document. Errors carry the 1-based line number.
    ///
    /// # Errors
    ///
    /// Returns a located message for unknown sections/keys, malformed
    /// headers, non-array values and unterminated strings.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0;
        while i < lines.len() {
            let lineno = i + 1;
            let line = strip_comment(lines[i]).trim().to_string();
            i += 1;
            let line = line.as_str();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                    .trim();
                match name {
                    "paths" => section = Some("paths".to_string()),
                    _ => match name.strip_prefix("rules.") {
                        Some(rule) if is_rule_id(rule) => section = Some(rule.to_string()),
                        _ => {
                            return Err(format!(
                                "line {lineno}: unknown section [{name}] \
                                 (want [paths] or [rules.RXX])"
                            ));
                        }
                    },
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = [\"…\"]`"))?;
            let key = key.trim();
            if key != "include" && key != "exclude" {
                return Err(format!(
                    "line {lineno}: unknown key {key:?} (want include or exclude)"
                ));
            }
            // Arrays may span lines: keep appending until the `]` closes.
            let mut value = value.trim().to_string();
            while value.starts_with('[') && !value.ends_with(']') {
                let Some(next) = lines.get(i) else {
                    return Err(format!("line {lineno}: unterminated array"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
                value = value.trim_end().to_string();
                i += 1;
            }
            let items = parse_string_array(&value).map_err(|e| format!("line {lineno}: {e}"))?;
            let scope = match section.as_deref() {
                Some("paths") => &mut config.paths,
                Some(rule) => config.rules.entry(rule.to_string()).or_default(),
                None => {
                    return Err(format!(
                        "line {lineno}: {key} outside any [paths]/[rules.RXX] section"
                    ));
                }
            };
            let target = if key == "include" {
                &mut scope.include
            } else {
                &mut scope.exclude
            };
            target.extend(items);
            continue;
        }
        Ok(config)
    }
}

/// Rule ids are `R` followed by digits (`R01`, `R00`, `R12`).
fn is_rule_id(s: &str) -> bool {
    s.len() >= 2 && s.starts_with('R') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

/// Drops a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_string = !in_string,
            b'\\' if in_string => i += 1,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses `[ "a", "b" ]` (trailing comma allowed).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"…\"] array, got {value:?}"))?;
    let mut items = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let body = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted string in {value:?}"))?;
        let end = body
            .find('"')
            .ok_or_else(|| format!("unterminated string in {value:?}"))?;
        items.push(body[..end].to_string());
        rest = body[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected `,` between strings in {value:?}"));
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let config = Config::parse(
            "# repo lint scopes\n\
             [paths]\n\
             include = [\"crates\"]\n\
             exclude = [\"crates/bench/benches\", \"compat\"] # trailing\n\
             \n\
             [rules.R01]\n\
             include = [\"crates/core/src\"]\n",
        )
        .unwrap();
        assert_eq!(config.paths.include, ["crates"]);
        assert_eq!(config.paths.exclude, ["crates/bench/benches", "compat"]);
        assert!(config.rule_applies("R01", "crates/core/src/lib.rs"));
        assert!(!config.rule_applies("R01", "crates/graph/src/lib.rs"));
        // Rules without a section apply everywhere.
        assert!(config.rule_applies("R04", "crates/graph/src/lib.rs"));
    }

    #[test]
    fn scope_matching_is_component_wise() {
        let scope = Scope {
            include: vec!["crates/core".into()],
            exclude: vec!["crates/core/src/ingest.rs".into()],
        };
        assert!(scope.contains("crates/core/src/lib.rs"));
        assert!(scope.contains("crates/core"));
        assert!(!scope.contains("crates/core-extras/lib.rs"));
        assert!(!scope.contains("crates/core/src/ingest.rs"));
    }

    #[test]
    fn strict_errors_are_located() {
        for (text, needle) in [
            ("[nope]\n", "unknown section"),
            ("[rules.bogus]\n", "unknown section"),
            ("[paths]\ncolor = [\"x\"]\n", "unknown key"),
            ("include = [\"x\"]\n", "outside any"),
            ("[paths]\ninclude = \"x\"\n", "array"),
            ("[paths]\ninclude = [\"x]\n", "unterminated"),
            ("[paths\n", "unterminated section header"),
            ("[paths]\ninclude = [\"a\" \"b\"]\n", "expected `,`"),
        ] {
            let err = Config::parse(text).unwrap_err();
            assert!(err.contains("line "), "{err}");
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn arrays_may_span_lines() {
        let config = Config::parse(
            "[paths]\n\
             include = [\n\
                 \"crates/core\", # engine\n\
                 \"crates/graph\",\n\
             ]\n",
        )
        .unwrap();
        assert_eq!(config.paths.include, ["crates/core", "crates/graph"]);
        let err = Config::parse("[paths]\ninclude = [\n\"a\",\n").unwrap_err();
        assert!(err.contains("unterminated array"), "{err}");
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let config = Config::parse("[paths]\ninclude = [\"a#b\"]\n").unwrap();
        assert_eq!(config.paths.include, ["a#b"]);
    }
}
