//! The rule set and the per-file analysis pass.
//!
//! Every rule enforces a contract the repo already promises dynamically
//! (ROADMAP: "Determinism contract", "Buffer-reuse contract", "Atomic
//! publication", the typed-error taxonomies) — the linter moves the check
//! from the code path a test happens to execute to the source itself.
//!
//! Rules match token sequences from [`crate::tokenizer`], so literals and
//! comments can never trigger them. Code under a `#[test]` function or a
//! `#[cfg(test)]` module is exempt from every rule. Individual findings are
//! suppressed with an inline directive on the offending line or the line
//! above:
//!
//! ```text
//! // lint: allow(R01, out-of-band backpressure metrics, never in results)
//! ```
//!
//! A suppression without a reason — or with an unknown rule id, or any
//! unrecognized directive — is itself a finding (R00): the suppression
//! ledger must stay auditable.

use crate::config::Config;
use crate::tokenizer::{tokenize, Token, TokenKind};
use crate::Finding;

/// One rule's documentation row (also rendered by `lb lint --help` docs and
/// the ROADMAP table).
pub struct RuleInfo {
    pub id: &'static str,
    pub name: &'static str,
    /// The repo contract the rule enforces.
    pub contract: &'static str,
}

/// The shipped rule set.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R00",
        name: "suppression-hygiene",
        contract: "every `lint: allow` carries a rule id and a reason; \
                   unknown directives are findings, never silently ignored",
    },
    RuleInfo {
        id: "R01",
        name: "nondeterminism",
        contract: "engine/serialization code is bit-identical across shard \
                   counts and producer modes: no wall clocks, no \
                   RandomState iteration order",
    },
    RuleInfo {
        id: "R02",
        name: "truncating-cast",
        contract: "parsing/serialization keeps integers exact end to end: \
                   conversions go through checked paths, never `as`",
    },
    RuleInfo {
        id: "R03",
        name: "panic-in-library",
        contract: "fallible library paths return the typed taxonomies \
                   (CoreError/SnapshotError/BenchError), they do not panic",
    },
    RuleInfo {
        id: "R04",
        name: "non-atomic-artefact",
        contract: "artefacts publish through write_bytes_atomic \
                   (temp + fsync + rename): no torn files, ever",
    },
    RuleInfo {
        id: "R05",
        name: "alloc-in-hot-path",
        contract: "functions annotated `// lint: zero-alloc` keep \
                   steady-state rounds off the heap (tests/zero_alloc.rs \
                   is the runtime twin of this rule)",
    },
    RuleInfo {
        id: "R06",
        name: "deprecated-driver-call",
        contract: "new code drives runs through the builder-style Session \
                   API, not the deprecated pre-Session entry points",
    },
];

/// The six deprecated pre-`Session` driver entry points (R06).
const DEPRECATED_DRIVERS: &[&str] = &[
    "run_scenario",
    "run_scenario_with",
    "replay_trace",
    "replay_source",
    "resume_run",
    "resume_replay",
];

/// Integer cast targets R02 flags.
const INT_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Is `id` a known rule id?
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Lints one file's source text. `rel` is the `/`-separated
/// workspace-relative path used for rule scoping and reporting.
pub fn lint_source(rel: &str, src: &str, config: &Config) -> Vec<Finding> {
    let tokens = tokenize(src);
    let analysis = FileAnalysis::new(rel, src, &tokens, config);
    analysis.run()
}

/// A parsed `// lint: allow(rule, reason)` suppression.
struct Suppression {
    line: usize,
    rule: String,
}

struct FileAnalysis<'a> {
    rel: &'a str,
    src: &'a str,
    /// The full token stream (comments included).
    tokens: &'a [Token<'a>],
    /// Indices into `tokens` of non-comment tokens, in order.
    code: Vec<usize>,
    config: &'a Config,
    suppressions: Vec<Suppression>,
    /// Byte ranges of `#[test]` / `#[cfg(test)]` items (rule-exempt).
    test_regions: Vec<(usize, usize)>,
    /// Byte ranges of `// lint: zero-alloc` function bodies (R05 scope).
    zero_alloc_regions: Vec<(usize, usize)>,
    findings: Vec<Finding>,
}

impl<'a> FileAnalysis<'a> {
    fn new(rel: &'a str, src: &'a str, tokens: &'a [Token<'a>], config: &'a Config) -> Self {
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        FileAnalysis {
            rel,
            src,
            tokens,
            code,
            config,
            suppressions: Vec::new(),
            test_regions: Vec::new(),
            zero_alloc_regions: Vec::new(),
            findings: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Finding> {
        self.collect_directives();
        self.collect_test_regions();
        self.match_rules();
        self.findings
            .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        self.findings
    }

    // ----- findings plumbing -------------------------------------------

    /// Records a finding at `token` unless it is suppressed, inside test
    /// code, or out of the rule's configured scope.
    fn report(&mut self, rule: &'static str, token: &Token<'_>, message: String) {
        if !self.config.rule_applies(rule, self.rel) {
            return;
        }
        if self.in_test_region(token.offset) {
            return;
        }
        if self
            .suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line == token.line || s.line + 1 == token.line))
        {
            return;
        }
        self.push_finding(rule, token, message);
    }

    /// Records a finding unconditionally (R00 directive hygiene: a broken
    /// suppression must not be able to suppress itself).
    fn push_finding(&mut self, rule: &'static str, token: &Token<'_>, message: String) {
        let snippet = self
            .src
            .lines()
            .nth(token.line - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        self.findings.push(Finding {
            file: self.rel.to_string(),
            line: token.line,
            col: token.col,
            rule,
            message,
            snippet,
        });
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    fn in_zero_alloc_region(&self, offset: usize) -> bool {
        self.zero_alloc_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    // ----- directives ---------------------------------------------------

    fn collect_directives(&mut self) {
        for (i, token) in self.tokens.iter().enumerate() {
            if token.kind != TokenKind::LineComment {
                continue;
            }
            let Some(directive) = directive_text(token.text) else {
                continue;
            };
            if directive == "zero-alloc" {
                self.mark_zero_alloc_fn(i, token);
            } else if let Some(body) = directive.strip_prefix("allow") {
                self.parse_allow(body, token);
            } else {
                let message = format!(
                    "unrecognized lint directive {directive:?} \
                     (want `allow(RXX, reason)` or `zero-alloc`)"
                );
                self.push_finding("R00", token, message);
            }
        }
    }

    fn parse_allow(&mut self, body: &str, token: &Token<'_>) {
        let inner = body
            .trim_start()
            .strip_prefix('(')
            .and_then(|b| b.trim_end().strip_suffix(')'));
        let Some(inner) = inner else {
            self.push_finding(
                "R00",
                token,
                "malformed suppression: want `allow(RXX, reason)`".to_string(),
            );
            return;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((rule, reason)) => (rule.trim(), reason.trim()),
            None => (inner.trim(), ""),
        };
        if !known_rule(rule) {
            self.push_finding(
                "R00",
                token,
                format!("suppression names unknown rule {rule:?}"),
            );
            return;
        }
        if reason.is_empty() {
            self.push_finding(
                "R00",
                token,
                format!("suppression of {rule} without a reason"),
            );
            return;
        }
        self.suppressions.push(Suppression {
            line: token.line,
            rule: rule.to_string(),
        });
    }

    /// Resolves a `zero-alloc` directive at token index `i` to the body of
    /// the next `fn` and records it as an R05 region.
    fn mark_zero_alloc_fn(&mut self, i: usize, token: &Token<'_>) {
        let fn_idx = self.tokens[i + 1..]
            .iter()
            .position(|t| t.kind == TokenKind::Ident && t.text == "fn")
            .map(|off| i + 1 + off);
        let body = fn_idx.and_then(|f| self.find_body_open(f + 1));
        match body {
            Some(open) => {
                let close = self.match_delim(open, b'{', b'}');
                let end = self.tokens[close].offset + self.tokens[close].text.len();
                self.zero_alloc_regions
                    .push((self.tokens[open].offset, end));
            }
            None => self.push_finding(
                "R00",
                token,
                "dangling zero-alloc directive: no following fn body".to_string(),
            ),
        }
    }

    // ----- structural scanning -----------------------------------------

    /// From token index `from`, finds the `{` opening the current item's
    /// body — the first top-level `{` outside parens/brackets (so `;`
    /// inside `[u8; 4]` or a signature's parens never confuses it).
    /// Returns `None` if the item ends with `;` first (no body) or the
    /// file ends.
    fn find_body_open(&self, from: usize) -> Option<usize> {
        let mut parens = 0i32;
        let mut brackets = 0i32;
        for (k, t) in self.tokens.iter().enumerate().skip(from) {
            match t.kind {
                TokenKind::Punct(b'(') => parens += 1,
                TokenKind::Punct(b')') => parens -= 1,
                TokenKind::Punct(b'[') => brackets += 1,
                TokenKind::Punct(b']') => brackets -= 1,
                TokenKind::Punct(b'{') if parens == 0 && brackets == 0 => return Some(k),
                TokenKind::Punct(b';') if parens == 0 && brackets == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// Index of the token closing the delimiter opened at `open` (or the
    /// last token, for unbalanced files).
    fn match_delim(&self, open: usize, open_ch: u8, close_ch: u8) -> usize {
        let mut depth = 0i32;
        for (k, t) in self.tokens.iter().enumerate().skip(open) {
            match t.kind {
                TokenKind::Punct(c) if c == open_ch => depth += 1,
                TokenKind::Punct(c) if c == close_ch => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Marks every `#[test]` / `#[cfg(test)]` item's byte range as exempt.
    /// `#[cfg(not(test))]` guards *non*-test code and is deliberately not
    /// a test marker.
    fn collect_test_regions(&mut self) {
        let mut i = 0;
        while i < self.tokens.len() {
            if !self.is_punct(i, b'#') || !self.is_punct_skipping_nothing(i + 1, b'[') {
                i += 1;
                continue;
            }
            let close = self.match_delim(i + 1, b'[', b']');
            let idents: Vec<&str> = self.tokens[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text)
                .collect();
            let is_test = idents.contains(&"test") && !idents.contains(&"not");
            if !is_test {
                i = close + 1;
                continue;
            }
            // Skip any further attributes (and interleaved comments) to the
            // item itself, then swallow its body (or its `;` form).
            let mut j = close + 1;
            loop {
                while self.tokens.get(j).is_some_and(|t| {
                    matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                }) {
                    j += 1;
                }
                if self.is_punct(j, b'#') && self.is_punct_skipping_nothing(j + 1, b'[') {
                    j = self.match_delim(j + 1, b'[', b']') + 1;
                } else {
                    break;
                }
            }
            let end_idx = match self.find_body_open(j) {
                Some(open) => self.match_delim(open, b'{', b'}'),
                // `;`-terminated item (e.g. `#[cfg(test)] mod tests;`): the
                // out-of-line file is simply not walked as test code, but
                // the declaration itself has no body to exempt.
                None => close,
            };
            let end_tok = &self.tokens[end_idx.min(self.tokens.len() - 1)];
            self.test_regions
                .push((self.tokens[i].offset, end_tok.offset + end_tok.text.len()));
            i = end_idx + 1;
        }
    }

    fn is_punct(&self, i: usize, ch: u8) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct(ch))
    }

    /// Like [`is_punct`](Self::is_punct) but named for call sites where the
    /// grammar requires strict adjacency (`#[`): tokens are already
    /// whitespace-free, so plain index lookup is exactly that.
    fn is_punct_skipping_nothing(&self, i: usize, ch: u8) -> bool {
        self.is_punct(i, ch)
    }

    // ----- rule matching -------------------------------------------------

    /// The code-token accessors below index into `self.code` (comment-free
    /// view); `ctok` resolves back to the underlying token.
    fn ctok(&self, ci: usize) -> Option<&Token<'a>> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    fn cident(&self, ci: usize, name: &str) -> bool {
        self.ctok(ci)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    fn cident_any(&self, ci: usize, names: &[&str]) -> bool {
        self.ctok(ci)
            .is_some_and(|t| t.kind == TokenKind::Ident && names.contains(&t.text))
    }

    fn cpunct(&self, ci: usize, ch: u8) -> bool {
        self.ctok(ci)
            .is_some_and(|t| t.kind == TokenKind::Punct(ch))
    }

    /// `a :: b` at code index `ci`.
    fn cpath2(&self, ci: usize, a: &str, b: &str) -> bool {
        self.cident(ci, a)
            && self.cpunct(ci + 1, b':')
            && self.cpunct(ci + 2, b':')
            && self.cident(ci + 3, b)
    }

    /// `a :: b` or `a :: < … > :: b` (turbofish) at code index `ci`.
    fn cpath2_generic(&self, ci: usize, a: &str, b: &str) -> bool {
        if self.cpath2(ci, a, b) {
            return true;
        }
        if !(self.cident(ci, a) && self.cpunct(ci + 1, b':') && self.cpunct(ci + 2, b':')) {
            return false;
        }
        let mut j = ci + 3;
        if !self.cpunct(j, b'<') {
            return false;
        }
        let mut depth = 0usize;
        let limit = j + 64; // generics longer than this are not a real hot path
        while j < limit {
            if self.cpunct(j, b'<') {
                depth += 1;
            } else if self.cpunct(j, b'>') {
                depth -= 1;
                if depth == 0 {
                    return self.cpunct(j + 1, b':')
                        && self.cpunct(j + 2, b':')
                        && self.cident(j + 3, b);
                }
            } else if self.ctok(j).is_none() {
                return false;
            }
            j += 1;
        }
        false
    }

    /// Whether the `.` at code index `dot` closes a `lock(…)` / `wait(…)`
    /// receiver. `.expect(…)` on a poisoned-lock result only *propagates* a
    /// panic that already happened on another thread — it can never
    /// introduce one — so R03 exempts it.
    fn is_lock_receiver(&self, dot: usize) -> bool {
        if dot == 0 || !self.cpunct(dot - 1, b')') {
            return false;
        }
        let mut depth = 0i32;
        let mut k = dot - 1;
        loop {
            if self.cpunct(k, b')') {
                depth += 1;
            } else if self.cpunct(k, b'(') {
                depth -= 1;
                if depth == 0 {
                    return k >= 1 && self.cident_any(k - 1, &["lock", "wait"]);
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
    }

    fn match_rules(&mut self) {
        for ci in 0..self.code.len() {
            self.match_r01(ci);
            self.match_r02(ci);
            self.match_r03(ci);
            self.match_r04(ci);
            self.match_r05(ci);
            self.match_r06(ci);
        }
    }

    fn match_r01(&mut self, ci: usize) {
        let hit = if self.cpath2(ci, "SystemTime", "now") || self.cpath2(ci, "Instant", "now") {
            Some(format!(
                "wall-clock read `{}::now()`",
                self.ctok(ci).map_or("", |t| t.text)
            ))
        } else if self.cident_any(ci, &["HashMap", "HashSet"]) {
            Some(format!(
                "`{}` (RandomState iteration order)",
                self.ctok(ci).map_or("", |t| t.text)
            ))
        } else {
            None
        };
        if let Some(what) = hit {
            let Some(&token) = self.ctok(ci) else { return };
            self.report(
                "R01",
                &token,
                format!(
                    "{what} in deterministic engine/serialization code — results \
                     must be bit-identical across shard counts and producer modes; \
                     keep timing out of band and use BTreeMap/BTreeSet"
                ),
            );
        }
    }

    fn match_r02(&mut self, ci: usize) {
        if self.cident(ci, "as") && self.cident_any(ci + 1, INT_CAST_TARGETS) {
            let target = self.ctok(ci + 1).map_or("", |t| t.text).to_string();
            let Some(&token) = self.ctok(ci) else { return };
            self.report(
                "R02",
                &token,
                format!(
                    "integer cast `as {target}` in parsing/serialization code — \
                     route through a checked conversion (try_from / the \
                     u32_field-style helpers) so out-of-range values fail loudly"
                ),
            );
        }
    }

    fn match_r03(&mut self, ci: usize) {
        if self.cpunct(ci, b'.')
            && self.cident_any(ci + 1, &["unwrap", "expect"])
            && self.cpunct(ci + 2, b'(')
            && !self.is_lock_receiver(ci)
        {
            let method = self.ctok(ci + 1).map_or("", |t| t.text).to_string();
            let Some(&token) = self.ctok(ci + 1) else {
                return;
            };
            self.report(
                "R03",
                &token,
                format!(
                    "`.{method}(…)` in non-test library code — fallible paths \
                     return the typed taxonomies \
                     (CoreError/SnapshotError/BenchError), they do not panic"
                ),
            );
        }
        if self.cident(ci, "panic") && self.cpunct(ci + 1, b'!') {
            let Some(&token) = self.ctok(ci) else { return };
            self.report(
                "R03",
                &token,
                "`panic!` in non-test library code — fallible paths return the \
                 typed taxonomies (CoreError/SnapshotError/BenchError)"
                    .to_string(),
            );
        }
    }

    fn match_r04(&mut self, ci: usize) {
        let hit = if self.cpath2(ci, "File", "create") {
            Some("File::create")
        } else if self.cpath2(ci, "fs", "write") {
            Some("fs::write")
        } else {
            None
        };
        if let Some(what) = hit {
            let Some(&token) = self.ctok(ci) else { return };
            self.report(
                "R04",
                &token,
                format!(
                    "direct artefact write `{what}` — publish through \
                     write_bytes_atomic (temp + fsync + rename) so a reader or \
                     a crash never sees a torn file"
                ),
            );
        }
    }

    fn match_r05(&mut self, ci: usize) {
        let Some(first) = self.ctok(ci) else { return };
        if !self.in_zero_alloc_region(first.offset) {
            return;
        }
        let hit = if self.cpath2_generic(ci, "Vec", "new") {
            Some(("Vec::new()", ci))
        } else if self.cpath2_generic(ci, "Box", "new") {
            Some(("Box::new()", ci))
        } else if self.cident_any(ci, &["vec", "format"]) && self.cpunct(ci + 1, b'!') {
            Some((
                if self.cident(ci, "vec") {
                    "vec![…]"
                } else {
                    "format!(…)"
                },
                ci,
            ))
        } else if self.cpunct(ci, b'.') && self.cident_any(ci + 1, &["collect", "to_vec"]) {
            Some((
                if self.cident(ci + 1, "collect") {
                    ".collect()"
                } else {
                    ".to_vec()"
                },
                ci + 1,
            ))
        } else {
            None
        };
        if let Some((what, at)) = hit {
            let Some(&token) = self.ctok(at) else { return };
            self.report(
                "R05",
                &token,
                format!(
                    "`{what}` inside a `lint: zero-alloc` function — steady-state \
                     rounds must not touch the heap; keep scratch in pre-sized \
                     buffers owned by the process (tests/zero_alloc.rs is the \
                     runtime twin of this rule)"
                ),
            );
        }
    }

    fn match_r06(&mut self, ci: usize) {
        if self.cident_any(ci, DEPRECATED_DRIVERS)
            && self.cpunct(ci + 1, b'(')
            && !(ci > 0 && self.cident(ci - 1, "fn"))
        {
            let name = self.ctok(ci).map_or("", |t| t.text).to_string();
            let Some(&token) = self.ctok(ci) else { return };
            self.report(
                "R06",
                &token,
                format!(
                    "call to deprecated driver entry point `{name}` — drive runs \
                     through the builder-style Session API \
                     (lb_bench::dynamic::Session)"
                ),
            );
        }
    }
}

/// Extracts a directive from a `//`-comment's text: strips the slashes and
/// an optional `!`, and returns the remainder after a leading `lint:`
/// marker, trimmed. Returns `None` for ordinary comments.
fn directive_text(comment: &str) -> Option<&str> {
    let body = comment.trim_start_matches('/');
    let body = body.strip_prefix('!').unwrap_or(body).trim_start();
    body.strip_prefix("lint:").map(str::trim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/x/src/lib.rs", src, &Config::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r01_flags_clocks_and_hash_collections() {
        let f = lint("fn f() { let t = SystemTime::now(); }");
        assert_eq!(rules_of(&f), ["R01"]);
        let f = lint("use std::collections::HashMap;\n");
        assert_eq!(rules_of(&f), ["R01"]);
        // …but not inside strings or comments.
        assert!(lint("// SystemTime::now()\nfn f() { let s = \"Instant::now\"; }").is_empty());
    }

    #[test]
    fn r02_flags_integer_casts_only() {
        let f = lint("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(rules_of(&f), ["R02"]);
        assert!(lint("fn f(x: u32) -> f64 { x as f64 }").is_empty());
    }

    #[test]
    fn r03_flags_panics_but_not_lock_propagation() {
        let f = lint("fn f(x: Option<u8>) { x.unwrap(); }");
        assert_eq!(rules_of(&f), ["R03"]);
        let f = lint("fn f() { panic!(\"boom\"); }");
        assert_eq!(rules_of(&f), ["R03"]);
        // Poisoned-lock propagation is exempt.
        assert!(lint("fn f(m: &Mutex<u8>) { m.lock().expect(\"poisoned\"); }").is_empty());
        assert!(lint("fn f() { state = cv.wait(state).expect(\"poisoned\"); }").is_empty());
        // unwrap_or and friends are different identifiers.
        assert!(lint("fn f(x: Option<u8>) { x.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn r04_flags_direct_writes() {
        let f = lint("fn f() { fs::write(path, bytes); }");
        assert_eq!(rules_of(&f), ["R04"]);
        let f = lint("fn f() { let file = File::create(p); }");
        assert_eq!(rules_of(&f), ["R04"]);
        assert!(lint("fn f() { write_bytes_atomic(path, bytes); }").is_empty());
    }

    #[test]
    fn r05_only_fires_inside_annotated_fns() {
        let src = "fn cold() { let v = vec![1]; }\n\
                   // lint: zero-alloc\n\
                   fn hot(&mut self) { self.buf.push(format!(\"x\")); }\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), ["R05"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn r05_sees_through_turbofish() {
        let src = "// lint: zero-alloc\n\
                   fn hot() { let v = Vec::<u8>::new(); }\n";
        assert_eq!(rules_of(&lint(src)), ["R05"]);
        let src = "// lint: zero-alloc\n\
                   fn hot() { let b = Box::<[u8; 4]>::new([0; 4]); }\n";
        assert_eq!(rules_of(&lint(src)), ["R05"]);
        // Plain paths still match, and cold code stays exempt.
        assert!(lint("fn cold() { let v = Vec::<u8>::new(); }").is_empty());
    }

    #[test]
    fn r06_flags_calls_not_definitions() {
        let f = lint("fn f() { run_scenario(&s, 1, 1, cb); }");
        assert_eq!(rules_of(&f), ["R06"]);
        assert!(lint("pub fn run_scenario(s: &S) {}").is_empty());
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}\n\
                   fn lib() { y.unwrap(); }\n";
        let f = lint(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lint(src).is_empty());
        // not(test) guards real code: not exempt.
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
        assert_eq!(rules_of(&lint(src)), ["R03"]);
    }

    #[test]
    fn suppressions_need_reasons_and_known_rules() {
        let src = "fn f(x: Option<u8>) {\n\
                   // lint: allow(R03, invariant: checked two lines above)\n\
                   x.unwrap();\n}\n";
        assert!(lint(src).is_empty());
        // Same-line suppression.
        let src = "fn f(x: Option<u8>) { x.unwrap(); // lint: allow(R03, checked)\n}\n";
        assert!(lint(src).is_empty());
        // Bare suppression: the unwrap stays AND the directive is flagged.
        let src = "fn f(x: Option<u8>) {\n// lint: allow(R03)\nx.unwrap();\n}\n";
        let f = lint(src);
        assert_eq!(rules_of(&f), ["R00", "R03"]);
        // Unknown rule id.
        let f = lint("// lint: allow(R99, whatever)\n");
        assert_eq!(rules_of(&f), ["R00"]);
        // Unrecognized directive.
        let f = lint("// lint: zero-allocation\n");
        assert_eq!(rules_of(&f), ["R00"]);
    }

    #[test]
    fn a_suppression_only_covers_its_own_rule() {
        let src = "fn f(x: Option<u8>) {\n\
                   // lint: allow(R01, wrong rule)\n\
                   x.unwrap();\n}\n";
        assert_eq!(rules_of(&lint(src)), ["R03"]);
    }

    #[test]
    fn rule_scoping_follows_the_config() {
        let config = Config::parse("[rules.R03]\ninclude = [\"crates/core\"]\n").unwrap();
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(lint_source("crates/core/src/lib.rs", src, &config).len(), 1);
        assert!(lint_source("crates/bench/src/lib.rs", src, &config).is_empty());
    }
}
