//! A comment/string/raw-string-aware Rust tokenizer.
//!
//! The linter's rules match *token* sequences, never raw text, so a
//! `SystemTime::now` inside a string literal, a doc comment or a nested
//! block comment is invisible to them. The tokenizer is deliberately
//! lossy — it does not distinguish keywords from identifiers, keeps every
//! punctuation character as its own token, and collapses each literal into
//! one opaque token — because that is exactly the granularity the rules
//! need, and nothing more.
//!
//! Robustness contract: tokenizing never fails. Unterminated literals and
//! comments extend to the end of the file (the compiler will reject the
//! file anyway; the linter must not die before it can report anything).

/// The coarse classification the rules match against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `as`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'_`) — kept distinct so the single-quote scanner
    /// never swallows code while looking for a char literal's close.
    Lifetime,
    /// A numeric literal (`42`, `0x1f`, `1.5e3`).
    Number,
    /// Any string, raw-string, byte-string or char literal, as one opaque
    /// token. Rules never look inside.
    Literal,
    /// A single punctuation character (`:`, `.`, `{`, `!`, …).
    Punct(u8),
    /// A `//…` comment, text retained for `// lint:` directives.
    LineComment,
    /// A `/* … */` comment (nesting handled); contents are ignored.
    BlockComment,
}

/// One token, borrowing its text from the source.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// Byte offset of the token's first character.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
}

/// Tokenizes `src` in one pass. See the module docs for the contract.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    /// Byte offset where the current line begins (for column computation).
    line_start: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut tokens = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'\n' {
                self.pos += 1;
                self.line += 1;
                self.line_start = self.pos;
                continue;
            }
            if b.is_ascii_whitespace() {
                self.pos += 1;
                continue;
            }
            let start = self.pos;
            let (line, col) = (self.line, start - self.line_start + 1);
            let kind = self.scan_token(b);
            tokens.push(Token {
                kind,
                text: &self.src[start..self.pos],
                offset: start,
                line,
                col,
            });
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Scans one token starting at `self.pos` (whose first byte is `b`),
    /// advancing past it and returning its kind. Multi-line tokens update
    /// the line counter as they go.
    fn scan_token(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.scan_line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.scan_block_comment(),
            b'"' => self.scan_string(),
            b'\'' => self.scan_char_or_lifetime(),
            _ if b.is_ascii_digit() => self.scan_number(),
            _ if is_ident_start(b) => self.scan_ident_or_prefixed_literal(),
            _ => {
                // Multibyte UTF-8 in code position (only legal inside
                // literals/comments, but stay robust): consume the whole
                // character so we never split a code point.
                let len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += len;
                TokenKind::Punct(b)
            }
        }
    }

    fn scan_line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn scan_block_comment(&mut self) -> TokenKind {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::BlockComment
    }

    /// A `"…"` string with escapes; multi-line strings are legal.
    fn scan_string(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // The escaped byte may itself be a newline (the `"\`
                    // line-continuation idiom) — keep the line count exact.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                        self.line_start = self.pos + 2;
                    }
                    self.pos += 2.min(self.bytes.len() - self.pos);
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Literal
    }

    /// A `r"…"` / `r#"…"#` raw string (any number of hashes), positioned
    /// just past the `r`/`br` prefix.
    fn scan_raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote (guaranteed by the caller's lookahead)
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' if self.bytes[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes =>
                {
                    self.pos += 1 + hashes;
                    return TokenKind::Literal;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Literal
    }

    /// A `'` introduces a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a
    /// lifetime (`'a`, `'_`, `'static`). The disambiguation mirrors rustc:
    /// an escape or a close quote right after one character means literal,
    /// otherwise lifetime.
    fn scan_char_or_lifetime(&mut self) -> TokenKind {
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip the escaped character itself
                // (so '\'' closes correctly), then consume to the close.
                self.pos += 2.min(self.bytes.len() - self.pos);
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos += usize::from(self.pos < self.bytes.len());
                TokenKind::Literal
            }
            Some(first) => {
                let first_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                if self.bytes.get(self.pos + first_len) == Some(&b'\'') {
                    // 'x' (possibly multibyte x): a char literal.
                    self.pos += first_len + 1;
                    TokenKind::Literal
                } else if is_ident_start(first) {
                    // A lifetime: consume the identifier.
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    TokenKind::Lifetime
                } else {
                    TokenKind::Punct(b'\'')
                }
            }
            None => TokenKind::Punct(b'\''),
        }
    }

    fn scan_number(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let in_number = b.is_ascii_alphanumeric()
                || b == b'_'
                // A fraction dot — `1..x` is a range, not a fraction.
                || (b == b'.'
                    && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                    && self.bytes.get(self.pos.wrapping_sub(1)) != Some(&b'.'))
                // An exponent sign, as in `1e+9`.
                || ((b == b'+' || b == b'-')
                    && matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E')));
            if !in_number {
                break;
            }
            self.pos += 1;
        }
        TokenKind::Number
    }

    /// An identifier — unless it is the `r` / `b` / `br` prefix of a raw
    /// string, byte string, byte char or raw identifier.
    fn scan_ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let ident = &self.src[start..self.pos];
        match (ident, self.peek(0)) {
            // r"…", r#"…"# raw strings; br"…", br#"…"# raw byte strings.
            ("r" | "br", Some(b'"')) => self.scan_raw_string(),
            ("r" | "br", Some(b'#')) => {
                // Look past the hashes: a quote means raw string, an
                // identifier means raw identifier (r#match).
                let mut ahead = 0;
                while self.peek(ahead) == Some(b'#') {
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'"') {
                    self.scan_raw_string()
                } else {
                    // Raw identifier: consume `#ident`.
                    self.pos += ahead;
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    TokenKind::Ident
                }
            }
            // b"…" byte string, b'…' byte char.
            ("b", Some(b'"')) => self.scan_string(),
            ("b", Some(b'\'')) => self.scan_char_or_lifetime(),
            _ => TokenKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let toks = tokenize("let x = a::b;\n  y.z()");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ":", ":", "b", ";", "y", ".", "z", "(", ")"]
        );
        let y = toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!((y.line, y.col), (2, 3));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = "SystemTime::now() \" unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (*t != "SystemTime" && *t != "unwrap")));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "let s = r#\"a \" quote and unwrap() inside\"#; call()";
        let toks = kinds(src);
        assert!(toks.iter().any(|(_, t)| *t == "call"));
        assert!(!toks.iter().any(|(_, t)| *t == "unwrap"));
        // Double-hash raw strings and raw byte strings.
        let toks = kinds("br##\"x \"# y\"## + r\"plain\" + r#ident");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t.contains("ident")));
    }

    #[test]
    fn comments_line_block_nested() {
        let src = "a // unwrap() in a comment\nb /* outer /* nested unwrap() */ still */ c";
        let toks = tokenize(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::LineComment)
                .count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks =
            kinds("x: &'a str; let c = 'x'; let nl = '\\n'; let u = '\\u{1F600}'; let q = '\"';");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            4
        );
        // Byte chars and byte strings.
        let toks = kinds("scan(b'\"'); s(b\"bytes\")");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { x = 1.5e-3; (2u64).pow(3); }");
        assert!(toks.iter().any(|(_, t)| *t == "pow"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "10"));
    }

    #[test]
    fn unterminated_literals_extend_to_eof_without_panicking() {
        for src in [
            "let s = \"open",
            "let s = r#\"open",
            "/* open",
            "let c = '\\",
        ] {
            let _ = tokenize(src); // must not panic
        }
    }

    #[test]
    fn multibyte_text_keeps_columns_sane() {
        let toks = tokenize("let s = \"héllo\"; done");
        assert!(toks.iter().any(|t| t.text == "done"));
    }

    #[test]
    fn multiline_literals_keep_the_line_count_exact() {
        // A `"\`-continued string, an embedded newline and a raw string: the
        // token after each must land on the right line.
        let src = "let a = \"one\\\n   two\";\nlet b = \"x\ny\";\nlet c = r#\"p\nq\"#;\nend";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap();
        assert_eq!(find("b").line, 3);
        assert_eq!(find("c").line, 5);
        assert_eq!(find("end").line, 7);
        assert_eq!(find("end").col, 1);
    }
}
