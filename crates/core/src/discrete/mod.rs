//! Discrete (indivisible-task) balancing processes.
//!
//! Two groups of processes live here:
//!
//! * the paper's **flow-imitation transformations** — [`FlowImitation`]
//!   (Algorithm 1, deterministic) and [`RandomizedImitation`] (Algorithm 2,
//!   randomized rounding) — which simulate a continuous twin and imitate its
//!   cumulative per-edge flow; and
//! * the **baselines** from prior work ([`baselines`]) that the paper's
//!   comparison tables measure against: round-down, per-edge randomized
//!   rounding, deterministic accumulated-error ("quasirandom") rounding and
//!   excess-token diffusion, plus their matching-model counterparts.
//!
//! All of them implement [`DiscreteBalancer`], so experiments can drive them
//! uniformly. The paper's two transformations additionally implement
//! [`DynamicBalancer`] ([`dynamic`]): task arrivals and completions can be
//! applied between rounds, opening the sustained-load workload class beyond
//! the paper's static-drain setting.

pub mod baselines;
pub mod dynamic;
mod flow_imitation;
mod randomized_imitation;

pub use dynamic::{DynamicBalancer, EventReport, RoundEvents};
pub use flow_imitation::{FlowImitation, TaskPicker};
pub use randomized_imitation::{edge_rounding_rng, RandomizedImitation};

use crate::metrics::MetricsSnapshot;
use crate::task::Speeds;
use lb_graph::Graph;

/// A discrete neighbourhood load-balancing process driven in synchronous
/// rounds.
///
/// The trait is object-safe so heterogeneous collections of balancers can be
/// compared by the experiment harness.
pub trait DiscreteBalancer {
    /// Short human-readable name used in reports, e.g. `"alg1(fos)"`.
    fn name(&self) -> &str;

    /// The network the process runs on.
    fn graph(&self) -> &Graph;

    /// The node speeds.
    fn speeds(&self) -> &Speeds;

    /// Number of completed rounds.
    fn round(&self) -> usize;

    /// Executes one synchronous round.
    fn step(&mut self);

    /// Current per-node loads (total task weight on each node, *including*
    /// any dummy load drawn from the infinite source).
    fn loads(&self) -> Vec<f64>;

    /// Total dummy load currently held across all nodes. Baselines that have
    /// no infinite source return 0.
    fn dummy_load(&self) -> u64 {
        0
    }

    /// Executes `rounds` rounds.
    fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Snapshot of the discrepancy metrics for the current state.
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::compute(self.round(), &self.loads(), self.speeds())
    }
}

/// Runs `balancer` for `rounds` rounds, recording a metrics snapshot at round
/// 0 and after every `sample_every` rounds (and always after the final
/// round).
///
/// # Panics
///
/// Panics if `sample_every == 0`.
pub fn run_recorded(
    balancer: &mut dyn DiscreteBalancer,
    rounds: usize,
    sample_every: usize,
) -> Vec<MetricsSnapshot> {
    assert!(sample_every > 0, "sample_every must be positive");
    let mut snapshots = vec![balancer.metrics()];
    for r in 1..=rounds {
        balancer.step();
        if r % sample_every == 0 || r == rounds {
            snapshots.push(balancer.metrics());
        }
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Fos;
    use crate::load::InitialLoad;
    use lb_graph::{generators, AlphaScheme};

    #[test]
    fn run_recorded_samples_first_and_last() {
        let g = generators::cycle(8).unwrap();
        let speeds = Speeds::uniform(8);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let initial = InitialLoad::single_source(8, 0, 64);
        let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();
        let trace = run_recorded(&mut alg1, 10, 3);
        // Round 0, rounds 3, 6, 9 and the final round 10.
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[0].round, 0);
        assert_eq!(trace.last().unwrap().round, 10);
        // Discrepancy must not have gotten worse overall.
        assert!(trace.last().unwrap().max_min <= trace[0].max_min);
    }

    #[test]
    #[should_panic(expected = "sample_every")]
    fn run_recorded_rejects_zero_sampling() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let initial = InitialLoad::single_source(4, 0, 4);
        let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();
        let _ = run_recorded(&mut alg1, 5, 0);
    }
}
