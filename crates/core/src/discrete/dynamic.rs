//! Dynamic workloads: per-round events applied between balancing rounds.
//!
//! The paper analyses a *static drain*: a fixed initial load vector is
//! balanced until the continuous twin converges. Real deployments see ongoing
//! task arrivals, task completions and topology churn. This module opens that
//! workload class for the flow-imitation discretizers:
//!
//! * [`RoundEvents`] — one round's batch of arrivals and per-node completion
//!   budgets, with reusable internal buffers;
//! * [`DynamicBalancer`] — the object-safe extension of
//!   [`DiscreteBalancer`] that applies such a batch between rounds.
//!
//! # Contract with the zero-allocation hot loop
//!
//! [`DynamicBalancer::apply_events`] **may allocate** (queues grow, the twin
//! never does) — it runs between rounds, off the steady-state path. The
//! subsequent [`step`](super::DiscreteBalancer::step) must remain
//! allocation-free once buffers are warm; `tests/zero_alloc.rs` enforces this
//! with a counting global allocator under a sustained arrival stream.
//!
//! # Why injecting load preserves the imitation guarantees
//!
//! Both the discrete process and its continuous twin receive every event: an
//! arriving task adds its weight to the node's queue *and* to the twin's load
//! vector; a completion removes the same whole-task weight from both.
//! Because the continuous processes are additive (Definition 3), the twin's
//! future flows decompose into "flows of the old load" plus "flows of the
//! injected load", and the cumulative-flow ledger the discretizer imitates
//! remains meaningful. The per-edge deviation bound of Observation 4
//! (`|f^A_e − f^D_e| < w_max`) is argued round-by-round from the floor rule
//! alone and is therefore untouched by load injection — only `w_max` itself
//! can grow, if an arrival carries a heavier task than any seen before.

use crate::error::CoreError;
use crate::task::{Task, Weight};
use lb_graph::NodeId;

use super::DiscreteBalancer;

/// One round's worth of workload events, applied between balancing rounds.
///
/// The two vectors are plain buffers so a driver can fill, apply and
/// [`clear`](RoundEvents::clear) one instance per round without reallocating
/// in steady state.
#[derive(Debug, Clone, Default)]
pub struct RoundEvents {
    /// Tasks arriving this round: `(destination node, task)`.
    pub arrivals: Vec<(NodeId, Task)>,
    /// Per-node completion budgets `(node, weight)`: the node completes whole
    /// tasks in pick order while the next task fits in the remaining budget.
    pub completions: Vec<(NodeId, Weight)>,
}

impl RoundEvents {
    /// Clears both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.arrivals.clear();
        self.completions.clear();
    }

    /// Returns `true` if the batch contains no events.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty() && self.completions.is_empty()
    }
}

/// What applying one [`RoundEvents`] batch actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventReport {
    /// Number of tasks delivered to queues.
    pub arrived_tasks: u64,
    /// Total weight delivered to queues.
    pub arrived_weight: u64,
    /// Number of whole tasks completed (removed from queues).
    pub completed_tasks: u64,
    /// Total weight completed.
    pub completed_weight: u64,
}

impl EventReport {
    /// Accumulates another report into this one (for per-run totals).
    pub fn absorb(&mut self, other: EventReport) {
        self.arrived_tasks += other.arrived_tasks;
        self.arrived_weight += other.arrived_weight;
        self.completed_tasks += other.completed_tasks;
        self.completed_weight += other.completed_weight;
    }
}

/// A discrete balancer that supports dynamic workloads: task arrivals and
/// completions applied between rounds.
///
/// Object-safe, like [`DiscreteBalancer`], so scenario drivers can hold
/// heterogeneous engines behind `Box<dyn DynamicBalancer>`.
///
/// Topology churn is *not* part of this trait — rebuilding a process needs
/// the concrete continuous type, so it lives on the implementors (see
/// `FlowImitation::replace_topology` and
/// `RandomizedImitation::replace_topology`).
pub trait DynamicBalancer: DiscreteBalancer {
    /// Applies one batch of events: completions first (finished work leaves
    /// the system), then arrivals. Both sides of the twin pairing receive
    /// every event (see the module docs).
    ///
    /// May allocate; the following [`step`](DiscreteBalancer::step) must not.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if an event names a node
    /// outside the graph, or if the implementation cannot represent the
    /// event (e.g. a non-unit-weight arrival for Algorithm 2).
    fn apply_events(&mut self, events: &RoundEvents) -> Result<EventReport, CoreError>;

    /// Total weight completed (drained via completion budgets) so far.
    fn completed_weight(&self) -> u64;

    /// Total weight arrived (injected after round 0) so far.
    fn arrived_weight(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Fos;
    use crate::discrete::{FlowImitation, RandomizedImitation, TaskPicker};
    use crate::load::InitialLoad;
    use crate::task::{Speeds, TaskId};
    use lb_graph::{generators, AlphaScheme};

    fn alg1_on_torus() -> FlowImitation<Fos> {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
    }

    #[test]
    fn arrivals_increase_real_load_on_both_sides() {
        let mut alg1 = alg1_on_torus();
        alg1.run(10);
        let twin_total_before: f64 = alg1.continuous().loads().iter().sum();
        let mut events = RoundEvents::default();
        events.arrivals.push((3, Task::new(TaskId(1_000), 2)));
        events.arrivals.push((5, Task::new(TaskId(1_001), 1)));
        let report = alg1.apply_events(&events).unwrap();
        assert_eq!(report.arrived_tasks, 2);
        assert_eq!(report.arrived_weight, 3);
        assert_eq!(alg1.arrived_weight(), 3);
        let real: f64 = alg1.real_loads().iter().sum();
        assert!((real - 67.0).abs() < 1e-9);
        let twin_total: f64 = alg1.continuous().loads().iter().sum();
        assert!((twin_total - twin_total_before - 3.0).abs() < 1e-9);
        // w_max tracks the heaviest arrival.
        assert_eq!(alg1.wmax(), 2);
    }

    #[test]
    fn completions_respect_whole_task_budgets() {
        let mut alg1 = alg1_on_torus();
        let mut events = RoundEvents::default();
        // Node 0 holds 64 unit tokens; budget 5 completes exactly 5.
        events.completions.push((0, 5));
        // Node 1 holds nothing; budget is simply unused.
        events.completions.push((1, 7));
        let report = alg1.apply_events(&events).unwrap();
        assert_eq!(report.completed_tasks, 5);
        assert_eq!(report.completed_weight, 5);
        assert_eq!(alg1.completed_weight(), 5);
        let real: f64 = alg1.real_loads().iter().sum();
        assert!((real - 59.0).abs() < 1e-9);
        let twin_total: f64 = alg1.continuous().loads().iter().sum();
        assert!((twin_total - 59.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_head_blocks_completion_budget() {
        // A FIFO queue whose head is heavier than the budget completes
        // nothing: budgets complete whole tasks in pick order only.
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let initial = InitialLoad::from_tasks(vec![
            vec![Task::new(TaskId(0), 5), Task::new(TaskId(1), 1)],
            vec![],
            vec![],
            vec![],
        ]);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();
        let mut events = RoundEvents::default();
        events.completions.push((0, 3));
        let report = alg1.apply_events(&events).unwrap();
        assert_eq!(report.completed_tasks, 0);
        assert_eq!(report.completed_weight, 0);
    }

    #[test]
    fn out_of_range_events_are_rejected() {
        let mut alg1 = alg1_on_torus();
        let mut events = RoundEvents::default();
        events.arrivals.push((16, Task::new(TaskId(0), 1)));
        assert!(alg1.apply_events(&events).is_err());
        events.clear();
        assert!(events.is_empty());
        events.completions.push((99, 1));
        assert!(alg1.apply_events(&events).is_err());
    }

    #[test]
    fn alg2_rejects_weighted_arrivals_but_takes_tokens() {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 32);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg2 = RandomizedImitation::new(fos, &initial, speeds, 9).unwrap();
        let mut events = RoundEvents::default();
        events.arrivals.push((2, Task::new(TaskId(500), 3)));
        assert!(alg2.apply_events(&events).is_err());
        events.clear();
        events.arrivals.push((2, Task::new(TaskId(500), 1)));
        events.completions.push((0, 4));
        let report = alg2.apply_events(&events).unwrap();
        assert_eq!(report.arrived_weight, 1);
        assert_eq!(report.completed_weight, 4);
        let real: f64 = alg2.real_loads().iter().sum();
        assert!((real - 29.0).abs() < 1e-9);
    }

    #[test]
    fn replace_topology_carries_tasks_and_resets_ledgers() {
        let mut alg1 = alg1_on_torus();
        alg1.run(30);
        let total_before: f64 = alg1.real_loads().iter().sum();

        // Shrink to a 3×3 torus: nodes 9..16 bequeath their tasks to node 0.
        let smaller = generators::torus(3, 3).unwrap();
        let speeds9 = Speeds::uniform(9);
        let fos = Fos::new(smaller, &speeds9, AlphaScheme::MaxDegreePlusOne).unwrap();
        alg1.replace_topology(fos).unwrap();
        assert_eq!(alg1.graph().node_count(), 9);
        assert_eq!(alg1.speeds().len(), 9);
        let total_after: f64 = alg1.real_loads().iter().sum();
        assert!((total_after - total_before).abs() < 1e-9, "tasks conserved");
        assert_eq!(alg1.max_flow_deviation(), 0.0, "fresh imitation epoch");

        // The twin restarts from the current discrete loads and the system
        // keeps balancing on the new topology.
        alg1.run(800);
        let d = alg1.graph().max_degree() as f64;
        let speeds = alg1.speeds().clone();
        let max_avg = crate::metrics::max_avg_discrepancy(&alg1.loads(), &speeds);
        assert!(max_avg <= 2.0 * d + 2.0 + 1e-9, "max-avg {max_avg}");

        // Grow back to 16 nodes: new nodes start empty, balancing resumes.
        let larger = generators::torus(4, 4).unwrap();
        let speeds16 = Speeds::uniform(16);
        let fos = Fos::new(larger, &speeds16, AlphaScheme::MaxDegreePlusOne).unwrap();
        alg1.replace_topology(fos).unwrap();
        assert_eq!(alg1.graph().node_count(), 16);
        let total_grown: f64 = alg1.real_loads().iter().sum();
        assert!((total_grown - total_before).abs() < 1e-9);
        alg1.run(100);
    }

    #[test]
    fn balancing_continues_to_bound_discrepancy_under_events() {
        // Inject a burst, let the system re-balance, and check the Theorem 3
        // style bound still holds at the end (the twin re-converges on the
        // new total).
        let mut alg1 = alg1_on_torus();
        alg1.run(50);
        let mut events = RoundEvents::default();
        for k in 0..64 {
            events.arrivals.push((7, Task::new(TaskId(10_000 + k), 1)));
        }
        alg1.apply_events(&events).unwrap();
        alg1.run(1_500);
        let d = alg1.graph().max_degree() as f64;
        let speeds = alg1.speeds().clone();
        let max_avg = crate::metrics::max_avg_discrepancy(&alg1.loads(), &speeds);
        assert!(
            max_avg <= 2.0 * d + 2.0 + 1e-9,
            "max-avg {max_avg} after burst exceeds 2d + 2"
        );
    }
}
