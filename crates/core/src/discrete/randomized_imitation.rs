//! Algorithm 2 — randomized flow imitation (identical tasks).
//!
//! Like Algorithm 1, the discrete process tracks the cumulative continuous
//! flow of a twin process, but the per-edge flow deficit
//! `Ŷ_e(t) = f^A_e(t) − F^D_e(t−1)` is rounded *randomly*: up with
//! probability equal to its fractional part, down otherwise. Only unit-weight
//! tokens are supported.
//!
//! Each rounding decision draws from an independent sub-RNG derived from the
//! master seed and the `(round, edge)` coordinates
//! ([`edge_rounding_rng`]) rather than consuming one sequential stream.
//! The rounding indicators stay independent across edges and rounds (all the
//! Chernoff-style analysis of Theorem 8 needs), every trajectory remains
//! deterministic per seed, and — because no draw depends on how many draws
//! other edges made — sharded execution
//! ([`RandomizedImitation::step_sharded`]) is bit-identical to sequential
//! execution for every shard count.
//!
//! Guarantees (Theorem 8): at the continuous balancing time the max-avg
//! discrepancy is `d/4 + O(√(d·log n))` w.h.p.; with initial load at least
//! `(d/4 + Θ(√(d·log n)))·s_i` per node the max-min discrepancy is
//! `O(√(d·log n))` w.h.p.

use super::dynamic::{DynamicBalancer, EventReport, RoundEvents};
use super::DiscreteBalancer;
use crate::continuous::{ContinuousProcess, ContinuousRunner};
use crate::error::CoreError;
use crate::load::InitialLoad;
use crate::task::Speeds;
use lb_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The sub-RNG deciding whether edge `edge`'s fractional deficit rounds up
/// in round `round`, derived from the master `seed` the same way the
/// scenario stream derives its sub-seeds: a SplitMix-style combination of
/// the coordinates feeding the seeding expansion.
///
/// Deriving per `(round, edge)` instead of consuming one stream edge-by-edge
/// makes the draw independent of every other edge's draw, which is what lets
/// shard workers round their edges concurrently while staying bit-identical
/// to the sequential engine for any shard count.
pub fn edge_rounding_rng(seed: u64, round: usize, edge: usize) -> StdRng {
    let mixed = seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (edge as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    StdRng::seed_from_u64(mixed)
}

/// Algorithm 2: the randomized flow-imitation discretization of a continuous
/// process `A`, for identical (unit-weight) tasks.
///
/// # Examples
///
/// ```
/// use lb_core::continuous::Fos;
/// use lb_core::discrete::{DiscreteBalancer, RandomizedImitation};
/// use lb_core::{InitialLoad, Speeds};
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::torus(4, 4)?;
/// let speeds = Speeds::uniform(16);
/// let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// // Give every node enough initial load for the max-min guarantee.
/// let mut counts = vec![8u64; 16];
/// counts[0] += 320;
/// let initial = InitialLoad::from_token_counts(counts);
/// let mut alg2 = RandomizedImitation::new(fos, &initial, speeds, 42)?;
/// alg2.run(300);
/// assert!(alg2.metrics().max_min < 16.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomizedImitation<A: ContinuousProcess> {
    twin: ContinuousRunner<A>,
    graph: Arc<Graph>,
    speeds: Speeds,
    /// Real (workload) tokens held by each node.
    tokens: Vec<u64>,
    /// Dummy tokens held by each node.
    dummy: Vec<u64>,
    /// Cumulative net discrete flow along each canonical edge orientation.
    discrete_flow: Vec<i64>,
    /// Master seed; every rounding decision derives its own sub-RNG from it
    /// (see [`edge_rounding_rng`]).
    seed: u64,
    round: usize,
    dummy_created: u64,
    name: String,
    /// Reused per-round scratch: pending real-token deliveries per node.
    pending_real: Vec<u64>,
    /// Reused per-round scratch: pending dummy deliveries per node.
    pending_dummy: Vec<u64>,
    /// Total weight injected by dynamic arrival events.
    arrived_weight: u64,
    /// Total weight drained by dynamic completion events.
    completed_weight: u64,
}

impl<A: ContinuousProcess> RandomizedImitation<A> {
    /// Creates the randomized discretization of `process` starting from
    /// `initial`, with an explicit RNG `seed` for reproducibility.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the initial load contains
    /// non-unit task weights or the node counts of process, load and speeds
    /// disagree.
    pub fn new(
        process: A,
        initial: &InitialLoad,
        speeds: Speeds,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if !initial.is_unit_weight() {
            return Err(CoreError::invalid_parameter(
                "randomized flow imitation (Algorithm 2) requires unit-weight tasks",
            ));
        }
        let graph = process.shared_graph();
        let n = graph.node_count();
        if initial.node_count() != n {
            return Err(CoreError::invalid_parameter(format!(
                "initial load has {} nodes, graph has {n}",
                initial.node_count()
            )));
        }
        if speeds.len() != n {
            return Err(CoreError::invalid_parameter(format!(
                "speeds vector has {} entries, graph has {n} nodes",
                speeds.len()
            )));
        }
        let name = format!("alg2({})", process.name());
        let twin = ContinuousRunner::new(process, initial.load_vector_f64());
        let m = graph.edge_count();
        Ok(RandomizedImitation {
            twin,
            graph,
            speeds,
            tokens: initial.load_vector(),
            dummy: vec![0; n],
            discrete_flow: vec![0; m],
            seed,
            round: 0,
            dummy_created: 0,
            name,
            pending_real: vec![0; n],
            pending_dummy: vec![0; n],
            arrived_weight: 0,
            completed_weight: 0,
        })
    }

    /// Replaces the topology (and the continuous twin) mid-run: the
    /// churn-event half of a dynamic scenario. Same carry-over rules as
    /// `FlowImitation::replace_topology`: per-node token counts carry over
    /// index-by-index, removed nodes bequeath their tokens to node 0, new
    /// nodes start empty, and the twin restarts from the current discrete
    /// load vector with both flow ledgers reset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the new graph is empty.
    pub fn replace_topology(&mut self, process: A) -> Result<(), CoreError> {
        let graph = process.shared_graph();
        let n = graph.node_count();
        if n == 0 {
            return Err(CoreError::invalid_parameter(
                "cannot replace topology with an empty graph",
            ));
        }
        while self.tokens.len() > n {
            // lint: allow(R03, non-empty by the loop condition)
            let orphan_tokens = self.tokens.pop().expect("len checked above");
            self.tokens[0] += orphan_tokens;
            // lint: allow(R03, dummy mirrors tokens length by construction)
            let orphan_dummy = self.dummy.pop().expect("dummy tracks tokens");
            self.dummy[0] += orphan_dummy;
        }
        self.tokens.resize(n, 0);
        self.dummy.resize(n, 0);
        // A same-size rewire carries speeds through untouched.
        if self.speeds.len() != n {
            let mut speed_values = self.speeds.as_slice().to_vec();
            speed_values.resize(n, 1);
            // lint: allow(R03, carried values validated positive at admission)
            self.speeds = Speeds::new(speed_values).expect("carried speeds stay positive");
        }
        self.name = format!("alg2({})", process.name());
        self.twin.rebind(
            process,
            self.tokens
                .iter()
                .zip(&self.dummy)
                .map(|(&t, &d)| (t + d) as f64),
        );
        self.graph = graph;
        self.discrete_flow.clear();
        self.discrete_flow.resize(self.graph.edge_count(), 0);
        self.pending_real.clear();
        self.pending_real.resize(n, 0);
        self.pending_dummy.clear();
        self.pending_dummy.resize(n, 0);
        Ok(())
    }

    /// The continuous twin being imitated.
    pub fn continuous(&self) -> &ContinuousRunner<A> {
        &self.twin
    }

    /// Total dummy load created from the infinite source so far.
    pub fn dummy_created(&self) -> u64 {
        self.dummy_created
    }

    /// Per-node dummy holdings. In a federated partition only the owned
    /// entries are authoritative (foreign slots are stale); a sampler must
    /// slice its own node range.
    pub fn dummy_holdings(&self) -> &[u64] {
        &self.dummy
    }

    /// Per-node loads excluding dummy tokens.
    pub fn real_loads(&self) -> Vec<f64> {
        self.tokens.iter().map(|&t| t as f64).collect()
    }

    /// Maximum absolute per-edge deviation `|E_e(t)|` between the continuous
    /// and discrete cumulative flows. With randomized rounding this stays
    /// below 1 (part (3) of Observation 9).
    pub fn max_flow_deviation(&self) -> f64 {
        self.twin
            .cumulative_flows()
            .iter()
            .zip(&self.discrete_flow)
            .map(|(&fa, &fd)| (fa - fd as f64).abs())
            .fold(0.0, f64::max)
    }

    /// Captures the engine's full state at a between-rounds boundary for a
    /// snapshot. The rounding RNG needs no serialization: every decision
    /// derives a fresh sub-RNG from `(seed, round, edge)`
    /// ([`edge_rounding_rng`]), so the seed and round counter are its full
    /// derivation inputs. Event-time only — allocates freely.
    pub fn capture(&self) -> crate::snapshot::EngineState {
        crate::snapshot::EngineState {
            round: self.round as u64,
            twin: self.twin.capture(),
            discrete: crate::snapshot::DiscreteState::Alg2(crate::snapshot::Alg2State {
                tokens: self.tokens.clone(),
                dummy: self.dummy.clone(),
                discrete_flow: self.discrete_flow.clone(),
                seed: self.seed,
                dummy_created: self.dummy_created,
                arrived_weight: self.arrived_weight,
                completed_weight: self.completed_weight,
            }),
        }
    }

    /// Restores state captured by [`capture`](RandomizedImitation::capture)
    /// into an engine freshly built on the snapshot's topology epoch. The
    /// master seed is validated: a snapshot from a differently seeded run is
    /// stale and rejected instead of silently diverging.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Mismatch`](crate::snapshot::SnapshotError)
    /// if the snapshot belongs to Algorithm 1, does not fit the graph, or
    /// was captured under a different master seed.
    pub fn restore(
        &mut self,
        state: &crate::snapshot::EngineState,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::{DiscreteState, SnapshotError};
        let DiscreteState::Alg2(alg2) = &state.discrete else {
            return Err(SnapshotError::mismatch(
                "snapshot carries Algorithm 1 state but the engine runs Algorithm 2",
            ));
        };
        let n = self.graph.node_count();
        let m = self.graph.edge_count();
        if alg2.tokens.len() != n || alg2.dummy.len() != n {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {} node entries, graph has {n} nodes",
                alg2.tokens.len()
            )));
        }
        if alg2.discrete_flow.len() != m {
            return Err(SnapshotError::mismatch(format!(
                "snapshot flow ledger has {} entries, graph has {m} edges",
                alg2.discrete_flow.len()
            )));
        }
        if alg2.seed != self.seed {
            return Err(SnapshotError::mismatch(format!(
                "snapshot rounding seed {} differs from the run's seed {} (stale snapshot?)",
                alg2.seed, self.seed
            )));
        }
        self.twin.restore(&state.twin)?;
        self.tokens.copy_from_slice(&alg2.tokens);
        self.dummy.copy_from_slice(&alg2.dummy);
        self.discrete_flow.copy_from_slice(&alg2.discrete_flow);
        self.round = state.round as usize;
        self.dummy_created = alg2.dummy_created;
        self.arrived_weight = alg2.arrived_weight;
        self.completed_weight = alg2.completed_weight;
        self.pending_real.clear();
        self.pending_real.resize(n, 0);
        self.pending_dummy.clear();
        self.pending_dummy.resize(n, 0);
        Ok(())
    }

    /// Sharded [`step`](DiscreteBalancer::step): the twin advances through
    /// [`ContinuousRunner::step_sharded`], then each shard worker rounds and
    /// sends over the edges whose **sender** lies in its node range, with
    /// every rounding decision drawn from its own `(seed, round, edge)`
    /// sub-RNG ([`edge_rounding_rng`]) — so the draws, and therefore the
    /// trajectory, are **bit-identical** to the sequential step for every
    /// shard count. Token/dummy deliveries and ledger deltas are additive
    /// and applied from the per-shard outboxes afterwards.
    ///
    /// Steady-state calls on an unchanged topology do not allocate; after
    /// [`replace_topology`](RandomizedImitation::replace_topology) the
    /// executor rebinds on the next sharded step.
    // lint: zero-alloc
    pub fn step_sharded(&mut self, exec: &mut crate::shard::ShardedExecutor)
    where
        A: Sync,
    {
        exec.ensure_plan(&self.graph);
        if exec.shard_count() == 1 {
            self.step();
            return;
        }
        self.twin.step_sharded(exec);

        let seed = self.seed;
        let round = self.round;
        {
            let continuous_flow = self.twin.cumulative_flows();
            let discrete_flow = &self.discrete_flow[..];
            let graph = &*self.graph;
            let tokens = crate::shard::SharedSliceMut::new(&mut self.tokens);
            let dummy = crate::shard::SharedSliceMut::new(&mut self.dummy);
            let (pool, plan, scratch) = exec.split();
            pool.run(|s| {
                // SAFETY: scratch cell and node range belong to shard `s`
                // alone; node ranges partition `0..n`.
                let scratch = unsafe { &mut *scratch[s].get() };
                scratch.alg2_out.clear();
                scratch.dummy_created = 0;
                let nodes = plan.node_range(s);
                if nodes.is_empty() {
                    return;
                }
                let lo = nodes.start;
                let tokens_s = unsafe { tokens.range_mut(nodes.clone()) };
                let dummy_s = unsafe { dummy.range_mut(nodes.clone()) };
                let edges = graph.edges();
                for &e in plan.incident(s) {
                    let (u, v) = edges[e];
                    let deficit = continuous_flow[e] - discrete_flow[e] as f64;
                    if deficit == 0.0 {
                        continue;
                    }
                    let (sender, receiver, magnitude, sign) = if deficit > 0.0 {
                        (u, v, deficit, 1i64)
                    } else {
                        (v, u, -deficit, -1i64)
                    };
                    if !nodes.contains(&sender) {
                        continue;
                    }
                    let floor = magnitude.floor();
                    let fraction = magnitude - floor;
                    let round_up = fraction > 0.0 && {
                        use rand::Rng;
                        edge_rounding_rng(seed, round, e).gen_bool(fraction.min(1.0))
                    };
                    let send = floor as u64 + u64::from(round_up);
                    if send == 0 {
                        continue;
                    }
                    let real = send.min(tokens_s[sender - lo]);
                    tokens_s[sender - lo] -= real;
                    let dummy_sent = send - real;
                    let from_held = dummy_sent.min(dummy_s[sender - lo]);
                    dummy_s[sender - lo] -= from_held;
                    scratch.dummy_created += dummy_sent - from_held;
                    scratch.alg2_out.push(crate::shard::Alg2Send {
                        edge: e,
                        receiver,
                        real,
                        dummy: dummy_sent,
                        delta: sign * send as i64,
                    });
                }
            });
        }
        // Apply phase: all effects are additive counts, so outbox order
        // cannot be observed.
        let mut dummy_created = 0;
        for scratch in exec.shard_results() {
            for send in &scratch.alg2_out {
                self.tokens[send.receiver] += send.real;
                self.dummy[send.receiver] += send.dummy;
                self.discrete_flow[send.edge] += send.delta;
            }
            dummy_created += scratch.dummy_created;
        }
        self.dummy_created += dummy_created;
        self.round += 1;
    }

    /// Federated [`step`](DiscreteBalancer::step): this engine instance owns
    /// one contiguous node range of a larger simulation. The twin advances
    /// through
    /// [`ContinuousRunner::step_federated`](crate::continuous::ContinuousRunner::step_federated),
    /// then this part rounds and sends over the edges whose **sender** it
    /// owns, each decision drawn from its own `(seed, round, edge)` sub-RNG
    /// ([`edge_rounding_rng`]) — so no RNG-stream coordination between
    /// processes is needed and the owned slice of every state vector stays
    /// **bit-identical** to the sequential engine's. Token deliveries and
    /// ledger deltas for remote receivers travel in the outgoing
    /// [`SendBatch`](crate::SendBatch); all effects are additive, so no merge
    /// discipline is required.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Federation`] if an exchange fails or a peer sends
    /// a malformed payload, and [`CoreError::InvalidParameter`] if the
    /// underlying process does not support range-split kernels.
    pub fn step_federated(
        &mut self,
        fed: &mut crate::federate::FederatedExecutor,
        link: &mut dyn crate::federate::FederateLink,
    ) -> Result<(), CoreError>
    where
        A: Sync,
    {
        fed.ensure_plan(&self.graph)?;
        self.twin.step_federated(fed, link)?;

        self.pending_real.fill(0);
        self.pending_dummy.fill(0);
        fed.batch.clear();

        let seed = self.seed;
        let round = self.round;
        let edges = self.graph.edges();
        for &e in fed.plan.incident() {
            let (u, v) = edges[e];
            let deficit = self.twin.cumulative_flows()[e] - self.discrete_flow[e] as f64;
            if deficit == 0.0 {
                continue;
            }
            let (sender, receiver, magnitude, sign) = if deficit > 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            // Exactly one part owns the sender and processes this edge; the
            // receiving part learns the flow delta from the send exchange.
            if !fed.plan.owns_node(sender) {
                continue;
            }
            let floor = magnitude.floor();
            let fraction = magnitude - floor;
            let round_up = fraction > 0.0 && {
                use rand::Rng;
                edge_rounding_rng(seed, round, e).gen_bool(fraction.min(1.0))
            };
            let send = floor as u64 + u64::from(round_up);
            if send == 0 {
                continue;
            }
            let real = send.min(self.tokens[sender]);
            self.tokens[sender] -= real;
            let dummy = send - real;
            let from_held = dummy.min(self.dummy[sender]);
            self.dummy[sender] -= from_held;
            self.dummy_created += dummy - from_held;
            let delta = sign * send as i64;
            self.discrete_flow[e] += delta;
            if fed.plan.owns_node(receiver) {
                self.pending_real[receiver] += real;
                self.pending_dummy[receiver] += dummy;
            } else {
                fed.batch.tokens.push((receiver, real, dummy));
                fed.batch.deltas.push((e, delta));
            }
        }

        let batches = link.exchange_sends(&fed.batch)?;
        for i in 0..self.graph.node_count() {
            self.tokens[i] += self.pending_real[i];
            self.dummy[i] += self.pending_dummy[i];
        }
        for (rank, batch) in batches.iter().enumerate() {
            if rank == fed.part() {
                continue;
            }
            for &(receiver, real, dummy) in &batch.tokens {
                if fed.plan.owns_node(receiver) {
                    self.tokens[receiver] += real;
                    self.dummy[receiver] += dummy;
                }
            }
            // Crossing-edge flow deltas keep the receiving side's ledger in
            // sync; entries for edges this part is not incident to land in
            // stale slots that are never read.
            for &(e, delta) in &batch.deltas {
                let slot = self.discrete_flow.get_mut(e).ok_or_else(|| {
                    CoreError::federation(format!("flow delta for unknown edge {e}"))
                })?;
                *slot += delta;
            }
        }
        self.round += 1;
        Ok(())
    }

    /// Federated [`apply_events`](DynamicBalancer::apply_events): every part
    /// sees the **full** event stream (scenario-derived, so no broadcast is
    /// needed) but applies token and twin effects only for the nodes it
    /// owns. Validation (node bounds, unit arrival weights) covers all
    /// events so every part rejects a bad stream identically. The returned
    /// report counts owned events only, so gathered partials sum to the
    /// sequential report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if an event names a node
    /// outside the graph or an arrival is not unit-weight.
    pub fn apply_events_federated(
        &mut self,
        events: &RoundEvents,
        fed: &mut crate::federate::FederatedExecutor,
    ) -> Result<EventReport, CoreError> {
        fed.ensure_plan(&self.graph)?;
        let n = self.graph.node_count();
        let mut report = EventReport::default();
        for &(node, budget) in &events.completions {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "completion on node {node}, graph has {n} nodes"
                )));
            }
            if !fed.plan.owns_node(node) {
                continue;
            }
            let take = budget.min(self.tokens[node]);
            self.tokens[node] -= take;
            self.twin.adjust_load(node, -(take as f64));
            report.completed_tasks += take;
            report.completed_weight += take;
        }
        for &(node, task) in &events.arrivals {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "arrival on node {node}, graph has {n} nodes"
                )));
            }
            if task.weight() != 1 {
                return Err(CoreError::invalid_parameter(
                    "randomized flow imitation (Algorithm 2) accepts unit-weight arrivals only",
                ));
            }
            if !fed.plan.owns_node(node) {
                continue;
            }
            self.tokens[node] += 1;
            self.twin.adjust_load(node, 1.0);
            report.arrived_tasks += 1;
            report.arrived_weight += 1;
        }
        self.arrived_weight += report.arrived_weight;
        self.completed_weight += report.completed_weight;
        Ok(report)
    }
}

impl<A: ContinuousProcess> DiscreteBalancer for RandomizedImitation<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn speeds(&self) -> &Speeds {
        &self.speeds
    }

    fn round(&self) -> usize {
        self.round
    }

    fn loads(&self) -> Vec<f64> {
        self.tokens
            .iter()
            .zip(&self.dummy)
            .map(|(&t, &d)| (t + d) as f64)
            .collect()
    }

    fn dummy_load(&self) -> u64 {
        self.dummy.iter().sum()
    }

    // lint: zero-alloc
    fn step(&mut self) {
        self.twin.step();

        // Struct-owned delivery buffers: the steady-state round touches no
        // heap. The twin's cumulative flows are read in place (the seed code
        // copied them to a fresh Vec every round).
        let n = self.graph.node_count();
        self.pending_real.fill(0);
        self.pending_dummy.fill(0);

        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let deficit = self.twin.cumulative_flows()[e] - self.discrete_flow[e] as f64;
            if deficit == 0.0 {
                continue;
            }
            let (sender, receiver, magnitude, sign) = if deficit > 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            let floor = magnitude.floor();
            let fraction = magnitude - floor;
            let round_up = fraction > 0.0 && {
                use rand::Rng;
                edge_rounding_rng(self.seed, self.round, e).gen_bool(fraction.min(1.0))
            };
            let send = floor as u64 + u64::from(round_up);
            if send == 0 {
                continue;
            }
            // Inlined `draw` (a method call would conflict with the live
            // borrow of the edge list): prefer real tokens, then held
            // dummies, then the infinite source.
            let real = send.min(self.tokens[sender]);
            self.tokens[sender] -= real;
            let dummy = send - real;
            let from_held = dummy.min(self.dummy[sender]);
            self.dummy[sender] -= from_held;
            self.dummy_created += dummy - from_held;
            self.pending_real[receiver] += real;
            self.pending_dummy[receiver] += dummy;
            self.discrete_flow[e] += sign * send as i64;
        }

        for i in 0..n {
            self.tokens[i] += self.pending_real[i];
            self.dummy[i] += self.pending_dummy[i];
        }
        self.round += 1;
    }
}

impl<A: ContinuousProcess> DynamicBalancer for RandomizedImitation<A> {
    fn apply_events(&mut self, events: &RoundEvents) -> Result<EventReport, CoreError> {
        let n = self.graph.node_count();
        let mut report = EventReport::default();
        // Completions first; tokens are interchangeable, so a budget simply
        // drains up to that many units.
        for &(node, budget) in &events.completions {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "completion on node {node}, graph has {n} nodes"
                )));
            }
            let take = budget.min(self.tokens[node]);
            self.tokens[node] -= take;
            self.twin.adjust_load(node, -(take as f64));
            report.completed_tasks += take;
            report.completed_weight += take;
        }
        // Arrivals must be unit-weight: Algorithm 2 is defined for identical
        // tasks only.
        for &(node, task) in &events.arrivals {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "arrival on node {node}, graph has {n} nodes"
                )));
            }
            if task.weight() != 1 {
                return Err(CoreError::invalid_parameter(
                    "randomized flow imitation (Algorithm 2) accepts unit-weight arrivals only",
                ));
            }
            self.tokens[node] += 1;
            self.twin.adjust_load(node, 1.0);
            report.arrived_tasks += 1;
            report.arrived_weight += 1;
        }
        self.arrived_weight += report.arrived_weight;
        self.completed_weight += report.completed_weight;
        Ok(report)
    }

    fn completed_weight(&self) -> u64 {
        self.completed_weight
    }

    fn arrived_weight(&self) -> u64 {
        self.arrived_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{DimensionExchange, Fos, RandomMatching};
    use crate::metrics;
    use lb_graph::{generators, AlphaScheme};

    fn fos_on(graph: Graph, speeds: &Speeds) -> Fos {
        Fos::new(graph, speeds, AlphaScheme::MaxDegreePlusOne).unwrap()
    }

    /// Builds an initial load with `base` tokens everywhere plus `extra` on
    /// node 0.
    fn padded_load(n: usize, base: u64, extra: u64) -> InitialLoad {
        let mut counts = vec![base; n];
        counts[0] += extra;
        InitialLoad::from_token_counts(counts)
    }

    #[test]
    fn rejects_weighted_tasks() {
        use crate::task::{Task, TaskId};
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = fos_on(g, &speeds);
        let weighted =
            InitialLoad::from_tasks(vec![vec![Task::new(TaskId(0), 2)], vec![], vec![], vec![]]);
        assert!(RandomizedImitation::new(fos, &weighted, speeds, 1).is_err());
    }

    #[test]
    fn conserves_real_tokens() {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = padded_load(16, 8, 160);
        let total = initial.total_weight() as f64;
        let mut alg2 =
            RandomizedImitation::new(fos_on(g, &speeds), &initial, speeds.clone(), 7).unwrap();
        alg2.run(200);
        assert!((alg2.real_loads().iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn flow_deviation_stays_below_one() {
        let g = generators::hypercube(4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = padded_load(16, 8, 320);
        let mut alg2 = RandomizedImitation::new(fos_on(g, &speeds), &initial, speeds, 11).unwrap();
        for _ in 0..200 {
            alg2.step();
            assert!(
                alg2.max_flow_deviation() < 1.0 + 1e-9,
                "per-edge deviation must stay below 1 (Observation 9(3))"
            );
        }
    }

    #[test]
    fn sufficient_load_avoids_infinite_source_whp() {
        // With d/4 + 2c·sqrt(d log n) ≈ a handful of tokens per node on a
        // degree-4 torus, the infinite source should not be touched.
        let g = generators::torus(6, 6).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let initial = padded_load(n, 10, 360);
        let mut alg2 =
            RandomizedImitation::new(fos_on(g, &speeds), &initial, speeds.clone(), 3).unwrap();
        alg2.run(1_000);
        assert_eq!(alg2.dummy_created(), 0);
        // Discrepancy is small (O(sqrt(d log n)) ≈ single digits).
        let max_min = metrics::max_min_discrepancy(&alg2.loads(), &speeds);
        assert!(max_min <= 12.0, "max_min = {max_min}");
    }

    #[test]
    fn determinism_per_seed_and_variation_across_seeds() {
        let mk = |seed| {
            let g = generators::torus(4, 4).unwrap();
            let speeds = Speeds::uniform(16);
            let initial = padded_load(16, 4, 100);
            RandomizedImitation::new(fos_on(g, &speeds), &initial, speeds, seed).unwrap()
        };
        let mut a = mk(5);
        let mut b = mk(5);
        let mut c = mk(6);
        a.run(50);
        b.run(50);
        c.run(50);
        assert_eq!(a.loads(), b.loads());
        // Different seeds should (almost surely) differ somewhere.
        assert_ne!(a.loads(), c.loads());
    }

    #[test]
    fn works_with_matching_processes() {
        let g = generators::hypercube(4).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let initial = padded_load(n, 8, 320);

        let de = DimensionExchange::with_greedy_coloring(g.clone(), &speeds).unwrap();
        let mut alg2_de = RandomizedImitation::new(de, &initial, speeds.clone(), 1).unwrap();
        alg2_de.run(1_000);
        assert!(metrics::max_min_discrepancy(&alg2_de.loads(), &speeds) <= 12.0);

        let rm = RandomMatching::new(g, &speeds, 99).unwrap();
        let mut alg2_rm = RandomizedImitation::new(rm, &initial, speeds.clone(), 2).unwrap();
        alg2_rm.run(2_000);
        assert!(metrics::max_min_discrepancy(&alg2_rm.loads(), &speeds) <= 12.0);
    }

    #[test]
    fn heterogeneous_speeds_balance_proportionally() {
        let g = generators::complete(4).unwrap();
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let initial = padded_load(4, 16, 800);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg2 = RandomizedImitation::new(fos, &initial, speeds.clone(), 13).unwrap();
        alg2.run(500);
        let loads = alg2.loads();
        assert!(loads[3] > loads[0], "fast node should carry more load");
        assert!(metrics::max_min_discrepancy(&loads, &speeds) <= 12.0);
    }

    #[test]
    fn mismatched_dimensions_rejected() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = fos_on(g, &speeds);
        let wrong_nodes = InitialLoad::single_source(5, 0, 10);
        assert!(RandomizedImitation::new(fos, &wrong_nodes, speeds.clone(), 0).is_err());

        let g = generators::cycle(4).unwrap();
        let fos = fos_on(g, &speeds);
        let initial = InitialLoad::single_source(4, 0, 10);
        assert!(RandomizedImitation::new(fos, &initial, Speeds::uniform(3), 0).is_err());
    }
}
