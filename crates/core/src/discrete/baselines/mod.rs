//! Baseline discrete balancing processes from prior work.
//!
//! These are the comparators of the paper's Tables 1 and 2. They are all
//! defined for identical (unit-weight) tokens, which is the setting the
//! original papers analyse; the diffusion baselines additionally support
//! heterogeneous speeds through the same `α`-scheme as the continuous FOS.
//!
//! | Baseline | Source | Model |
//! |----------|--------|-------|
//! | [`RoundDownDiffusion`] | Rabani–Sinclair–Wanka \[37\], Muthukrishnan et al. \[34\] | diffusion |
//! | [`RandomizedRoundingDiffusion`] | Friedrich–Gairing–Sauerwald \[26\] (randomized) | diffusion |
//! | [`QuasirandomDiffusion`] | Friedrich–Gairing–Sauerwald \[26\] (deterministic) | diffusion |
//! | [`ExcessTokenDiffusion`] | Berenbrink–Cooper–Friedetzky–Friedrich–Sauerwald \[9\] | diffusion |
//! | [`RoundDownMatching`] | Rabani–Sinclair–Wanka \[37\] | periodic / random matchings |
//! | [`RandomizedRoundingMatching`] | Friedrich–Sauerwald \[24\] | periodic / random matchings |
//! | [`RandomWalkFineBalancer`] | Elsässer–Monien \[18\], Elsässer–Sauerwald \[19\] | two-phase diffusion + random-walk fine balancing |

mod diffusion;
mod matching;
mod random_walk;

pub use diffusion::{
    ExcessPolicy, ExcessTokenDiffusion, QuasirandomDiffusion, RandomizedRoundingDiffusion,
    RoundDownDiffusion,
};
pub use matching::{MatchingSchedule, RandomizedRoundingMatching, RoundDownMatching};
pub use random_walk::RandomWalkFineBalancer;
