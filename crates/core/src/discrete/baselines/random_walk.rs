//! The two-phase "random walk" fine-balancing approach (Section 2.3 of the
//! paper; Elsässer–Monien \[18\], Elsässer–Sauerwald \[19\]).
//!
//! Phase 1 runs the classical round-down diffusion to get within coarse
//! distance of the average. Phase 2 ("fine balancing") marks every token
//! above the average as a *positive token* and every missing token below the
//! average as a *negative token* (a hole); both perform independent random
//! walk steps each round and annihilate when they meet. This achieves a
//! constant max-min discrepancy in `O(T)` extra rounds, at the cost of no
//! longer being a pure neighbourhood balancing scheme (nodes must know the
//! global average).

use crate::discrete::baselines::RoundDownDiffusion;
use crate::discrete::DiscreteBalancer;
use crate::error::CoreError;
use crate::load::InitialLoad;
use crate::task::Speeds;
use lb_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Two-phase random-walk fine balancer (tokens, uniform or heterogeneous
/// speeds).
///
/// # Examples
///
/// ```
/// use lb_core::discrete::baselines::RandomWalkFineBalancer;
/// use lb_core::discrete::DiscreteBalancer;
/// use lb_core::{InitialLoad, Speeds};
/// use lb_graph::generators;
///
/// let g = generators::torus(4, 4)?;
/// let initial = InitialLoad::single_source(16, 0, 320);
/// let mut p = RandomWalkFineBalancer::new(g, Speeds::uniform(16), &initial, 100, 7)?;
/// p.run(400);
/// assert!(p.metrics().max_min <= 4.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalkFineBalancer {
    /// Phase-1 engine (round-down diffusion).
    coarse: RoundDownDiffusion,
    /// Shared topology handle (same `Arc` as the coarse engine's).
    graph: Arc<Graph>,
    /// Rounds to spend in phase 1 before switching to fine balancing.
    phase1_rounds: usize,
    /// Per-node target load `round(W·s_i/S)` used by phase 2.
    targets: Vec<i64>,
    /// Positive tokens (units above target) per node — populated when phase 2
    /// starts.
    positive: Vec<u64>,
    /// Negative tokens (units below target, "holes") per node.
    negative: Vec<u64>,
    phase2_started: bool,
    rng: StdRng,
    round: usize,
    name: String,
}

impl RandomWalkFineBalancer {
    /// Creates the two-phase balancer. `phase1_rounds` controls how long the
    /// coarse diffusion phase lasts (use the continuous balancing time `T`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions (propagated from the phase-1 process).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        phase1_rounds: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        let coarse = RoundDownDiffusion::new(Arc::clone(&graph), speeds, initial)?;
        let n = coarse.graph().node_count();
        // Speed-proportional targets, rounded; the leftover units stay as
        // permanent positive/negative tokens of magnitude O(n) in total and
        // at most 1 per node.
        let total_weight = initial.total_weight() as f64;
        let total_speed = coarse.speeds().total() as f64;
        let targets: Vec<i64> = (0..n)
            .map(|i| (total_weight * coarse.speeds().get(i) as f64 / total_speed).round() as i64)
            .collect();
        Ok(RandomWalkFineBalancer {
            coarse,
            graph,
            phase1_rounds,
            targets,
            positive: vec![0; n],
            negative: vec![0; n],
            phase2_started: false,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            name: format!("random_walk_fine(phase1={phase1_rounds})"),
        })
    }

    /// Returns `true` once the fine-balancing phase has begun.
    pub fn in_fine_phase(&self) -> bool {
        self.phase2_started
    }

    /// Total positive tokens currently walking (0 before phase 2).
    pub fn positive_tokens(&self) -> u64 {
        self.positive.iter().sum()
    }

    /// Total negative tokens (holes) currently walking (0 before phase 2).
    pub fn negative_tokens(&self) -> u64 {
        self.negative.iter().sum()
    }

    fn start_phase2(&mut self) {
        let loads = self.coarse.loads();
        for (i, &load) in loads.iter().enumerate() {
            let excess = load as i64 - self.targets[i];
            if excess >= 0 {
                self.positive[i] = excess as u64;
            } else {
                self.negative[i] = (-excess) as u64;
            }
        }
        self.phase2_started = true;
    }

    fn walk_step(&mut self) {
        // Cheap Arc clone of the shared topology (the seed code deep-cloned
        // the whole graph every fine-balancing round here).
        let graph = Arc::clone(&self.graph);
        let n = graph.node_count();
        let mut new_positive = vec![0u64; n];
        let mut new_negative = vec![0u64; n];
        for i in 0..n {
            let neighbours = graph.neighbors(i);
            if neighbours.is_empty() {
                new_positive[i] += self.positive[i];
                new_negative[i] += self.negative[i];
                continue;
            }
            // Lazy random walk (stay with probability 1/2): laziness is
            // essential on bipartite graphs, where non-lazy positive and
            // negative tokens of opposite parity could never meet.
            for _ in 0..self.positive[i] {
                if self.rng.gen_bool(0.5) {
                    new_positive[i] += 1;
                } else {
                    let j = neighbours[self.rng.gen_range(0..neighbours.len())];
                    new_positive[j] += 1;
                }
            }
            for _ in 0..self.negative[i] {
                if self.rng.gen_bool(0.5) {
                    new_negative[i] += 1;
                } else {
                    let j = neighbours[self.rng.gen_range(0..neighbours.len())];
                    new_negative[j] += 1;
                }
            }
        }
        // Annihilate positive/negative pairs that landed on the same node.
        for i in 0..n {
            let cancel = new_positive[i].min(new_negative[i]);
            self.positive[i] = new_positive[i] - cancel;
            self.negative[i] = new_negative[i] - cancel;
        }
    }
}

impl DiscreteBalancer for RandomWalkFineBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        self.coarse.graph()
    }

    fn speeds(&self) -> &Speeds {
        self.coarse.speeds()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn loads(&self) -> Vec<f64> {
        if self.phase2_started {
            self.targets
                .iter()
                .zip(self.positive.iter().zip(&self.negative))
                .map(|(&t, (&p, &m))| (t + p as i64 - m as i64) as f64)
                .collect()
        } else {
            self.coarse.loads()
        }
    }

    fn step(&mut self) {
        if self.round < self.phase1_rounds {
            self.coarse.step();
        } else {
            if !self.phase2_started {
                self.start_phase2();
            }
            self.walk_step();
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use lb_graph::generators;

    fn setup() -> (Graph, Speeds, InitialLoad) {
        let g = generators::hypercube(4).unwrap();
        let n = g.node_count();
        (
            g,
            Speeds::uniform(n),
            InitialLoad::single_source(n, 0, 20 * n as u64),
        )
    }

    #[test]
    fn phase_transition_happens_at_configured_round() {
        let (g, speeds, initial) = setup();
        let mut p = RandomWalkFineBalancer::new(g, speeds, &initial, 50, 1).unwrap();
        p.run(50);
        assert!(!p.in_fine_phase());
        p.step();
        assert!(p.in_fine_phase());
    }

    #[test]
    fn conserves_total_load_in_both_phases() {
        let (g, speeds, initial) = setup();
        let total = initial.total_weight() as f64;
        let mut p = RandomWalkFineBalancer::new(g, speeds, &initial, 60, 2).unwrap();
        for _ in 0..300 {
            p.step();
            let sum: f64 = p.loads().iter().sum();
            assert!((sum - total).abs() < 1e-9, "round {}", p.round());
        }
    }

    #[test]
    fn fine_phase_reaches_small_discrepancy() {
        let (g, speeds, initial) = setup();
        let mut p = RandomWalkFineBalancer::new(g, speeds.clone(), &initial, 100, 3).unwrap();
        p.run(1_500);
        let disc = metrics::max_min_discrepancy(&p.loads(), &speeds);
        assert!(disc <= 3.0, "discrepancy = {disc}");
        // Most walking tokens should have annihilated by now.
        assert!(p.positive_tokens() + p.negative_tokens() <= 6);
    }

    #[test]
    fn heterogeneous_speeds_target_is_proportional() {
        let g = generators::complete(4).unwrap();
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let initial = InitialLoad::from_token_counts(vec![800, 0, 0, 0]);
        let mut p = RandomWalkFineBalancer::new(g, speeds.clone(), &initial, 50, 4).unwrap();
        p.run(800);
        let loads = p.loads();
        assert!(loads[3] > loads[0]);
        assert!(metrics::max_min_discrepancy(&loads, &speeds) <= 3.0);
    }

    #[test]
    fn rejects_weighted_tasks() {
        use crate::task::{Task, TaskId};
        let g = generators::cycle(4).unwrap();
        let weighted =
            InitialLoad::from_tasks(vec![vec![Task::new(TaskId(0), 2)], vec![], vec![], vec![]]);
        assert!(RandomWalkFineBalancer::new(g, Speeds::uniform(4), &weighted, 10, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, speeds, initial) = setup();
        let mk = |seed| {
            RandomWalkFineBalancer::new(g.clone(), speeds.clone(), &initial, 40, seed).unwrap()
        };
        let mut a = mk(9);
        let mut b = mk(9);
        a.run(200);
        b.run(200);
        assert_eq!(a.loads(), b.loads());
    }
}
