//! Diffusion-model baselines operating directly on integer token counts.
//!
//! Unlike the flow-imitation transformations, these processes compute the
//! continuous FOS amount from their *own current discrete load* each round
//! and round it per edge; they do not track a continuous twin. Randomized and
//! quasirandom rounding may transiently drive a node's load negative (the
//! original papers accept this); loads are therefore signed integers.

use crate::discrete::DiscreteBalancer;
use crate::error::CoreError;
use crate::load::InitialLoad;
use crate::task::Speeds;
use lb_graph::{AlphaScheme, DiffusionMatrix, Graph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shared state of all diffusion baselines.
#[derive(Debug, Clone)]
struct DiffusionState {
    graph: Arc<Graph>,
    speeds: Speeds,
    speeds_f64: Vec<f64>,
    matrix: DiffusionMatrix,
    loads: Vec<i64>,
    round: usize,
    min_load_seen: i64,
}

impl DiffusionState {
    fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        if !initial.is_unit_weight() {
            return Err(CoreError::invalid_parameter(
                "diffusion baselines are defined for unit-weight tokens",
            ));
        }
        if initial.node_count() != graph.node_count() || speeds.len() != graph.node_count() {
            return Err(CoreError::invalid_parameter(
                "initial load, speeds and graph must have the same number of nodes",
            ));
        }
        let speeds_f64 = speeds.to_f64();
        let matrix = DiffusionMatrix::new(&graph, &speeds_f64, AlphaScheme::MaxDegreePlusOne)?;
        let loads: Vec<i64> = initial.load_vector().iter().map(|&x| x as i64).collect();
        let min_load_seen = loads.iter().copied().min().unwrap_or(0);
        Ok(DiffusionState {
            graph,
            speeds,
            speeds_f64,
            matrix,
            loads,
            round: 0,
            min_load_seen,
        })
    }

    /// The continuous FOS amount node `i` would send to its neighbour over
    /// edge `e` this round (0 when the node's load is non-positive).
    fn continuous_send(&self, i: usize, e: usize) -> f64 {
        let x = self.loads[i] as f64;
        if x <= 0.0 {
            return 0.0;
        }
        self.matrix.alpha(e) * x / self.speeds_f64[i]
    }

    fn apply_transfers(&mut self, transfers: &[(usize, usize, i64)]) {
        for &(from, to, amount) in transfers {
            self.loads[from] -= amount;
            self.loads[to] += amount;
        }
        self.round += 1;
        let round_min = self.loads.iter().copied().min().unwrap_or(0);
        self.min_load_seen = self.min_load_seen.min(round_min);
    }

    fn loads_f64(&self) -> Vec<f64> {
        self.loads.iter().map(|&x| x as f64).collect()
    }
}

macro_rules! impl_balancer_common {
    ($ty:ty) => {
        impl DiscreteBalancer for $ty {
            fn name(&self) -> &str {
                &self.name
            }
            fn graph(&self) -> &Graph {
                &self.state.graph
            }
            fn speeds(&self) -> &Speeds {
                &self.state.speeds
            }
            fn round(&self) -> usize {
                self.state.round
            }
            fn loads(&self) -> Vec<f64> {
                self.state.loads_f64()
            }
            fn step(&mut self) {
                self.step_impl();
            }
        }

        impl $ty {
            /// The smallest node load observed so far; negative values mean
            /// the rounding scheme transiently overdrew a node.
            pub fn min_load_seen(&self) -> i64 {
                self.state.min_load_seen
            }
        }
    };
}

/// Round-down discrete diffusion (Rabani et al. \[37\], Muthukrishnan et al.
/// \[34\]): each node computes the continuous FOS amount for every incident
/// edge from its current load and sends `⌊y⌋` tokens.
///
/// Never induces negative load; its final max-min discrepancy grows with
/// `d·log n / (1 − λ)` (Table 1), i.e. with the graph size for tori and
/// hypercubes — this is exactly the gap the paper's Algorithm 1 closes.
#[derive(Debug, Clone)]
pub struct RoundDownDiffusion {
    state: DiffusionState,
    name: String,
}

impl RoundDownDiffusion {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
    ) -> Result<Self, CoreError> {
        Ok(RoundDownDiffusion {
            state: DiffusionState::new(graph, speeds, initial)?,
            name: "round_down_diffusion".to_string(),
        })
    }

    fn step_impl(&mut self) {
        let mut transfers = Vec::new();
        for i in self.state.graph.nodes() {
            for (j, e) in self.state.graph.neighbors_with_edges(i) {
                let send = self.state.continuous_send(i, e).floor() as i64;
                if send > 0 {
                    transfers.push((i, j, send));
                }
            }
        }
        self.state.apply_transfers(&transfers);
    }
}

impl_balancer_common!(RoundDownDiffusion);

/// Randomized-rounding discrete diffusion (Friedrich et al. \[26\]): the
/// continuous amount `y` is sent as `⌊y⌋ + Bernoulli(frac(y))` tokens,
/// independently per directed edge.
#[derive(Debug, Clone)]
pub struct RandomizedRoundingDiffusion {
    state: DiffusionState,
    rng: StdRng,
    name: String,
}

impl RandomizedRoundingDiffusion {
    /// Creates the process with an explicit RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(RandomizedRoundingDiffusion {
            state: DiffusionState::new(graph, speeds, initial)?,
            rng: StdRng::seed_from_u64(seed),
            name: "randomized_rounding_diffusion".to_string(),
        })
    }

    fn step_impl(&mut self) {
        let mut transfers = Vec::new();
        for i in self.state.graph.nodes() {
            for (j, e) in self.state.graph.neighbors_with_edges(i) {
                let y = self.state.continuous_send(i, e);
                let floor = y.floor();
                let frac = y - floor;
                let up = frac > 0.0 && self.rng.gen_bool(frac.min(1.0));
                let send = floor as i64 + i64::from(up);
                if send > 0 {
                    transfers.push((i, j, send));
                }
            }
        }
        self.state.apply_transfers(&transfers);
    }
}

impl_balancer_common!(RandomizedRoundingDiffusion);

/// Deterministic ("quasirandom") rounding diffusion (Friedrich et al. \[26\]):
/// per directed edge the accumulated rounding error decides whether to round
/// the continuous amount up or down, keeping every accumulated error bounded
/// by a constant.
#[derive(Debug, Clone)]
pub struct QuasirandomDiffusion {
    state: DiffusionState,
    /// Accumulated rounding error per directed edge, indexed `2·e + dir`
    /// where `dir = 0` for the canonical orientation and 1 for the reverse.
    accumulated: Vec<f64>,
    name: String,
}

impl QuasirandomDiffusion {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        let accumulated = vec![0.0; graph.edge_count() * 2];
        Ok(QuasirandomDiffusion {
            state: DiffusionState::new(graph, speeds, initial)?,
            accumulated,
            name: "quasirandom_diffusion".to_string(),
        })
    }

    /// The largest accumulated rounding error over all directed edges — the
    /// "bounded-error property" quantity of \[26\].
    pub fn max_accumulated_error(&self) -> f64 {
        self.accumulated.iter().map(|e| e.abs()).fold(0.0, f64::max)
    }

    fn step_impl(&mut self) {
        let mut transfers = Vec::new();
        for i in self.state.graph.nodes() {
            for (j, e) in self.state.graph.neighbors_with_edges(i) {
                let y = self.state.continuous_send(i, e);
                let (u, _) = self.state.graph.edge_endpoints(e);
                let dir = usize::from(i != u);
                let slot = 2 * e + dir;
                let acc = self.accumulated[slot];
                let down = y.floor();
                let up = y.ceil();
                // Choose the rounding that keeps the accumulated error small.
                let send = if (acc + y - down).abs() <= (acc + y - up).abs() {
                    down
                } else {
                    up
                };
                self.accumulated[slot] = acc + y - send;
                let send = send as i64;
                if send > 0 {
                    transfers.push((i, j, send));
                }
            }
        }
        self.state.apply_transfers(&transfers);
    }
}

impl_balancer_common!(QuasirandomDiffusion);

/// How the excess tokens of [`ExcessTokenDiffusion`] are spread over the
/// node's neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ExcessPolicy {
    /// Each excess token goes to a distinct neighbour chosen uniformly at
    /// random without replacement (the scheme analysed in \[9\]).
    #[default]
    RandomWithoutReplacement,
    /// Excess tokens are dealt to neighbours in round-robin order starting
    /// from a random offset (the variant noted in \[5\] to give comparable
    /// guarantees).
    RoundRobin,
}

/// Excess-token randomized diffusion (Berenbrink et al. \[9\]): every node
/// sends `⌊y⌋` tokens over each incident edge and then forwards its excess
/// tokens (the leftover fractional mass, an integer ≤ d) to neighbours chosen
/// according to an [`ExcessPolicy`]. Never induces negative load.
#[derive(Debug, Clone)]
pub struct ExcessTokenDiffusion {
    state: DiffusionState,
    rng: StdRng,
    policy: ExcessPolicy,
    name: String,
}

impl ExcessTokenDiffusion {
    /// Creates the process with an explicit RNG seed and the default
    /// without-replacement excess policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::with_policy(graph, speeds, initial, seed, ExcessPolicy::default())
    }

    /// Creates the process with an explicit excess-distribution policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks or
    /// mismatched dimensions.
    pub fn with_policy(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        seed: u64,
        policy: ExcessPolicy,
    ) -> Result<Self, CoreError> {
        Ok(ExcessTokenDiffusion {
            state: DiffusionState::new(graph, speeds, initial)?,
            rng: StdRng::seed_from_u64(seed),
            policy,
            name: format!("excess_token_diffusion({policy:?})"),
        })
    }

    /// The excess-distribution policy in use.
    pub fn policy(&self) -> ExcessPolicy {
        self.policy
    }

    fn step_impl(&mut self) {
        let mut transfers = Vec::new();
        for i in self.state.graph.nodes() {
            let x = self.state.loads[i];
            if x <= 0 {
                continue;
            }
            let mut sent_floor_total: i64 = 0;
            let mut continuous_total = 0.0;
            let neighbours: Vec<(usize, usize)> =
                self.state.graph.neighbors_with_edges(i).collect();
            for &(j, e) in &neighbours {
                let y = self.state.continuous_send(i, e);
                continuous_total += y;
                let send = y.floor() as i64;
                sent_floor_total += send;
                if send > 0 {
                    transfers.push((i, j, send));
                }
            }
            // Load the node keeps in the continuous process, rounded down.
            let keep_floor = (x as f64 - continuous_total).floor() as i64;
            let excess = x - sent_floor_total - keep_floor.max(0);
            if excess > 0 {
                // Forward one excess token to each of `excess` distinct
                // neighbours; anything beyond the degree stays put.
                let mut order: Vec<usize> = neighbours.iter().map(|&(j, _)| j).collect();
                match self.policy {
                    ExcessPolicy::RandomWithoutReplacement => order.shuffle(&mut self.rng),
                    ExcessPolicy::RoundRobin => {
                        let offset = self.rng.gen_range(0..order.len().max(1));
                        order.rotate_left(offset);
                    }
                }
                for &j in order.iter().take(excess as usize) {
                    transfers.push((i, j, 1));
                }
            }
        }
        self.state.apply_transfers(&transfers);
    }
}

impl_balancer_common!(ExcessTokenDiffusion);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use lb_graph::generators;

    fn setup(n_extra: u64) -> (Graph, Speeds, InitialLoad) {
        let g = generators::torus(4, 4).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let mut counts = vec![4u64; n];
        counts[0] += n_extra;
        (g, speeds, InitialLoad::from_token_counts(counts))
    }

    #[test]
    fn round_down_conserves_tokens_and_never_goes_negative() {
        let (g, speeds, initial) = setup(200);
        let total = initial.total_weight() as f64;
        let mut p = RoundDownDiffusion::new(g, speeds, &initial).unwrap();
        p.run(500);
        assert!((p.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        assert!(p.min_load_seen() >= 0);
        assert_eq!(p.round(), 500);
    }

    #[test]
    fn round_down_reduces_discrepancy_but_not_to_zero() {
        let (g, speeds, initial) = setup(320);
        let initial_disc = initial.initial_discrepancy(&speeds);
        let mut p = RoundDownDiffusion::new(g, speeds.clone(), &initial).unwrap();
        p.run(1_000);
        let final_disc = metrics::max_min_discrepancy(&p.loads(), &speeds);
        assert!(final_disc < initial_disc / 4.0);
        // Round-down famously stalls with a residual discrepancy.
        assert!(final_disc > 0.0);
    }

    #[test]
    fn randomized_rounding_conserves_tokens() {
        let (g, speeds, initial) = setup(320);
        let total = initial.total_weight() as f64;
        let mut p = RandomizedRoundingDiffusion::new(g, speeds.clone(), &initial, 3).unwrap();
        p.run(800);
        assert!((p.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        assert!(metrics::max_min_discrepancy(&p.loads(), &speeds) < 10.0);
    }

    #[test]
    fn quasirandom_has_bounded_accumulated_error() {
        let (g, speeds, initial) = setup(320);
        let mut p = QuasirandomDiffusion::new(g, speeds, &initial).unwrap();
        p.run(800);
        // The scheme keeps every accumulated per-edge error below 1.
        assert!(p.max_accumulated_error() <= 1.0 + 1e-9);
    }

    #[test]
    fn excess_token_never_goes_negative_and_balances_well() {
        let (g, speeds, initial) = setup(320);
        let total = initial.total_weight() as f64;
        let mut p = ExcessTokenDiffusion::new(g, speeds.clone(), &initial, 9).unwrap();
        p.run(800);
        assert!(p.min_load_seen() >= 0);
        assert!((p.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        assert!(metrics::max_min_discrepancy(&p.loads(), &speeds) < 10.0);
    }

    #[test]
    fn baselines_reject_weighted_tasks() {
        use crate::task::{Task, TaskId};
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let weighted =
            InitialLoad::from_tasks(vec![vec![Task::new(TaskId(0), 3)], vec![], vec![], vec![]]);
        assert!(RoundDownDiffusion::new(g.clone(), speeds.clone(), &weighted).is_err());
        assert!(RandomizedRoundingDiffusion::new(g.clone(), speeds.clone(), &weighted, 0).is_err());
        assert!(QuasirandomDiffusion::new(g.clone(), speeds.clone(), &weighted).is_err());
        assert!(ExcessTokenDiffusion::new(g, speeds, &weighted, 0).is_err());
    }

    #[test]
    fn randomized_baselines_are_deterministic_per_seed() {
        let (g, speeds, initial) = setup(100);
        let mut a =
            RandomizedRoundingDiffusion::new(g.clone(), speeds.clone(), &initial, 5).unwrap();
        let mut b = RandomizedRoundingDiffusion::new(g, speeds, &initial, 5).unwrap();
        a.run(100);
        b.run(100);
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn heterogeneous_speeds_round_down_balances_proportionally() {
        let g = generators::complete(4).unwrap();
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let initial = InitialLoad::from_token_counts(vec![800, 8, 8, 8]);
        let mut p = RoundDownDiffusion::new(g, speeds.clone(), &initial).unwrap();
        p.run(500);
        let loads = p.loads();
        assert!(loads[3] > loads[0]);
        assert!(metrics::max_avg_discrepancy(&loads, &speeds) < 20.0);
    }
}
