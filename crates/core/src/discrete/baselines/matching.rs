//! Matching-model baselines (periodic and random matchings) on integer token
//! counts.

use crate::discrete::DiscreteBalancer;
use crate::error::CoreError;
use crate::load::InitialLoad;
use crate::task::Speeds;
use lb_graph::{random_maximal_matching, Graph, Matching, PeriodicMatchings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// How the per-round matching is chosen.
#[derive(Debug, Clone)]
pub enum MatchingSchedule {
    /// A fixed family of matchings used round-robin (dimension exchange).
    Periodic(PeriodicMatchings),
    /// An independent random maximal matching every round, driven by the
    /// given seed.
    Random {
        /// Seed for the per-round matching sampler.
        seed: u64,
    },
}

impl MatchingSchedule {
    /// Convenience constructor: periodic matchings from a greedy edge
    /// colouring of `graph`.
    pub fn periodic_greedy(graph: &Graph) -> Self {
        MatchingSchedule::Periodic(PeriodicMatchings::greedy_edge_coloring(graph))
    }

    /// A short tag used in process names.
    fn tag(&self) -> &'static str {
        match self {
            MatchingSchedule::Periodic(_) => "periodic",
            MatchingSchedule::Random { .. } => "random",
        }
    }
}

/// Internal driver resolving the matching of each round.
#[derive(Debug, Clone)]
enum ScheduleState {
    Periodic(PeriodicMatchings),
    /// The RNG plus a scratch matching reused across rounds, so resolving a
    /// round's matching no longer clones (periodic) per round.
    Random(StdRng, Matching),
}

impl ScheduleState {
    fn new(schedule: MatchingSchedule) -> Self {
        match schedule {
            MatchingSchedule::Periodic(pm) => ScheduleState::Periodic(pm),
            MatchingSchedule::Random { seed } => {
                ScheduleState::Random(StdRng::seed_from_u64(seed), Matching::default())
            }
        }
    }

    fn matching_for_round(&mut self, graph: &Graph, t: usize) -> &Matching {
        match self {
            ScheduleState::Periodic(pm) => pm.for_round(t),
            ScheduleState::Random(rng, scratch) => {
                *scratch = random_maximal_matching(graph, rng);
                scratch
            }
        }
    }
}

/// Shared state of the matching-model baselines.
#[derive(Debug, Clone)]
struct MatchingState {
    graph: Arc<Graph>,
    speeds: Speeds,
    loads: Vec<i64>,
    schedule: ScheduleState,
    round: usize,
    min_load_seen: i64,
}

impl MatchingState {
    fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        schedule: MatchingSchedule,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        if !initial.is_unit_weight() {
            return Err(CoreError::invalid_parameter(
                "matching baselines are defined for unit-weight tokens",
            ));
        }
        if initial.node_count() != graph.node_count() || speeds.len() != graph.node_count() {
            return Err(CoreError::invalid_parameter(
                "initial load, speeds and graph must have the same number of nodes",
            ));
        }
        if let MatchingSchedule::Periodic(pm) = &schedule {
            if !pm.is_proper_cover(&graph) {
                return Err(CoreError::invalid_parameter(
                    "periodic matchings must cover every edge exactly once",
                ));
            }
        }
        let loads: Vec<i64> = initial.load_vector().iter().map(|&x| x as i64).collect();
        let min_load_seen = loads.iter().copied().min().unwrap_or(0);
        Ok(MatchingState {
            graph,
            speeds,
            loads,
            schedule: ScheduleState::new(schedule),
            round: 0,
            min_load_seen,
        })
    }

    fn finish_round(&mut self) {
        self.round += 1;
        let round_min = self.loads.iter().copied().min().unwrap_or(0);
        self.min_load_seen = self.min_load_seen.min(round_min);
    }

    fn loads_f64(&self) -> Vec<f64> {
        self.loads.iter().map(|&x| x as f64).collect()
    }
}

macro_rules! impl_matching_balancer_common {
    ($ty:ty) => {
        impl DiscreteBalancer for $ty {
            fn name(&self) -> &str {
                &self.name
            }
            fn graph(&self) -> &Graph {
                &self.state.graph
            }
            fn speeds(&self) -> &Speeds {
                &self.state.speeds
            }
            fn round(&self) -> usize {
                self.state.round
            }
            fn loads(&self) -> Vec<f64> {
                self.state.loads_f64()
            }
            fn step(&mut self) {
                self.step_impl();
            }
        }

        impl $ty {
            /// The smallest node load observed so far; negative values mean
            /// the rounding scheme transiently overdrew a node.
            pub fn min_load_seen(&self) -> i64 {
                self.state.min_load_seen
            }
        }
    };
}

/// Round-down matching baseline (Rabani et al. \[37\]): each matched pair
/// computes the continuous excess of its heavier endpoint and transfers
/// `⌊excess⌋` tokens. Never induces negative load.
#[derive(Debug, Clone)]
pub struct RoundDownMatching {
    state: MatchingState,
    name: String,
}

impl RoundDownMatching {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks, mismatched
    /// dimensions, or an improper periodic cover.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        schedule: MatchingSchedule,
    ) -> Result<Self, CoreError> {
        let name = format!("round_down_matching({})", schedule.tag());
        Ok(RoundDownMatching {
            state: MatchingState::new(graph, speeds, initial, schedule)?,
            name,
        })
    }

    fn step_impl(&mut self) {
        // Destructure so the schedule borrow (which may hand back an
        // internal reference) coexists with the load updates.
        let MatchingState {
            graph,
            schedule,
            loads,
            speeds,
            round,
            ..
        } = &mut self.state;
        let matching = schedule.matching_for_round(graph, *round);
        for &e in matching.edges() {
            let (u, v) = graph.edge_endpoints(e);
            let (su, sv) = (speeds.get(u) as f64, speeds.get(v) as f64);
            let excess = (sv * loads[u] as f64 - su * loads[v] as f64) / (su + sv);
            let transfer = excess.abs().floor() as i64;
            if transfer == 0 {
                continue;
            }
            let (from, to) = if excess > 0.0 { (u, v) } else { (v, u) };
            loads[from] -= transfer;
            loads[to] += transfer;
        }
        self.state.finish_round();
    }
}

impl_matching_balancer_common!(RoundDownMatching);

/// Randomized-rounding matching baseline (Friedrich–Sauerwald \[24\]): the
/// continuous excess is rounded up or down at random with probability equal
/// to its fractional part (the original paper rounds up/down with probability
/// ½ each; the unbiased variant used here is the one carried forward by
/// \[38\] and by the paper's own Algorithm 2, and gives the same asymptotic
/// guarantees).
#[derive(Debug, Clone)]
pub struct RandomizedRoundingMatching {
    state: MatchingState,
    rng: StdRng,
    name: String,
}

impl RandomizedRoundingMatching {
    /// Creates the process with an explicit rounding RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for weighted tasks, mismatched
    /// dimensions, or an improper periodic cover.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: Speeds,
        initial: &InitialLoad,
        schedule: MatchingSchedule,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let name = format!("randomized_rounding_matching({})", schedule.tag());
        Ok(RandomizedRoundingMatching {
            state: MatchingState::new(graph, speeds, initial, schedule)?,
            rng: StdRng::seed_from_u64(seed),
            name,
        })
    }

    fn step_impl(&mut self) {
        let MatchingState {
            graph,
            schedule,
            loads,
            speeds,
            round,
            ..
        } = &mut self.state;
        let matching = schedule.matching_for_round(graph, *round);
        for &e in matching.edges() {
            let (u, v) = graph.edge_endpoints(e);
            let (su, sv) = (speeds.get(u) as f64, speeds.get(v) as f64);
            let excess = (sv * loads[u] as f64 - su * loads[v] as f64) / (su + sv);
            let magnitude = excess.abs();
            let floor = magnitude.floor();
            let frac = magnitude - floor;
            let up = frac > 0.0 && self.rng.gen_bool(frac.min(1.0));
            let transfer = floor as i64 + i64::from(up);
            if transfer == 0 {
                continue;
            }
            let (from, to) = if excess > 0.0 { (u, v) } else { (v, u) };
            loads[from] -= transfer;
            loads[to] += transfer;
        }
        self.state.finish_round();
    }
}

impl_matching_balancer_common!(RandomizedRoundingMatching);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use lb_graph::generators;

    fn setup() -> (Graph, Speeds, InitialLoad) {
        let g = generators::hypercube(4).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let mut counts = vec![4u64; n];
        counts[0] += 320;
        (g, speeds, InitialLoad::from_token_counts(counts))
    }

    #[test]
    fn round_down_periodic_converges_without_negative_load() {
        let (g, speeds, initial) = setup();
        let schedule = MatchingSchedule::periodic_greedy(&g);
        let total = initial.total_weight() as f64;
        let mut p = RoundDownMatching::new(g, speeds.clone(), &initial, schedule).unwrap();
        p.run(1_000);
        assert!(p.min_load_seen() >= 0);
        assert!((p.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        let disc = metrics::max_min_discrepancy(&p.loads(), &speeds);
        assert!(disc < initial.initial_discrepancy(&speeds) / 4.0);
    }

    #[test]
    fn round_down_random_matching_converges() {
        let (g, speeds, initial) = setup();
        let mut p = RoundDownMatching::new(
            g,
            speeds.clone(),
            &initial,
            MatchingSchedule::Random { seed: 17 },
        )
        .unwrap();
        p.run(2_000);
        assert!(metrics::max_min_discrepancy(&p.loads(), &speeds) < 20.0);
        assert!(p.name().contains("random"));
    }

    #[test]
    fn randomized_rounding_periodic_gets_small_discrepancy() {
        let (g, speeds, initial) = setup();
        let schedule = MatchingSchedule::periodic_greedy(&g);
        let total = initial.total_weight() as f64;
        let mut p =
            RandomizedRoundingMatching::new(g, speeds.clone(), &initial, schedule, 23).unwrap();
        p.run(1_000);
        assert!((p.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        assert!(metrics::max_min_discrepancy(&p.loads(), &speeds) < 10.0);
        assert!(p.name().contains("periodic"));
    }

    #[test]
    fn heterogeneous_speeds_matching_balances_proportionally() {
        let g = generators::complete(4).unwrap();
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let initial = InitialLoad::from_token_counts(vec![400, 4, 4, 4]);
        let schedule = MatchingSchedule::periodic_greedy(&g);
        let mut p = RoundDownMatching::new(g, speeds.clone(), &initial, schedule).unwrap();
        p.run(300);
        let loads = p.loads();
        assert!(loads[3] > loads[0]);
        assert!(metrics::max_avg_discrepancy(&loads, &speeds) < 20.0);
    }

    #[test]
    fn rejects_weighted_tasks_and_bad_dimensions() {
        use crate::task::{Task, TaskId};
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let weighted =
            InitialLoad::from_tasks(vec![vec![Task::new(TaskId(0), 2)], vec![], vec![], vec![]]);
        let schedule = MatchingSchedule::periodic_greedy(&g);
        assert!(
            RoundDownMatching::new(g.clone(), speeds.clone(), &weighted, schedule.clone()).is_err()
        );
        let tokens = InitialLoad::single_source(5, 0, 10);
        assert!(RandomizedRoundingMatching::new(g, speeds, &tokens, schedule, 0).is_err());
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let (g, speeds, initial) = setup();
        let mk = |seed| {
            RoundDownMatching::new(
                g.clone(),
                speeds.clone(),
                &initial,
                MatchingSchedule::Random { seed },
            )
            .unwrap()
        };
        let mut a = mk(3);
        let mut b = mk(3);
        a.run(200);
        b.run(200);
        assert_eq!(a.loads(), b.loads());
    }
}
