//! Algorithm 1 — deterministic flow imitation.
//!
//! The discrete process `D(A)` runs the continuous process `A` as a twin and,
//! over every edge and in every round, forwards whole tasks until the
//! cumulative discrete flow is within `w_max` of the cumulative continuous
//! flow `f^A_e(t)`. When a node runs out of tasks it draws unit-weight dummy
//! tokens from an attached infinite source (bookkept as a scalar amount, as
//! the paper's implementation note prescribes).
//!
//! Guarantees (Theorem 3): at the continuous balancing time the max-avg
//! discrepancy is at most `2·d·w_max + 2`; if every node starts with load at
//! least `d·w_max·s_i`, no dummy token is ever created and the same bound
//! holds for the max-min discrepancy.
//!
//! # Hot path
//!
//! [`FlowImitation::step`] is allocation-free in steady state: per-node
//! storage is a [`TaskQueue`] (O(1) FIFO pops, O(log k) heap pops instead of
//! the O(k) scan + O(k) `Vec::remove` of the seed implementation), delivery
//! buffers are owned by the struct and reused, and the topology is shared
//! with the twin through one `Arc<Graph>`.

use super::dynamic::{DynamicBalancer, EventReport, RoundEvents};
use super::DiscreteBalancer;
use crate::continuous::{ContinuousProcess, ContinuousRunner};
use crate::error::CoreError;
use crate::load::InitialLoad;
use crate::task::{Speeds, Task, TaskQueue, Weight};
use lb_graph::{Graph, NodeId};
use std::sync::Arc;

pub use crate::task::TaskPicker;

/// Algorithm 1: the deterministic flow-imitation discretization of a
/// continuous process `A`.
///
/// # Examples
///
/// ```
/// use lb_core::continuous::Fos;
/// use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
/// use lb_core::{InitialLoad, Speeds};
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::hypercube(3)?;
/// let speeds = Speeds::uniform(8);
/// let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// // Every node starts with d·w_max = 3 tokens (Theorem 3(2) condition),
/// // plus an imbalanced pile on node 0.
/// let mut counts = vec![3u64; 8];
/// counts[0] += 232;
/// let initial = InitialLoad::from_token_counts(counts);
/// let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo)?;
/// alg1.run(200);
/// // No dummy token was needed and the final max-min discrepancy is bounded
/// // by 2·d·w_max + 2 = 8.
/// assert_eq!(alg1.dummy_created(), 0);
/// assert!(alg1.metrics().max_min <= 8.0 + 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowImitation<A: ContinuousProcess> {
    twin: ContinuousRunner<A>,
    graph: Arc<Graph>,
    speeds: Speeds,
    /// Real (workload) tasks currently held by each node, with incremental
    /// per-node weight totals.
    queues: Vec<TaskQueue>,
    /// Unit-weight dummy load currently held by each node.
    dummy: Vec<u64>,
    /// Cumulative net discrete flow along each canonical edge orientation.
    discrete_flow: Vec<i64>,
    wmax: Weight,
    picker: TaskPicker,
    round: usize,
    dummy_created: u64,
    /// Total items (real tasks + dummy units) moved over edges so far.
    items_sent: u64,
    name: String,
    /// Reused per-round scratch: pending real-task deliveries.
    pending_tasks: Vec<(NodeId, Task)>,
    /// Reused per-round scratch: pending dummy deliveries per node.
    pending_dummy: Vec<u64>,
    /// Total weight injected by dynamic arrival events.
    arrived_weight: u64,
    /// Total weight drained by dynamic completion events.
    completed_weight: u64,
}

impl<A: ContinuousProcess> FlowImitation<A> {
    /// Creates the discretization of `process` starting from `initial`.
    ///
    /// The continuous twin starts from the same load vector, as the paper
    /// prescribes; the topology is shared with the twin (no graph clone).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the node counts of the
    /// process, the initial load and the speed vector disagree.
    pub fn new(
        process: A,
        initial: &InitialLoad,
        speeds: Speeds,
        picker: TaskPicker,
    ) -> Result<Self, CoreError> {
        let graph = process.shared_graph();
        let n = graph.node_count();
        if initial.node_count() != n {
            return Err(CoreError::invalid_parameter(format!(
                "initial load has {} nodes, graph has {n}",
                initial.node_count()
            )));
        }
        if speeds.len() != n {
            return Err(CoreError::invalid_parameter(format!(
                "speeds vector has {} entries, graph has {n} nodes",
                speeds.len()
            )));
        }
        let wmax = initial.max_weight();
        let name = format!("alg1({})", process.name());
        let twin = ContinuousRunner::new(process, initial.load_vector_f64());
        let m = graph.edge_count();
        let queues = initial
            .clone()
            .into_tasks()
            .into_iter()
            .map(|tasks| TaskQueue::with_tasks(picker, tasks))
            .collect();
        Ok(FlowImitation {
            twin,
            graph,
            speeds,
            queues,
            dummy: vec![0; n],
            discrete_flow: vec![0; m],
            wmax,
            picker,
            round: 0,
            dummy_created: 0,
            items_sent: 0,
            name,
            pending_tasks: Vec::new(),
            pending_dummy: vec![0; n],
            arrived_weight: 0,
            completed_weight: 0,
        })
    }

    /// Replaces the topology (and the continuous twin) mid-run: the
    /// churn-event half of a dynamic scenario.
    ///
    /// `process` is a freshly built continuous process on the new graph. Per-
    /// node task queues and dummy holdings carry over index-by-index; if the
    /// new graph is smaller, the tasks of removed nodes are re-queued on node
    /// 0 (the deterministic "orphan adoption" rule); if it is larger, the new
    /// nodes start empty. The twin restarts from the *current* discrete load
    /// vector and both flow ledgers reset to zero — imitation begins a fresh
    /// epoch on the new topology, so the Observation 4 deviation bound holds
    /// per epoch.
    ///
    /// For a same-size rewire this reuses every engine buffer (queues, twin
    /// load/flow vectors, ledgers are cleared in place, not reallocated);
    /// only a node-count change reallocates the carried containers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the new graph is empty.
    pub fn replace_topology(&mut self, process: A) -> Result<(), CoreError> {
        let graph = process.shared_graph();
        let n = graph.node_count();
        if n == 0 {
            return Err(CoreError::invalid_parameter(
                "cannot replace topology with an empty graph",
            ));
        }
        // Orphaned tasks and dummies (nodes beyond the new n) move to node 0.
        while self.queues.len() > n {
            // lint: allow(R03, non-empty by the loop condition)
            let mut orphan = self.queues.pop().expect("len checked above");
            while let Some(task) = orphan.pop() {
                self.queues[0].push(task);
            }
            // lint: allow(R03, dummy mirrors queues length by construction)
            let dummies = self.dummy.pop().expect("dummy tracks queues");
            self.dummy[0] += dummies;
        }
        while self.queues.len() < n {
            self.queues.push(TaskQueue::new(self.picker));
            self.dummy.push(0);
        }
        // Speeds follow the same carry-over rule: truncate or pad with the
        // unit speed. A same-size rewire carries speeds through untouched.
        if self.speeds.len() != n {
            let mut speed_values = self.speeds.as_slice().to_vec();
            speed_values.resize(n, 1);
            // lint: allow(R03, carried values validated positive at admission)
            self.speeds = Speeds::new(speed_values).expect("carried speeds stay positive");
        }
        // The twin restarts from the current discrete loads (real + dummy),
        // and both cumulative-flow ledgers reset together.
        self.name = format!("alg1({})", process.name());
        self.twin.rebind(
            process,
            self.queues
                .iter()
                .zip(&self.dummy)
                .map(|(queue, &d)| (queue.total_weight() + d) as f64),
        );
        self.graph = graph;
        self.discrete_flow.clear();
        self.discrete_flow.resize(self.graph.edge_count(), 0);
        self.pending_tasks.clear();
        self.pending_dummy.clear();
        self.pending_dummy.resize(n, 0);
        Ok(())
    }

    /// The maximum task weight `w_max` the discretization assumes.
    pub fn wmax(&self) -> Weight {
        self.wmax
    }

    /// The task-picking policy in use.
    pub fn picker(&self) -> TaskPicker {
        self.picker
    }

    /// The continuous twin being imitated.
    pub fn continuous(&self) -> &ContinuousRunner<A> {
        &self.twin
    }

    /// Total dummy load created from the infinite source so far.
    pub fn dummy_created(&self) -> u64 {
        self.dummy_created
    }

    /// Per-node dummy holdings. In a federated partition only the owned
    /// entries are authoritative (foreign slots are stale); a sampler must
    /// slice its own node range.
    pub fn dummy_holdings(&self) -> &[u64] {
        &self.dummy
    }

    /// Total items (real tasks and dummy units) sent over edges so far.
    pub fn items_sent(&self) -> u64 {
        self.items_sent
    }

    /// Per-node loads *excluding* dummy load (the real workload only).
    ///
    /// Each entry is O(1): the queues maintain their totals incrementally,
    /// so sampling this inside an experiment loop costs O(n), not O(n·k).
    pub fn real_loads(&self) -> Vec<f64> {
        self.queues
            .iter()
            .map(|queue| queue.total_weight() as f64)
            .collect()
    }

    /// A snapshot of the tasks currently held by node `i` (dummy load not
    /// included), in unspecified order. Intended for inspection and tests.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tasks_of(&self, i: NodeId) -> Vec<Task> {
        self.queues[i].iter().copied().collect()
    }

    /// Number of tasks currently held by node `i` (dummy load not included).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn task_count_of(&self, i: NodeId) -> usize {
        self.queues[i].len()
    }

    /// Maximum absolute per-edge deviation `|e_e(t)| = |f^A_e(t) − f^D_e(t)|`
    /// between the continuous and discrete cumulative flows. Observation 4
    /// guarantees this stays below `w_max`.
    pub fn max_flow_deviation(&self) -> f64 {
        self.twin
            .cumulative_flows()
            .iter()
            .zip(&self.discrete_flow)
            .map(|(&fa, &fd)| (fa - fd as f64).abs())
            .fold(0.0, f64::max)
    }

    /// Captures the engine's full state at a between-rounds boundary (the
    /// quiescent point: no deliveries pending) for a snapshot. Event-time
    /// only — allocates freely; rounds between checkpoints stay
    /// allocation-free.
    pub fn capture(&self) -> crate::snapshot::EngineState {
        debug_assert!(self.pending_tasks.is_empty(), "capture between rounds only");
        let queues = self
            .queues
            .iter()
            .map(|queue| {
                let (next_seq, entries) = queue.snapshot();
                crate::snapshot::QueueState { next_seq, entries }
            })
            .collect();
        crate::snapshot::EngineState {
            round: self.round as u64,
            twin: self.twin.capture(),
            discrete: crate::snapshot::DiscreteState::Alg1(crate::snapshot::Alg1State {
                queues,
                dummy: self.dummy.clone(),
                discrete_flow: self.discrete_flow.clone(),
                wmax: self.wmax,
                dummy_created: self.dummy_created,
                items_sent: self.items_sent,
                arrived_weight: self.arrived_weight,
                completed_weight: self.completed_weight,
            }),
        }
    }

    /// Restores state captured by [`capture`](FlowImitation::capture) into
    /// an engine freshly built on the snapshot's topology epoch (same graph,
    /// speeds and picker). After a successful restore the engine continues
    /// **bit-identically** to the uninterrupted run, at any shard count.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Mismatch`](crate::snapshot::SnapshotError)
    /// if the snapshot belongs to Algorithm 2, does not fit the graph, or
    /// carries corrupt queue sequence numbers.
    pub fn restore(
        &mut self,
        state: &crate::snapshot::EngineState,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::{DiscreteState, SnapshotError};
        let DiscreteState::Alg1(alg1) = &state.discrete else {
            return Err(SnapshotError::mismatch(
                "snapshot carries Algorithm 2 state but the engine runs Algorithm 1",
            ));
        };
        let n = self.graph.node_count();
        let m = self.graph.edge_count();
        if alg1.queues.len() != n || alg1.dummy.len() != n {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {} node entries, graph has {n} nodes",
                alg1.queues.len()
            )));
        }
        if alg1.discrete_flow.len() != m {
            return Err(SnapshotError::mismatch(format!(
                "snapshot flow ledger has {} entries, graph has {m} edges",
                alg1.discrete_flow.len()
            )));
        }
        self.twin.restore(&state.twin)?;
        let queues = alg1
            .queues
            .iter()
            .enumerate()
            .map(|(node, queue)| {
                TaskQueue::restore(self.picker, queue.next_seq, &queue.entries)
                    .map_err(|e| SnapshotError::mismatch(format!("queue of node {node}: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.queues = queues;
        self.dummy.copy_from_slice(&alg1.dummy);
        self.discrete_flow.copy_from_slice(&alg1.discrete_flow);
        self.wmax = alg1.wmax;
        self.round = state.round as usize;
        self.dummy_created = alg1.dummy_created;
        self.items_sent = alg1.items_sent;
        self.arrived_weight = alg1.arrived_weight;
        self.completed_weight = alg1.completed_weight;
        self.pending_tasks.clear();
        self.pending_dummy.clear();
        self.pending_dummy.resize(n, 0);
        Ok(())
    }

    /// Sharded [`step`](DiscreteBalancer::step): the twin advances through
    /// [`ContinuousRunner::step_sharded`], then each shard worker forwards
    /// tasks over the edges whose **sender** lies in its node range (so all
    /// pops from one queue happen on one thread, in canonical edge order —
    /// exactly the sequential pop sequence), appending deliveries to
    /// per-shard outboxes. The apply phase drains the outboxes with task
    /// deliveries merged back into global edge order, making the whole round
    /// **bit-identical** to [`step`](DiscreteBalancer::step) for every shard
    /// count.
    ///
    /// The executor rebinds itself to the engine's current topology (plan
    /// rebuild after [`replace_topology`](FlowImitation::replace_topology)
    /// happens on the next sharded step). Steady-state calls on an unchanged
    /// topology do not allocate once the outboxes have warmed up.
    // lint: zero-alloc
    pub fn step_sharded(&mut self, exec: &mut crate::shard::ShardedExecutor)
    where
        A: Sync,
    {
        exec.ensure_plan(&self.graph);
        if exec.shard_count() == 1 {
            self.step();
            return;
        }
        self.twin.step_sharded(exec);

        let wmax = self.wmax as f64;
        {
            let continuous_flow = self.twin.cumulative_flows();
            let discrete_flow = &self.discrete_flow[..];
            let graph = &*self.graph;
            let queues = crate::shard::SharedSliceMut::new(&mut self.queues);
            let dummy = crate::shard::SharedSliceMut::new(&mut self.dummy);
            let (pool, plan, scratch) = exec.split();
            pool.run(|s| {
                // SAFETY: scratch cell and node range belong to shard `s`
                // alone; node ranges partition `0..n`.
                let scratch = unsafe { &mut *scratch[s].get() };
                scratch.task_out.clear();
                scratch.dummy_out.clear();
                scratch.flow_out.clear();
                scratch.items_sent = 0;
                scratch.dummy_created = 0;
                let nodes = plan.node_range(s);
                if nodes.is_empty() {
                    return;
                }
                let lo = nodes.start;
                let queues_s = unsafe { queues.range_mut(nodes.clone()) };
                let dummy_s = unsafe { dummy.range_mut(nodes.clone()) };
                let edges = graph.edges();
                for &e in plan.incident(s) {
                    let (u, v) = edges[e];
                    let deficit = continuous_flow[e] - discrete_flow[e] as f64;
                    let (sender, receiver, magnitude, sign) = if deficit >= 0.0 {
                        (u, v, deficit, 1i64)
                    } else {
                        (v, u, -deficit, -1i64)
                    };
                    // Exactly one of the (up to two) shards incident to this
                    // edge owns the sender and processes it.
                    if !nodes.contains(&sender) {
                        continue;
                    }
                    let mut moved: u64 = 0;
                    let mut dummy_moved: u64 = 0;
                    while magnitude - moved as f64 >= wmax {
                        if let Some(task) = queues_s[sender - lo].pop() {
                            moved += task.weight();
                            scratch.task_out.push((e, receiver, task));
                        } else {
                            if dummy_s[sender - lo] > 0 {
                                dummy_s[sender - lo] -= 1;
                            } else {
                                scratch.dummy_created += 1;
                            }
                            moved += 1;
                            dummy_moved += 1;
                        }
                        scratch.items_sent += 1;
                    }
                    if dummy_moved > 0 {
                        scratch.dummy_out.push((receiver, dummy_moved));
                    }
                    if moved > 0 {
                        scratch.flow_out.push((e, sign * moved as i64));
                    }
                }
            });
        }
        // Apply phase: task deliveries in global edge order (the order the
        // sequential engine filled `pending_tasks` in), then the additive
        // effects, whose order cannot be observed.
        exec.drain_merged_tasks(|receiver, task| self.queues[receiver].push(task));
        let mut items_sent = 0;
        let mut dummy_created = 0;
        for scratch in exec.shard_results() {
            for &(e, delta) in &scratch.flow_out {
                self.discrete_flow[e] += delta;
            }
            for &(receiver, amount) in &scratch.dummy_out {
                self.dummy[receiver] += amount;
            }
            items_sent += scratch.items_sent;
            dummy_created += scratch.dummy_created;
        }
        self.items_sent += items_sent;
        self.dummy_created += dummy_created;
        self.round += 1;
    }

    /// Federated [`step`](DiscreteBalancer::step): this engine instance owns
    /// one contiguous node range of a larger simulation and exchanges three
    /// payloads per round over `link` (boundary twin loads, crossing-edge
    /// flows, cross-partition deliveries). The twin advances through
    /// [`ContinuousRunner::step_federated`](crate::continuous::ContinuousRunner::step_federated),
    /// then this part forwards tasks over the edges whose **sender** it owns
    /// — the same unique-sender rule as the sharded step — routing deliveries
    /// either locally or into the outgoing [`SendBatch`](crate::SendBatch).
    /// Incoming batches merge back into global edge order, so the owned slice
    /// of every state vector stays **bit-identical** to the sequential
    /// engine's at every round.
    ///
    /// Counters (`dummy_created`, `items_sent`, `arrived_weight`,
    /// `completed_weight`) hold this part's disjoint partial sums; foreign
    /// entries of per-node and per-edge vectors are stale and never read.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Federation`] if an exchange fails or a peer sends
    /// a malformed payload, and [`CoreError::InvalidParameter`] if the
    /// underlying process does not support range-split kernels.
    pub fn step_federated(
        &mut self,
        fed: &mut crate::federate::FederatedExecutor,
        link: &mut dyn crate::federate::FederateLink,
    ) -> Result<(), CoreError>
    where
        A: Sync,
    {
        fed.ensure_plan(&self.graph)?;
        self.twin.step_federated(fed, link)?;

        debug_assert!(self.pending_tasks.is_empty());
        self.pending_dummy.fill(0);
        fed.batch.clear();
        fed.local.clear();

        let continuous_flow = self.twin.cumulative_flows();
        let edges = self.graph.edges();
        for &e in fed.plan.incident() {
            let (u, v) = edges[e];
            let deficit = continuous_flow[e] - self.discrete_flow[e] as f64;
            let (sender, receiver, magnitude, sign) = if deficit >= 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            // Exactly one part owns the sender and processes this edge; the
            // receiving part learns the flow delta from the send exchange.
            if !fed.plan.owns_node(sender) {
                continue;
            }
            let receiver_owned = fed.plan.owns_node(receiver);
            let mut moved: u64 = 0;
            let mut dummy_moved: u64 = 0;
            while magnitude - moved as f64 >= self.wmax as f64 {
                if let Some(task) = self.queues[sender].pop() {
                    moved += task.weight();
                    if receiver_owned {
                        fed.local.push((e, receiver, task));
                    } else {
                        fed.batch.tasks.push((e, receiver, task));
                    }
                } else {
                    if self.dummy[sender] > 0 {
                        self.dummy[sender] -= 1;
                    } else {
                        self.dummy_created += 1;
                    }
                    moved += 1;
                    dummy_moved += 1;
                }
                self.items_sent += 1;
            }
            if dummy_moved > 0 {
                if receiver_owned {
                    self.pending_dummy[receiver] += dummy_moved;
                } else {
                    fed.batch.dummy.push((receiver, dummy_moved));
                }
            }
            if moved > 0 {
                let delta = sign * moved as i64;
                self.discrete_flow[e] += delta;
                if !receiver_owned {
                    fed.batch.deltas.push((e, delta));
                }
            }
        }

        let batches = link.exchange_sends(&fed.batch)?;
        // Task deliveries in global edge order: the k-way merge interleaves
        // this part's local deliveries with every foreign batch exactly as
        // the sequential engine filled `pending_tasks`.
        fed.merge_deliveries(&batches, |receiver, task| self.queues[receiver].push(task));

        // Additive effects, whose order cannot be observed.
        for (node, amount) in self.pending_dummy.iter().enumerate() {
            self.dummy[node] += amount;
        }
        for (rank, batch) in batches.iter().enumerate() {
            if rank == fed.part() {
                continue;
            }
            for &(receiver, amount) in &batch.dummy {
                if fed.plan.owns_node(receiver) {
                    self.dummy[receiver] += amount;
                }
            }
            // Crossing-edge flow deltas keep the receiving side's ledger in
            // sync; entries for edges this part is not incident to land in
            // stale slots that are never read.
            for &(e, delta) in &batch.deltas {
                let slot = self.discrete_flow.get_mut(e).ok_or_else(|| {
                    CoreError::federation(format!("flow delta for unknown edge {e}"))
                })?;
                *slot += delta;
            }
        }
        self.round += 1;
        Ok(())
    }

    /// Federated [`apply_events`](DynamicBalancer::apply_events): every part
    /// sees the **full** event stream (scenario-derived, so no broadcast is
    /// needed) but applies queue and twin effects only for the nodes it owns.
    /// `w_max` tracks all arrivals — it is global state every part must agree
    /// on. The returned report counts owned events only, so gathered partials
    /// sum to the sequential report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if an event names a node
    /// outside the graph (checked for all events, owned or not).
    pub fn apply_events_federated(
        &mut self,
        events: &RoundEvents,
        fed: &mut crate::federate::FederatedExecutor,
    ) -> Result<EventReport, CoreError> {
        fed.ensure_plan(&self.graph)?;
        let n = self.graph.node_count();
        let mut report = EventReport::default();
        for &(node, budget) in &events.completions {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "completion on node {node}, graph has {n} nodes"
                )));
            }
            if !fed.plan.owns_node(node) {
                continue;
            }
            let mut remaining = budget;
            while let Some(task) = self.queues[node].peek() {
                let w = task.weight();
                if w > remaining {
                    break;
                }
                self.queues[node].pop();
                remaining -= w;
                report.completed_tasks += 1;
                report.completed_weight += w;
                self.twin.adjust_load(node, -(w as f64));
            }
        }
        for &(node, task) in &events.arrivals {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "arrival on node {node}, graph has {n} nodes"
                )));
            }
            let w = task.weight();
            // Global: every part tracks the heaviest task ever seen, owned
            // or not, so the imitation floor rule agrees across parts.
            self.wmax = self.wmax.max(w);
            if !fed.plan.owns_node(node) {
                continue;
            }
            self.queues[node].push(task);
            self.twin.adjust_load(node, w as f64);
            report.arrived_tasks += 1;
            report.arrived_weight += w;
        }
        self.arrived_weight += report.arrived_weight;
        self.completed_weight += report.completed_weight;
        Ok(report)
    }
}

impl<A: ContinuousProcess> DiscreteBalancer for FlowImitation<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn speeds(&self) -> &Speeds {
        &self.speeds
    }

    fn round(&self) -> usize {
        self.round
    }

    fn loads(&self) -> Vec<f64> {
        self.queues
            .iter()
            .zip(&self.dummy)
            .map(|(queue, &d)| (queue.total_weight() + d) as f64)
            .collect()
    }

    fn dummy_load(&self) -> u64 {
        self.dummy.iter().sum()
    }

    // lint: zero-alloc
    fn step(&mut self) {
        // Advance the continuous twin so f^A now refers to the end of the
        // current round t.
        self.twin.step();

        // Deliveries are applied after every edge has been processed so that
        // a node can only forward tasks it held at the beginning of the round
        // (plus freshly generated dummies). Both buffers are struct-owned and
        // reused across rounds.
        debug_assert!(self.pending_tasks.is_empty());
        self.pending_dummy.fill(0);

        let continuous_flow = self.twin.cumulative_flows();
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            // Flow deficit along the canonical orientation.
            let deficit = continuous_flow[e] - self.discrete_flow[e] as f64;
            let (sender, receiver, magnitude, sign) = if deficit >= 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            // Forward whole tasks while the remaining deficit is at least
            // w_max; this matches the paper's floor rule for unit tasks and
            // keeps the per-edge deviation in [0, w_max).
            let mut moved: u64 = 0;
            while magnitude - moved as f64 >= self.wmax as f64 {
                // Prefer a real task; fall back to a held dummy, then the
                // infinite source. Dummies behave like normal tokens once
                // created, so any choice is admissible per the paper.
                if let Some(task) = self.queues[sender].pop() {
                    moved += task.weight();
                    self.pending_tasks.push((receiver, task));
                } else {
                    if self.dummy[sender] > 0 {
                        self.dummy[sender] -= 1;
                    } else {
                        self.dummy_created += 1;
                    }
                    moved += 1;
                    self.pending_dummy[receiver] += 1;
                }
                self.items_sent += 1;
            }
            self.discrete_flow[e] += sign * moved as i64;
        }

        // Apply deliveries. `mem::take` detaches the buffer so the borrow
        // checker allows pushing into `queues`; clearing preserves capacity.
        let mut pending_tasks = std::mem::take(&mut self.pending_tasks);
        for &(receiver, task) in &pending_tasks {
            self.queues[receiver].push(task);
        }
        pending_tasks.clear();
        self.pending_tasks = pending_tasks;

        for (node, amount) in self.pending_dummy.iter().enumerate() {
            self.dummy[node] += amount;
        }
        self.round += 1;
    }
}

impl<A: ContinuousProcess> DynamicBalancer for FlowImitation<A> {
    fn apply_events(&mut self, events: &RoundEvents) -> Result<EventReport, CoreError> {
        let n = self.graph.node_count();
        let mut report = EventReport::default();
        // Completions first: finished work leaves both the queues and the
        // twin. Whole tasks only, in pick order, while the budget lasts.
        for &(node, budget) in &events.completions {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "completion on node {node}, graph has {n} nodes"
                )));
            }
            let mut remaining = budget;
            while let Some(task) = self.queues[node].peek() {
                let w = task.weight();
                if w > remaining {
                    break;
                }
                self.queues[node].pop();
                remaining -= w;
                report.completed_tasks += 1;
                report.completed_weight += w;
                self.twin.adjust_load(node, -(w as f64));
            }
        }
        // Arrivals: new work lands on a queue and on the twin; w_max tracks
        // the heaviest task ever seen so the imitation floor rule stays
        // conservative.
        for &(node, task) in &events.arrivals {
            if node >= n {
                return Err(CoreError::invalid_parameter(format!(
                    "arrival on node {node}, graph has {n} nodes"
                )));
            }
            let w = task.weight();
            self.wmax = self.wmax.max(w);
            self.queues[node].push(task);
            self.twin.adjust_load(node, w as f64);
            report.arrived_tasks += 1;
            report.arrived_weight += w;
        }
        self.arrived_weight += report.arrived_weight;
        self.completed_weight += report.completed_weight;
        Ok(report)
    }

    fn completed_weight(&self) -> u64 {
        self.completed_weight
    }

    fn arrived_weight(&self) -> u64 {
        self.arrived_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{DimensionExchange, Fos, RandomMatching};
    use crate::metrics;
    use crate::task::TaskId;
    use lb_graph::{generators, AlphaScheme};

    fn fos_on(graph: Graph, speeds: &Speeds) -> Fos {
        Fos::new(graph, speeds, AlphaScheme::MaxDegreePlusOne).unwrap()
    }

    #[test]
    fn conserves_real_tasks() {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 160);
        let mut alg1 = FlowImitation::new(
            fos_on(g, &speeds),
            &initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )
        .unwrap();
        alg1.run(100);
        let total_real: f64 = alg1.real_loads().iter().sum();
        assert!((total_real - 160.0).abs() < 1e-9);
        // Task identities survive: exactly 160 distinct tasks exist.
        let count: usize = (0..16).map(|i| alg1.task_count_of(i)).sum();
        assert_eq!(count, 160);
        let snapshot_count: usize = (0..16).map(|i| alg1.tasks_of(i).len()).sum();
        assert_eq!(snapshot_count, 160);
        assert!(alg1.items_sent() > 0);
    }

    #[test]
    fn flow_deviation_stays_below_wmax() {
        let g = generators::hypercube(4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 5, 320);
        let mut alg1 =
            FlowImitation::new(fos_on(g, &speeds), &initial, speeds, TaskPicker::Fifo).unwrap();
        for _ in 0..150 {
            alg1.step();
            assert!(
                alg1.max_flow_deviation() < alg1.wmax() as f64 + 1e-9,
                "Observation 4 violated at round {}",
                alg1.round()
            );
        }
    }

    #[test]
    fn theorem3_bound_on_hypercube_tokens() {
        // Unit tasks with the Theorem 3(2) sufficient-load condition: every
        // node starts with d·w_max = 5 tokens, plus an imbalanced pile on
        // node 0. The final max-min (and max-avg) discrepancy must be at most
        // 2d + 2.
        let dim = 5u32;
        let g = generators::hypercube(dim).unwrap();
        let n = g.node_count();
        let d = g.max_degree() as f64;
        let speeds = Speeds::uniform(n);
        let mut counts = vec![dim as u64; n];
        counts[0] += (n * 20) as u64;
        let initial = InitialLoad::from_token_counts(counts);
        let fos = fos_on(g, &speeds);
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        // Run well past the continuous balancing time.
        alg1.run(2_000);
        assert!(alg1.continuous().is_balanced(1.0));
        assert_eq!(alg1.dummy_created(), 0);
        let max_avg = metrics::max_avg_discrepancy(&alg1.loads(), &speeds);
        let max_min = metrics::max_min_discrepancy(&alg1.loads(), &speeds);
        assert!(
            max_avg <= 2.0 * d + 2.0 + 1e-9 && max_min <= 2.0 * d + 2.0 + 1e-9,
            "max-avg {max_avg} / max-min {max_min} exceed 2d + 2 = {}",
            2.0 * d + 2.0
        );
    }

    #[test]
    fn sufficient_initial_load_never_uses_infinite_source() {
        // Condition of Theorem 3(2): x(0) = x' + d·w_max·(s_1, …, s_n).
        let g = generators::torus(4, 4).unwrap();
        let n = g.node_count();
        let d = g.max_degree() as u64;
        let speeds = Speeds::uniform(n);
        // Everyone starts with exactly d·w_max = 4 tokens plus an imbalanced
        // extra pile on node 0.
        let mut counts = vec![d; n];
        counts[0] += 200;
        let initial = InitialLoad::from_token_counts(counts);
        let fos = fos_on(g, &speeds);
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1.run(1_500);
        assert_eq!(alg1.dummy_created(), 0, "infinite source must stay unused");
        assert_eq!(alg1.dummy_load(), 0);
        let d = d as f64;
        let max_min = metrics::max_min_discrepancy(&alg1.loads(), &speeds);
        assert!(
            max_min <= 2.0 * d + 2.0 + 1e-9,
            "max-min {max_min} exceeds 2d + 2"
        );
    }

    #[test]
    fn weighted_tasks_respect_theorem3_bound() {
        // Weighted tasks with w_max = 4 on a 2-dim torus.
        let g = generators::torus(4, 4).unwrap();
        let n = g.node_count();
        let d = g.max_degree() as u64;
        let wmax = 4u64;
        let speeds = Speeds::uniform(n);
        // Node 0 holds 60 tasks of alternating weights 1..=4; everyone else
        // holds d·w_max worth of unit tasks so the no-dummy condition holds.
        let mut tasks: Vec<Vec<Task>> = Vec::new();
        let mut id = 0u64;
        for i in 0..n {
            let mut node_tasks = Vec::new();
            if i == 0 {
                for k in 0..60u64 {
                    node_tasks.push(Task::new(TaskId(id), (k % wmax) + 1));
                    id += 1;
                }
            }
            for _ in 0..(d * wmax) {
                node_tasks.push(Task::new(TaskId(id), 1));
                id += 1;
            }
            tasks.push(node_tasks);
        }
        let initial = InitialLoad::from_tasks(tasks);
        assert_eq!(initial.max_weight(), wmax);
        let fos = fos_on(g, &speeds);
        let mut alg1 =
            FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::LargestFirst).unwrap();
        alg1.run(1_500);
        assert!(alg1.continuous().is_balanced(1.0));
        assert_eq!(alg1.dummy_created(), 0);
        let bound = 2.0 * d as f64 * wmax as f64 + 2.0;
        let max_min = metrics::max_min_discrepancy(&alg1.loads(), &speeds);
        assert!(max_min <= bound + 1e-9, "max-min {max_min} exceeds {bound}");
    }

    #[test]
    fn heterogeneous_speeds_balance_proportionally() {
        let g = generators::complete(4).unwrap();
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let initial = InitialLoad::single_source(4, 0, 800);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1.run(500);
        let d = alg1.graph().max_degree() as f64;
        let max_avg = metrics::max_avg_discrepancy(&alg1.loads(), &speeds);
        assert!(max_avg <= 2.0 * d + 2.0 + 1e-9);
        // The fastest node must end with substantially more load than the
        // slowest ones.
        let loads = alg1.loads();
        assert!(loads[3] > loads[0]);
    }

    #[test]
    fn works_with_matching_based_processes() {
        let g = generators::hypercube(3).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let initial = InitialLoad::single_source(n, 0, 64);

        let de = DimensionExchange::with_greedy_coloring(g.clone(), &speeds).unwrap();
        let mut alg1_de =
            FlowImitation::new(de, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1_de.run(400);
        let d = 3.0;
        assert!(metrics::max_avg_discrepancy(&alg1_de.loads(), &speeds) <= 2.0 * d + 2.0 + 1e-9);

        let rm = RandomMatching::new(g, &speeds, 42).unwrap();
        let mut alg1_rm =
            FlowImitation::new(rm, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1_rm.run(800);
        assert!(metrics::max_avg_discrepancy(&alg1_rm.loads(), &speeds) <= 2.0 * d + 2.0 + 1e-9);
    }

    #[test]
    fn determinism_same_inputs_same_trajectory() {
        let mk = || {
            let g = generators::torus(3, 3).unwrap();
            let speeds = Speeds::uniform(9);
            let initial = InitialLoad::single_source(9, 4, 90);
            let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..50 {
            a.step();
            b.step();
            assert_eq!(a.loads(), b.loads());
        }
    }

    #[test]
    fn picker_variants_all_satisfy_bound() {
        for picker in [
            TaskPicker::Fifo,
            TaskPicker::LargestFirst,
            TaskPicker::SmallestFirst,
        ] {
            let g = generators::cycle(8).unwrap();
            let speeds = Speeds::uniform(8);
            let mut tasks = Vec::new();
            let mut id = 0;
            for i in 0..8 {
                let mut node_tasks = Vec::new();
                let count = if i == 0 { 30 } else { 4 };
                for k in 0..count {
                    node_tasks.push(Task::new(TaskId(id), (k % 3) + 1));
                    id += 1;
                }
                tasks.push(node_tasks);
            }
            let initial = InitialLoad::from_tasks(tasks);
            let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), picker).unwrap();
            alg1.run(1_000);
            assert_eq!(alg1.picker(), picker);
            let bound = 2.0 * 2.0 * 3.0 + 2.0;
            assert!(
                metrics::max_avg_discrepancy(&alg1.loads(), &speeds) <= bound + 1e-9,
                "picker {picker:?} violated the bound"
            );
        }
    }

    #[test]
    fn mismatched_dimensions_rejected() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = fos_on(g, &speeds);
        let wrong_nodes = InitialLoad::single_source(5, 0, 10);
        assert!(FlowImitation::new(fos, &wrong_nodes, speeds.clone(), TaskPicker::Fifo).is_err());

        let g = generators::cycle(4).unwrap();
        let fos = fos_on(g, &speeds);
        let initial = InitialLoad::single_source(4, 0, 10);
        let wrong_speeds = Speeds::uniform(3);
        assert!(FlowImitation::new(fos, &initial, wrong_speeds, TaskPicker::Fifo).is_err());
    }

    #[test]
    fn insufficient_load_uses_dummy_but_bounds_real_max_avg() {
        // Start with very little load: dummies may be created, but ignoring
        // them at the end (as the paper prescribes) the maximum real makespan
        // stays within 2·d·w_max + 2 of the original average W/S.
        let g = generators::star(9).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let initial = InitialLoad::single_source(n, 1, 5);
        let original_avg = 5.0 / n as f64;
        let fos = fos_on(g, &speeds);
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
        alg1.run(600);
        let d = 8.0;
        // Real workload is conserved even when dummies circulate.
        let real = alg1.real_loads();
        assert!((real.iter().sum::<f64>() - 5.0).abs() < 1e-9);
        let real_max_avg = metrics::max_makespan(&real, &speeds) - original_avg;
        assert!(
            real_max_avg <= 2.0 * d + 2.0 + 1e-9,
            "real max-avg = {real_max_avg}"
        );
    }

    #[test]
    fn twin_shares_the_graph_instance() {
        let g = generators::torus(3, 3).unwrap();
        let speeds = Speeds::uniform(9);
        let initial = InitialLoad::single_source(9, 0, 18);
        let fos = fos_on(g, &speeds);
        let alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap();
        assert!(
            std::ptr::eq(alg1.graph(), alg1.continuous().process().graph()),
            "discretizer and twin must share one Graph allocation"
        );
    }
}
