//! Discrepancy and potential metrics (Section 3 of the paper).
//!
//! All metrics are phrased in terms of *makespans* `x_i / s_i`:
//!
//! * **max-min discrepancy** — `max_i x_i/s_i − min_i x_i/s_i`,
//! * **max-avg discrepancy** — `max_i x_i/s_i − W/S`,
//! * **potential** — `Φ = Σ_i (x_i − s_i·W/S)²`, the quantity driving the
//!   potential-function analyses referenced in Section 2.2.

use crate::task::Speeds;

/// Per-node makespans `x_i / s_i`.
///
/// # Panics
///
/// Panics if `loads.len() != speeds.len()`.
pub fn makespans(loads: &[f64], speeds: &Speeds) -> Vec<f64> {
    assert_eq!(
        loads.len(),
        speeds.len(),
        "loads and speeds length mismatch"
    );
    loads
        .iter()
        .zip(speeds.as_slice())
        .map(|(&x, &s)| x / s as f64)
        .collect()
}

/// The maximum makespan of the assignment.
///
/// Returns 0.0 for an empty network.
pub fn max_makespan(loads: &[f64], speeds: &Speeds) -> f64 {
    makespans(loads, speeds)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0)
}

/// The makespan of the perfectly balanced allocation, `W / S`.
///
/// Returns 0.0 for an empty network.
pub fn balanced_makespan(loads: &[f64], speeds: &Speeds) -> f64 {
    assert_eq!(
        loads.len(),
        speeds.len(),
        "loads and speeds length mismatch"
    );
    let total_speed = speeds.total();
    if total_speed == 0 {
        return 0.0;
    }
    loads.iter().sum::<f64>() / total_speed as f64
}

/// Max-min discrepancy: difference between the largest and smallest makespan.
///
/// Returns 0.0 for an empty network.
pub fn max_min_discrepancy(loads: &[f64], speeds: &Speeds) -> f64 {
    let ms = makespans(loads, speeds);
    if ms.is_empty() {
        return 0.0;
    }
    let max = ms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
    max - min
}

/// Max-avg discrepancy: difference between the largest makespan and the
/// balanced makespan `W/S`.
///
/// Returns 0.0 for an empty network.
pub fn max_avg_discrepancy(loads: &[f64], speeds: &Speeds) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    max_makespan(loads, speeds) - balanced_makespan(loads, speeds)
}

/// The quadratic potential `Φ = Σ_i (x_i − s_i·W/S)²`.
pub fn potential(loads: &[f64], speeds: &Speeds) -> f64 {
    assert_eq!(
        loads.len(),
        speeds.len(),
        "loads and speeds length mismatch"
    );
    let avg = balanced_makespan(loads, speeds);
    loads
        .iter()
        .zip(speeds.as_slice())
        .map(|(&x, &s)| {
            let target = s as f64 * avg;
            (x - target) * (x - target)
        })
        .sum()
}

/// A snapshot of all load-balance metrics at a single round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Round index the snapshot was taken at (state at the *beginning* of
    /// this round).
    pub round: usize,
    /// Max-min makespan discrepancy.
    pub max_min: f64,
    /// Max-avg makespan discrepancy.
    pub max_avg: f64,
    /// Maximum makespan.
    pub max_makespan: f64,
    /// Quadratic potential `Φ`.
    pub potential: f64,
}

impl MetricsSnapshot {
    /// Computes a snapshot of all metrics for the given state.
    pub fn compute(round: usize, loads: &[f64], speeds: &Speeds) -> Self {
        MetricsSnapshot {
            round,
            max_min: max_min_discrepancy(loads, speeds),
            max_avg: max_avg_discrepancy(loads, speeds),
            max_makespan: max_makespan(loads, speeds),
            potential: potential(loads, speeds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_speeds_discrepancies() {
        let speeds = Speeds::uniform(4);
        let loads = vec![10.0, 2.0, 4.0, 4.0];
        assert!((max_min_discrepancy(&loads, &speeds) - 8.0).abs() < 1e-12);
        // W/S = 20/4 = 5.
        assert!((max_avg_discrepancy(&loads, &speeds) - 5.0).abs() < 1e-12);
        assert!((max_makespan(&loads, &speeds) - 10.0).abs() < 1e-12);
        assert!((balanced_makespan(&loads, &speeds) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_speeds_use_makespans() {
        let speeds = Speeds::new(vec![1, 2, 4]).unwrap();
        // Loads proportional to speed are perfectly balanced.
        let loads = vec![3.0, 6.0, 12.0];
        assert!(max_min_discrepancy(&loads, &speeds).abs() < 1e-12);
        assert!(max_avg_discrepancy(&loads, &speeds).abs() < 1e-12);
        assert!(potential(&loads, &speeds).abs() < 1e-12);
    }

    #[test]
    fn potential_matches_hand_computation() {
        let speeds = Speeds::uniform(3);
        let loads = vec![4.0, 1.0, 1.0];
        // avg = 2, deviations = (2, -1, -1), potential = 4 + 1 + 1 = 6.
        assert!((potential(&loads, &speeds) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_state_has_zero_metrics() {
        let speeds = Speeds::uniform(5);
        let loads = vec![3.0; 5];
        assert_eq!(max_min_discrepancy(&loads, &speeds), 0.0);
        assert_eq!(max_avg_discrepancy(&loads, &speeds), 0.0);
        assert_eq!(potential(&loads, &speeds), 0.0);
    }

    #[test]
    fn empty_network_is_all_zero() {
        let speeds = Speeds::uniform(0);
        let loads: Vec<f64> = vec![];
        assert_eq!(max_min_discrepancy(&loads, &speeds), 0.0);
        assert_eq!(max_avg_discrepancy(&loads, &speeds), 0.0);
        assert_eq!(max_makespan(&loads, &speeds), 0.0);
        assert_eq!(balanced_makespan(&loads, &speeds), 0.0);
    }

    #[test]
    fn snapshot_bundles_all_metrics() {
        let speeds = Speeds::uniform(2);
        let loads = vec![4.0, 0.0];
        let snap = MetricsSnapshot::compute(7, &loads, &speeds);
        assert_eq!(snap.round, 7);
        assert!((snap.max_min - 4.0).abs() < 1e-12);
        assert!((snap.max_avg - 2.0).abs() < 1e-12);
        assert!((snap.max_makespan - 4.0).abs() < 1e-12);
        assert!((snap.potential - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let speeds = Speeds::uniform(2);
        let _ = makespans(&[1.0, 2.0, 3.0], &speeds);
    }
}
