//! # lb-core
//!
//! Continuous and discrete neighbourhood load-balancing processes,
//! reproducing *"A Simple Approach for Adapting Continuous Load Balancing
//! Processes to Discrete Settings"* (Akbari, Berenbrink, Sauerwald — PODC
//! 2012).
//!
//! ## Layout
//!
//! * [`continuous`] — the continuous processes being discretized: first- and
//!   second-order diffusion, periodic dimension exchange, random matchings.
//! * [`discrete`] — the paper's two flow-imitation transformations
//!   (Algorithm 1: [`discrete::FlowImitation`], Algorithm 2:
//!   [`discrete::RandomizedImitation`]) plus the prior-work baselines they
//!   are compared against, and the dynamic-workload extension
//!   ([`discrete::dynamic`]): per-round task arrivals, completions and
//!   topology churn.
//! * [`metrics`] — makespan, max-min / max-avg discrepancy and the quadratic
//!   potential.
//! * [`convergence`] — measuring the continuous balancing time `T`.
//! * [`shard`] — intra-instance parallelism: a [`ShardedExecutor`] splits a
//!   single simulation's per-round `O(m)` work across contiguous node-range
//!   shards on persistent worker threads, bit-identically to the sequential
//!   engine.
//! * [`ingest`] — async event ingestion: a bounded SPSC channel feeding
//!   round-tagged [`discrete::RoundEvents`] batches from an external producer
//!   thread (trace replay, live traffic) into a
//!   [`discrete::DynamicBalancer`], bit-identically to the synchronous path.
//! * [`snapshot`] — versioned, crash-safe serialization of the full engine
//!   state at a between-rounds boundary, for checkpointing and bit-identical
//!   resume (including at a different shard count).
//! * [`federate`] — federation: the same round partitioned across OS
//!   processes. A [`FederatedExecutor`] owns one part's node range (the same
//!   edge-balanced planner as the shard plan) and exchanges boundary loads,
//!   crossing flows and cross-partition deliveries over a
//!   [`federate::FederateLink`], bit-identically to the sequential engine.
//!
//! ## Quick example
//!
//! ```
//! use lb_core::continuous::Fos;
//! use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
//! use lb_core::{InitialLoad, Speeds};
//! use lb_graph::{generators, AlphaScheme};
//!
//! // A hypercube of 64 processors, all tokens initially on node 0 plus the
//! // d·w_max safety stock everywhere (Theorem 3(2)).
//! let graph = generators::hypercube(6)?;
//! let n = graph.node_count();
//! let speeds = Speeds::uniform(n);
//! let mut counts = vec![6u64; n];
//! counts[0] += (n * 10) as u64;
//! let initial = InitialLoad::from_token_counts(counts);
//!
//! let fos = Fos::new(graph, &speeds, AlphaScheme::MaxDegreePlusOne)?;
//! let mut alg1 = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo)?;
//! alg1.run(400);
//!
//! // Final discrepancy is bounded by 2·d·w_max + 2 = 14, independent of n.
//! assert!(alg1.metrics().max_min <= 14.0);
//! assert_eq!(alg1.dummy_created(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod continuous;
pub mod convergence;
pub mod discrete;
mod error;
pub mod federate;
pub mod ingest;
mod load;
pub mod metrics;
pub mod shard;
pub mod snapshot;
mod task;

pub use error::CoreError;
pub use federate::{FederatedExecutor, FederationPlan, SendBatch};
pub use load::InitialLoad;
pub use metrics::MetricsSnapshot;
pub use shard::ShardedExecutor;
pub use task::{Speeds, Task, TaskId, TaskOrigin, TaskPicker, TaskQueue, Weight};
