//! Error types for the lb-core crate.

use lb_graph::GraphError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running balancing processes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying graph/matrix construction failed.
    Graph(GraphError),
    /// A process or discretizer was configured with invalid parameters.
    InvalidParameter {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A federated exchange failed: a peer was lost mid-round, a payload was
    /// malformed, or the transport broke the all-gather contract.
    Federation {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameter`].
    pub fn invalid_parameter(reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`CoreError::Federation`].
    pub fn federation(reason: impl Into<String>) -> Self {
        CoreError::Federation {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::InvalidParameter { reason } => {
                write!(f, "invalid process parameter: {reason}")
            }
            CoreError::Federation { reason } => {
                write!(f, "federation failure: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::InvalidParameter { .. } | CoreError::Federation { .. } => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(GraphError::EmptyGraph);
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());

        let e = CoreError::invalid_parameter("beta out of range");
        assert!(e.to_string().contains("beta out of range"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
