//! Async event ingestion: a bounded SPSC channel feeding [`RoundEvents`]
//! batches from an external producer thread into a [`DynamicBalancer`].
//!
//! The synchronous scenario path materialises each round's events in the
//! driver loop itself. This module decouples the two halves so a producer —
//! a trace replayer, a live traffic front-end, a scenario generator running
//! ahead — can fill batches on its own thread while the engine consumes them
//! between rounds:
//!
//! ```text
//! producer thread                         engine (consumer) thread
//! ───────────────                         ────────────────────────
//! buffer()  ── recycled RoundEvents ◄──┐
//! fill batch for round r               │
//! send(r, batch)  ──► bounded queue ──►│ IngestSession::apply_round(r)
//! (blocks when full)                   │   · applies the batch between
//!                                      │     rounds, then recycles it
//!                                      └── · engine.step() stays zero-alloc
//! ```
//!
//! # Protocol
//!
//! Batches are tagged with the round they belong to. The producer sends them
//! in **strictly increasing round order** and may skip rounds with no events
//! (empty batches are legal but pointless). The consumer asks for one round
//! at a time, in order; a batch tagged with an earlier round than the one
//! being asked for is a protocol violation and reported as an error. When
//! the producer hangs up, every remaining round simply has no events — a
//! trace shorter than the run is not an error.
//!
//! # Contract with the zero-allocation hot loop
//!
//! The channel recycles batch buffers: the consumer returns drained
//! [`RoundEvents`] to a spare pool the producer draws from via
//! [`EventProducer::buffer`]. Once every buffer in circulation has grown to
//! the working batch size, a steady-state round — receive, apply, recycle,
//! step — performs **no heap allocations on either thread**: the queue and
//! spare pool are pre-sized rings, and blocking uses condvars, not
//! allocation. Only the event application itself may touch the heap (queues
//! growing under net load), exactly as on the synchronous path;
//! `tests/zero_alloc.rs` pins both sides with a counting global allocator.
//!
//! # Determinism
//!
//! The channel changes *where* batches are produced, never *what* they
//! contain or *when* they are applied: [`IngestSession::apply_round`] applies
//! the batch for round `r` before round `r` executes, exactly where the
//! synchronous driver applies it. For the same event stream the sync path
//! and the channel path are therefore bit-identical
//! (`tests/ingest_equivalence.rs`).

use crate::discrete::{DynamicBalancer, EventReport, RoundEvents};
use crate::error::CoreError;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

pub mod merge;

/// The producer half of the channel hung up mid-`send` because the consumer
/// was dropped; the batch was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest channel disconnected: the consumer was dropped")
    }
}

impl std::error::Error for Disconnected {}

/// Backpressure counters of one channel, accumulated since [`bounded`]
/// created it. Counts and the high-water mark are deterministic only in the
/// aggregate sense — they depend on thread scheduling — so drivers report
/// them out of band (stderr, side files), never inside the deterministic
/// result document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelMetrics {
    /// Number of `send` calls that found the queue full and had to block.
    pub blocked_sends: u64,
    /// Total time sends spent blocked on a full queue, in nanoseconds.
    pub blocked_nanos: u64,
    /// Highest in-flight batch count observed (at most the capacity).
    pub high_water: usize,
}

/// Shared channel state behind one mutex: the bounded batch queue, the spare
/// (recycled) buffer pool, the hang-up flags and the backpressure counters.
struct State {
    /// In-flight batches, oldest first, tagged with their round.
    queue: VecDeque<(u64, RoundEvents)>,
    /// Drained buffers waiting to be reused by the producer.
    spare: Vec<RoundEvents>,
    /// The producer was dropped; no further batches will arrive.
    producer_gone: bool,
    /// The consumer was dropped; sends can never be observed.
    consumer_gone: bool,
    /// Backpressure counters (see [`ChannelMetrics`]).
    metrics: ChannelMetrics,
}

struct Shared {
    capacity: usize,
    state: Mutex<State>,
    /// Signalled when the queue shrinks or the consumer hangs up.
    not_full: Condvar,
    /// Signalled when the queue grows or the producer hangs up.
    not_empty: Condvar,
}

/// Creates a bounded single-producer single-consumer channel of round-tagged
/// [`RoundEvents`] batches holding at most `capacity` in-flight batches
/// (clamped to at least 1). See the [module docs](self) for the protocol.
pub fn bounded(capacity: usize) -> (EventProducer, EventConsumer) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        capacity,
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            // One spare per queue slot plus one in each party's hands.
            spare: Vec::with_capacity(capacity + 2),
            producer_gone: false,
            consumer_gone: false,
            metrics: ChannelMetrics::default(),
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        EventProducer {
            shared: Arc::clone(&shared),
            last_round: None,
        },
        EventConsumer { shared },
    )
}

/// The sending half: owned by the producer thread.
///
/// Dropping the producer closes the channel; the consumer then sees the end
/// of the stream once the queue drains.
pub struct EventProducer {
    shared: Arc<Shared>,
    last_round: Option<u64>,
}

impl EventProducer {
    /// Returns a cleared batch buffer, reusing a recycled one when available
    /// so steady-state production allocates nothing.
    pub fn buffer(&mut self) -> RoundEvents {
        let mut events = {
            let mut state = self.shared.state.lock().expect("ingest lock");
            state.spare.pop().unwrap_or_default()
        };
        events.clear();
        events
    }

    /// Sends the batch for `round`, blocking while the queue is full.
    ///
    /// Rounds must be strictly increasing across calls; rounds with no events
    /// may simply be skipped.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] (discarding the batch) if the consumer was
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `round` does not exceed the previously sent round — that is
    /// a producer bug, not a runtime condition.
    pub fn send(&mut self, round: u64, events: RoundEvents) -> Result<(), Disconnected> {
        if let Some(last) = self.last_round {
            assert!(
                round > last,
                "ingest protocol violation: batch for round {round} sent after round {last}"
            );
        }
        let mut state = self.shared.state.lock().expect("ingest lock");
        // Blocked-time accounting starts on the first full-queue observation;
        // `Instant::now` is only touched on that slow path.
        let mut blocked_at: Option<Instant> = None;
        loop {
            if state.consumer_gone {
                if let Some(at) = blocked_at {
                    state.metrics.blocked_nanos += at.elapsed().as_nanos() as u64;
                }
                return Err(Disconnected);
            }
            if state.queue.len() < self.shared.capacity {
                if let Some(at) = blocked_at {
                    state.metrics.blocked_nanos += at.elapsed().as_nanos() as u64;
                }
                state.queue.push_back((round, events));
                state.metrics.high_water = state.metrics.high_water.max(state.queue.len());
                self.last_round = Some(round);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            if blocked_at.is_none() {
                // lint: allow(R01, backpressure telemetry kept out of result documents)
                blocked_at = Some(Instant::now());
                state.metrics.blocked_sends += 1;
            }
            state = self.shared.not_full.wait(state).expect("ingest lock");
        }
    }

    /// Whether the consumer half has been dropped — every further
    /// [`send`](EventProducer::send) would fail with [`Disconnected`].
    /// Lets an external polling producer (e.g. a socket accept loop waiting
    /// for traffic) notice the engine hung up without having a batch ready
    /// to send. The trace-replay driver deliberately does *not* use it:
    /// bailing on disconnect would race the end of the run against a
    /// source's truncation error and could mask the fault.
    pub fn is_disconnected(&self) -> bool {
        self.shared.state.lock().expect("ingest lock").consumer_gone
    }

    /// A snapshot of the channel's backpressure counters.
    pub fn metrics(&self) -> ChannelMetrics {
        self.shared.state.lock().expect("ingest lock").metrics
    }
}

impl Drop for EventProducer {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("ingest lock");
        state.producer_gone = true;
        drop(state);
        self.shared.not_empty.notify_all();
    }
}

/// The receiving half: owned by the engine thread, usually wrapped in an
/// [`IngestSession`].
pub struct EventConsumer {
    shared: Arc<Shared>,
}

impl EventConsumer {
    /// Receives the next batch, blocking while the queue is empty and the
    /// producer is alive. Returns `None` once the producer hung up and the
    /// queue drained — the end of the stream.
    pub fn recv(&mut self) -> Option<(u64, RoundEvents)> {
        let mut state = self.shared.state.lock().expect("ingest lock");
        loop {
            if let Some(batch) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(batch);
            }
            if state.producer_gone {
                return None;
            }
            state = self.shared.not_empty.wait(state).expect("ingest lock");
        }
    }

    /// A snapshot of the channel's backpressure counters.
    pub fn metrics(&self) -> ChannelMetrics {
        self.shared.state.lock().expect("ingest lock").metrics
    }

    /// Returns a drained buffer to the spare pool for the producer to reuse.
    /// Buffers beyond the pool's capacity are simply dropped.
    pub fn recycle(&mut self, mut events: RoundEvents) {
        events.clear();
        let mut state = self.shared.state.lock().expect("ingest lock");
        if state.spare.len() < state.spare.capacity() {
            state.spare.push(events);
        }
    }
}

impl Drop for EventConsumer {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("ingest lock");
        state.consumer_gone = true;
        drop(state);
        self.shared.not_full.notify_all();
    }
}

/// Consumer-side round sequencer: pulls round-tagged batches off an
/// [`EventConsumer`] and hands each one to the engine **between** rounds,
/// holding batches for future rounds until their round comes up.
pub struct IngestSession {
    consumer: EventConsumer,
    /// A received batch whose round has not come up yet.
    pending: Option<(u64, RoundEvents)>,
    /// The stream ended (producer gone, queue drained).
    ended: bool,
    report: EventReport,
    batches: u64,
    events: u64,
}

impl IngestSession {
    /// Wraps the consumer half of a [`bounded`] channel.
    pub fn new(consumer: EventConsumer) -> Self {
        IngestSession {
            consumer,
            pending: None,
            ended: false,
            report: EventReport::default(),
            batches: 0,
            events: 0,
        }
    }

    /// Takes the batch tagged `round` off the channel, if there is one:
    /// `Some` with the batch, `None` when this round has no events (the next
    /// batch is tagged later, or the stream ended).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the next batch is tagged
    /// with an earlier round — the producer violated the ordering protocol.
    fn take_round(&mut self, round: u64) -> Result<Option<RoundEvents>, CoreError> {
        if self.pending.is_none() && !self.ended {
            match self.consumer.recv() {
                Some(batch) => self.pending = Some(batch),
                None => self.ended = true,
            }
        }
        match &self.pending {
            Some((tag, _)) if *tag < round => Err(CoreError::invalid_parameter(format!(
                "ingest protocol violation: batch for round {tag} arrived while \
                 applying round {round}"
            ))),
            Some((tag, _)) if *tag == round => {
                // lint: allow(R03, the match arm proves pending is Some)
                let (_, events) = self.pending.take().expect("pending batch");
                self.batches += 1;
                self.events += (events.arrivals.len() + events.completions.len()) as u64;
                Ok(Some(events))
            }
            _ => Ok(None),
        }
    }

    /// Copies the events for `round` into `out` (cleared first); `out` stays
    /// empty when the round has no batch. Allocation-free once `out` has
    /// grown to the working batch size. Use this when the driver needs to
    /// observe the batch (e.g. to record it to a trace) before applying it;
    /// otherwise [`apply_round`](IngestSession::apply_round) avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an out-of-order batch.
    pub fn fill_round(&mut self, round: u64, out: &mut RoundEvents) -> Result<(), CoreError> {
        out.clear();
        if let Some(events) = self.take_round(round)? {
            out.arrivals.clone_from(&events.arrivals);
            out.completions.clone_from(&events.completions);
            self.consumer.recycle(events);
        }
        Ok(())
    }

    /// Applies the batch for `round` (if any) to `engine` and recycles the
    /// buffer. Call between rounds, before `round` executes — the same point
    /// the synchronous driver applies events, so both paths are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an out-of-order batch or
    /// when the engine rejects an event (unknown node, weighted arrival on
    /// Algorithm 2).
    // lint: zero-alloc
    pub fn apply_round(
        &mut self,
        round: u64,
        engine: &mut dyn DynamicBalancer,
    ) -> Result<EventReport, CoreError> {
        let Some(events) = self.take_round(round)? else {
            return Ok(EventReport::default());
        };
        let result = if events.is_empty() {
            Ok(EventReport::default())
        } else {
            engine.apply_events(&events)
        };
        self.consumer.recycle(events);
        let report = result?;
        self.report.absorb(report);
        Ok(report)
    }

    /// Totals across every batch applied through
    /// [`apply_round`](IngestSession::apply_round).
    pub fn report(&self) -> EventReport {
        self.report
    }

    /// Whether the producer hung up and every sent batch has been consumed.
    pub fn ended(&self) -> bool {
        self.ended && self.pending.is_none()
    }

    /// A snapshot of the underlying channel's backpressure counters.
    pub fn metrics(&self) -> ChannelMetrics {
        self.consumer.metrics()
    }

    /// Batches consumed off the channel so far (via either
    /// [`fill_round`](IngestSession::fill_round) or
    /// [`apply_round`](IngestSession::apply_round)).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Events (arrivals + completions) consumed off the channel so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Fos;
    use crate::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
    use crate::load::InitialLoad;
    use crate::task::{Speeds, Task, TaskId};
    use lb_graph::{generators, AlphaScheme};
    use std::thread;

    fn engine() -> FlowImitation<Fos> {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
    }

    #[test]
    fn batches_cross_the_channel_in_order() {
        let (mut tx, mut rx) = bounded(2);
        let handle = thread::spawn(move || {
            for round in [0u64, 2, 5] {
                let mut batch = tx.buffer();
                batch.arrivals.push((0, Task::new(TaskId(round), 1)));
                tx.send(round, batch).unwrap();
            }
        });
        for expect in [0u64, 2, 5] {
            let (round, events) = rx.recv().expect("batch arrives");
            assert_eq!(round, expect);
            assert_eq!(events.arrivals.len(), 1);
            rx.recycle(events);
        }
        assert!(rx.recv().is_none(), "stream ends after the producer drops");
        handle.join().unwrap();
    }

    #[test]
    fn recycled_buffers_flow_back_to_the_producer() {
        let (mut tx, mut rx) = bounded(1);
        let mut batch = tx.buffer();
        batch.arrivals.push((0, Task::new(TaskId(0), 1)));
        batch.arrivals.push((1, Task::new(TaskId(1), 1)));
        tx.send(0, batch).unwrap();
        let (_, events) = rx.recv().unwrap();
        let ptr = events.arrivals.as_ptr();
        let capacity = events.arrivals.capacity();
        rx.recycle(events);
        let reused = tx.buffer();
        assert!(reused.is_empty(), "recycled buffers come back cleared");
        assert_eq!(reused.arrivals.capacity(), capacity);
        assert_eq!(reused.arrivals.as_ptr(), ptr, "same heap buffer reused");
    }

    #[test]
    fn metrics_track_depth_and_blocking() {
        let (mut tx, mut rx) = bounded(2);
        tx.send(0, RoundEvents::default()).unwrap();
        assert_eq!(tx.metrics().high_water, 1);
        assert_eq!(tx.metrics().blocked_sends, 0);
        tx.send(1, RoundEvents::default()).unwrap();
        assert_eq!(rx.metrics().high_water, 2, "both snapshots see one state");
        // The queue is full: the next send must block until the consumer
        // drains a slot, and the wait is accounted.
        let handle = thread::spawn(move || {
            tx.send(2, RoundEvents::default()).unwrap();
            tx.metrics()
        });
        // Wait until the producer registers as blocked, then free a slot.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while rx.metrics().blocked_sends == 0 {
            assert!(Instant::now() < deadline, "producer never blocked");
            thread::yield_now();
        }
        let (_, events) = rx.recv().unwrap();
        rx.recycle(events);
        let metrics = handle.join().unwrap();
        assert_eq!(metrics.blocked_sends, 1);
        assert!(metrics.blocked_nanos > 0, "blocked time was measured");
        assert_eq!(metrics.high_water, 2);
        assert!(rx.recv().is_some(), "two batches still in flight");
    }

    #[test]
    fn producer_observes_consumer_hangup() {
        let (tx, rx) = bounded(1);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
    }

    #[test]
    fn send_fails_once_the_consumer_hangs_up() {
        let (mut tx, rx) = bounded(1);
        drop(rx);
        let batch = tx.buffer();
        assert_eq!(tx.send(0, batch), Err(Disconnected));
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn non_increasing_rounds_panic_in_the_producer() {
        let (mut tx, _rx) = bounded(4);
        let batch = tx.buffer();
        tx.send(3, batch).unwrap();
        let batch = tx.buffer();
        let _ = tx.send(3, batch);
    }

    #[test]
    fn session_applies_batches_between_rounds() {
        let (mut tx, rx) = bounded(4);
        let handle = thread::spawn(move || {
            // Rounds 1 and 3 carry events; rounds 0 and 2 are skipped.
            for round in [1u64, 3] {
                let mut batch = tx.buffer();
                batch
                    .arrivals
                    .push((3, Task::new(TaskId(1_000 + round), 1)));
                tx.send(round, batch).unwrap();
            }
        });
        let mut session = IngestSession::new(rx);
        let mut alg1 = engine();
        for round in 0..6u64 {
            let report = session.apply_round(round, &mut alg1).unwrap();
            let expect = u64::from(round == 1 || round == 3);
            assert_eq!(report.arrived_tasks, expect, "round {round}");
            alg1.step();
        }
        assert_eq!(session.report().arrived_tasks, 2);
        assert_eq!(session.report().arrived_weight, 2);
        assert!(session.ended(), "stream fully drained");
        assert_eq!(alg1.arrived_weight(), 2);
        handle.join().unwrap();
    }

    #[test]
    fn session_reports_out_of_order_batches() {
        let (mut tx, rx) = bounded(4);
        let batch = tx.buffer();
        tx.send(0, batch).unwrap();
        drop(tx);
        let mut session = IngestSession::new(rx);
        let mut alg1 = engine();
        // Asking for round 2 while the batch for round 0 is pending is a
        // protocol violation on the consumer side.
        let err = session.apply_round(2, &mut alg1).unwrap_err();
        assert!(err.to_string().contains("protocol violation"), "{err}");
    }

    #[test]
    fn fill_round_copies_and_recycles() {
        let (mut tx, rx) = bounded(4);
        let mut batch = tx.buffer();
        batch.arrivals.push((2, Task::new(TaskId(9), 1)));
        batch.completions.push((0, 3));
        tx.send(4, batch).unwrap();
        drop(tx);
        let mut session = IngestSession::new(rx);
        let mut out = RoundEvents::default();
        out.arrivals.push((0, Task::new(TaskId(0), 1))); // stale content
        session.fill_round(3, &mut out).unwrap();
        assert!(out.is_empty(), "round 3 has no batch; out is cleared");
        session.fill_round(4, &mut out).unwrap();
        assert_eq!(out.arrivals.len(), 1);
        assert_eq!(out.completions, vec![(0, 3)]);
        session.fill_round(5, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(session.ended());
    }

    #[test]
    fn bounded_queue_blocks_the_producer() {
        // With capacity 1 the producer cannot run ahead: after the consumer
        // takes the first batch, at most two more fit through before the
        // producer finishes. The join proves the producer unblocks.
        let (mut tx, mut rx) = bounded(1);
        let handle = thread::spawn(move || {
            for round in 0..32u64 {
                let batch = tx.buffer();
                if tx.send(round, batch).is_err() {
                    return round;
                }
            }
            32
        });
        let mut seen = 0;
        while let Some((round, events)) = rx.recv() {
            assert_eq!(round, seen, "rounds arrive in order");
            seen += 1;
            rx.recycle(events);
        }
        assert_eq!(seen, 32);
        assert_eq!(handle.join().unwrap(), 32);
    }
}
