//! Matching-based continuous processes: periodic dimension exchange and the
//! random-matching model.
//!
//! In both models the load exchange of a round is restricted to a matching;
//! the two endpoints of a matching edge equalise their makespans:
//!
//! ```text
//! α[i][j] = s_i·s_j / (s_i + s_j)
//! y[i][j](t) = α[i][j]/s_i · x_i(t) = s_j·x_i(t) / (s_i + s_j)
//! ```
//!
//! so that after the exchange `x_i(t+1) = s_i·(x_i + x_j)/(s_i + s_j)`.

use super::{ContinuousProcess, EdgeFlow};
use crate::error::CoreError;
use crate::task::Speeds;
use lb_graph::{random_maximal_matching, Graph, Matching, PeriodicMatchings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Writes the makespan-equalising flows of `matching` into `out`
/// (zero-allocation kernel shared by both matching models).
fn matching_flows_into(
    graph: &Graph,
    speeds: &[f64],
    matching: &Matching,
    x: &[f64],
    out: &mut [EdgeFlow],
) {
    out.fill(EdgeFlow::default());
    for &e in matching.edges() {
        let (u, v) = graph.edge_endpoints(e);
        let (su, sv) = (speeds[u], speeds[v]);
        out[e] = EdgeFlow::new(sv * x[u] / (su + sv), su * x[v] / (su + sv));
    }
}

/// The periodic-matching dimension-exchange process.
///
/// A fixed family of matchings covering all edges (by default obtained from a
/// greedy edge colouring) is used round-robin: round `t` uses matching
/// `t mod d̃`.
///
/// # Examples
///
/// ```
/// use lb_core::continuous::{ContinuousRunner, DimensionExchange};
/// use lb_core::Speeds;
/// use lb_graph::generators;
///
/// let g = generators::hypercube(3)?;
/// let de = DimensionExchange::with_greedy_coloring(g, &Speeds::uniform(8))?;
/// let mut runner = ContinuousRunner::new(de, vec![8.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
/// runner.run_until_balanced(1.0, 1_000);
/// assert!(runner.is_balanced(1.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DimensionExchange {
    graph: Arc<Graph>,
    speeds: Vec<f64>,
    matchings: PeriodicMatchings,
    name: String,
}

impl DimensionExchange {
    /// Creates a dimension-exchange process using the given periodic
    /// matchings.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the matchings do not form a
    /// proper cover of the graph's edges or the speed vector length is wrong.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
        matchings: PeriodicMatchings,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        if speeds.len() != graph.node_count() {
            return Err(CoreError::invalid_parameter(format!(
                "speeds length {} does not match node count {}",
                speeds.len(),
                graph.node_count()
            )));
        }
        if !matchings.is_proper_cover(&graph) {
            return Err(CoreError::invalid_parameter(
                "periodic matchings must cover every edge exactly once",
            ));
        }
        Ok(DimensionExchange {
            speeds: speeds.to_f64(),
            name: format!("dimension_exchange(period={})", matchings.period()),
            matchings,
            graph,
        })
    }

    /// Creates a dimension-exchange process whose matchings come from a
    /// greedy edge colouring of the graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the speed vector length is
    /// wrong.
    pub fn with_greedy_coloring(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        let matchings = PeriodicMatchings::greedy_edge_coloring(&graph);
        Self::new(graph, speeds, matchings)
    }

    /// The matchings used by the process.
    pub fn matchings(&self) -> &PeriodicMatchings {
        &self.matchings
    }
}

impl ContinuousProcess for DimensionExchange {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    // lint: zero-alloc
    fn compute_flows_into(&mut self, t: usize, x: &[f64], out: &mut [EdgeFlow]) {
        matching_flows_into(
            &self.graph,
            &self.speeds,
            self.matchings.for_round(t),
            x,
            out,
        );
    }
}

/// The random-matching model: each round samples an independent random
/// maximal matching and the matched pairs equalise their makespans.
///
/// The process is seeded explicitly so that runs (and the coupling between a
/// discretization and its continuous twin) are reproducible.
#[derive(Debug, Clone)]
pub struct RandomMatching {
    graph: Arc<Graph>,
    speeds: Vec<f64>,
    rng: StdRng,
    /// Matchings generated so far, by round; `compute_flows(t)` replays the
    /// recorded matching when called for a round that was already generated
    /// (e.g. by a coupled twin) and extends the history otherwise.
    history: Vec<Matching>,
    name: String,
}

impl RandomMatching {
    /// Creates a random-matching process with the given seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the speed vector length is
    /// wrong.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        if speeds.len() != graph.node_count() {
            return Err(CoreError::invalid_parameter(format!(
                "speeds length {} does not match node count {}",
                speeds.len(),
                graph.node_count()
            )));
        }
        Ok(RandomMatching {
            speeds: speeds.to_f64(),
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            name: format!("random_matching(seed={seed})"),
            graph,
        })
    }

    /// The matching used in round `t`, generating it (and any earlier,
    /// not-yet-generated rounds) on demand.
    pub fn matching_for_round(&mut self, t: usize) -> &Matching {
        while self.history.len() <= t {
            let m = random_maximal_matching(&self.graph, &mut self.rng);
            self.history.push(m);
        }
        &self.history[t]
    }
}

impl ContinuousProcess for RandomMatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    // lint: zero-alloc
    fn compute_flows_into(&mut self, t: usize, x: &[f64], out: &mut [EdgeFlow]) {
        // Extend the history first (the only mutable part), then read the
        // round's matching by reference — the per-round clone the seed code
        // paid here is gone.
        self.matching_for_round(t);
        matching_flows_into(&self.graph, &self.speeds, &self.history[t], x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ContinuousRunner;
    use crate::metrics;
    use lb_graph::generators;

    #[test]
    fn dimension_exchange_equalises_matched_pairs() {
        let g = generators::path(2).unwrap();
        let speeds = Speeds::uniform(2);
        let de = DimensionExchange::with_greedy_coloring(g, &speeds).unwrap();
        let mut runner = ContinuousRunner::new(de, vec![10.0, 0.0]);
        runner.step();
        assert!((runner.loads()[0] - 5.0).abs() < 1e-12);
        assert!((runner.loads()[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_exchange_respects_speeds() {
        let g = generators::path(2).unwrap();
        let speeds = Speeds::new(vec![1, 3]).unwrap();
        let de = DimensionExchange::with_greedy_coloring(g, &speeds).unwrap();
        let mut runner = ContinuousRunner::new(de, vec![8.0, 0.0]);
        runner.step();
        // Balanced: x_0 = 2, x_1 = 6 (makespan 2 each).
        assert!((runner.loads()[0] - 2.0).abs() < 1e-12);
        assert!((runner.loads()[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_exchange_converges_on_hypercube() {
        let g = generators::hypercube(4).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let de = DimensionExchange::with_greedy_coloring(g, &speeds).unwrap();
        let mut initial = vec![0.0; n];
        initial[3] = (16 * 10) as f64;
        let mut runner = ContinuousRunner::new(de, initial);
        runner.run_until_balanced(1.0, 10_000);
        assert!(runner.is_balanced(1.0));
        assert!(metrics::max_min_discrepancy(runner.loads(), &speeds) < 2.0);
    }

    #[test]
    fn random_matching_converges_and_is_reproducible() {
        let n = 16;
        let speeds = Speeds::uniform(n);
        let mk = || {
            let g = generators::torus(4, 4).unwrap();
            RandomMatching::new(g, &speeds, 1234).unwrap()
        };
        let mut initial = vec![0.0; n];
        initial[0] = 160.0;

        let mut r1 = ContinuousRunner::new(mk(), initial.clone());
        let mut r2 = ContinuousRunner::new(mk(), initial);
        r1.run(500);
        r2.run(500);
        assert_eq!(r1.loads(), r2.loads(), "same seed must give same run");
        assert!(r1.is_balanced(1.0));
    }

    #[test]
    fn random_matching_history_replay_is_consistent() {
        let g = generators::cycle(8).unwrap();
        let speeds = Speeds::uniform(8);
        let mut rm = RandomMatching::new(g, &speeds, 7).unwrap();
        let first = rm.matching_for_round(3).clone();
        // Asking again (or for earlier rounds) must not change history.
        let replay = rm.matching_for_round(3).clone();
        assert_eq!(first, replay);
        let _earlier = rm.matching_for_round(1);
        assert_eq!(&first, rm.matching_for_round(3));
    }

    #[test]
    fn mismatched_speeds_rejected() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(3);
        assert!(DimensionExchange::with_greedy_coloring(g.clone(), &speeds).is_err());
        assert!(RandomMatching::new(g, &speeds, 0).is_err());
    }

    #[test]
    fn improper_cover_rejected() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        // A single matching that does not cover all edges.
        let partial = PeriodicMatchings::new(vec![Matching::new(vec![0])]);
        assert!(DimensionExchange::new(g, &speeds, partial).is_err());
    }

    #[test]
    fn matching_processes_conserve_load() {
        let g = generators::torus(3, 3).unwrap();
        let speeds = Speeds::uniform(9);
        let de = DimensionExchange::with_greedy_coloring(g.clone(), &speeds).unwrap();
        let rm = RandomMatching::new(g, &speeds, 5).unwrap();
        let initial: Vec<f64> = (0..9).map(|i| (i * 7 % 5) as f64).collect();
        let total: f64 = initial.iter().sum();

        let mut runner_de = ContinuousRunner::new(de, initial.clone());
        runner_de.run(100);
        assert!((runner_de.loads().iter().sum::<f64>() - total).abs() < 1e-9);

        let mut runner_rm = ContinuousRunner::new(rm, initial);
        runner_rm.run(100);
        assert!((runner_rm.loads().iter().sum::<f64>() - total).abs() < 1e-9);
    }
}
