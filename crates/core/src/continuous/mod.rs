//! Continuous (idealised, divisible-load) balancing processes.
//!
//! A continuous process `A` prescribes, for every round `t` and every edge,
//! how much (divisible) load flows in each direction given the current load
//! vector. The discrete transformations of the paper (`Algorithm 1` and
//! `Algorithm 2`, in [`crate::discrete`]) simulate `A` as a *twin* alongside
//! the discrete execution and imitate its cumulative per-edge flow.
//!
//! Implemented processes (all additive and terminating, Lemma 1):
//!
//! * [`Fos`] — first-order diffusion,
//! * [`Sos`] — second-order diffusion,
//! * [`DimensionExchange`] — periodic-matching dimension exchange,
//! * [`RandomMatching`] — random-matching model.
//!
//! # Hot-path contract
//!
//! The per-round kernel is [`ContinuousProcess::compute_flows_into`], which
//! writes into a caller-owned buffer. Implementations must not allocate in
//! steady state (after any lazily initialised internal state has warmed up),
//! so that [`ContinuousRunner::step`] — and with it the whole simulation
//! round of the discretizers — runs without touching the heap. The
//! allocating [`ContinuousProcess::compute_flows`] wrapper is retained for
//! convenience and tests.

mod fos;
mod matching_process;
mod sos;

pub use fos::Fos;
pub use matching_process::{DimensionExchange, RandomMatching};
pub use sos::Sos;

use lb_graph::Graph;
use std::sync::Arc;

/// Gross flows over one undirected edge `(u, v)` (canonical orientation,
/// `u < v`) in a single round.
///
/// `forward` is the load sent from `u` to `v`; `backward` the load sent from
/// `v` to `u`. The net transfer along the canonical orientation is
/// [`EdgeFlow::net`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeFlow {
    /// Load sent from the smaller-indexed endpoint to the larger one.
    pub forward: f64,
    /// Load sent from the larger-indexed endpoint to the smaller one.
    pub backward: f64,
}

impl EdgeFlow {
    /// Creates an edge flow from its two directed components.
    pub fn new(forward: f64, backward: f64) -> Self {
        EdgeFlow { forward, backward }
    }

    /// Net flow along the canonical orientation (`forward − backward`).
    pub fn net(&self) -> f64 {
        self.forward - self.backward
    }
}

/// A continuous neighbourhood load-balancing process.
///
/// Implementations are driven by [`ContinuousRunner`], which owns the load
/// vector, applies the flows produced by [`compute_flows_into`] and keeps the
/// cumulative per-edge flow `f^A_e(t)` that the discretizers imitate.
///
/// # Implementing the buffer-reuse kernel
///
/// [`compute_flows_into`] receives `out` with exactly
/// `self.graph().edge_count()` slots, indexed by canonical
/// [`EdgeId`](lb_graph::EdgeId), and must overwrite **every** slot (stale
/// contents from the previous round are visible otherwise). Implementations
/// must not allocate per call in steady state — keep any history (e.g. SOS's
/// previous flows) in pre-sized buffers owned by the process.
///
/// Topology is shared: processes hold an [`Arc<Graph>`] so twins, balancers
/// and experiment configurations can reference one graph instance without
/// deep copies.
///
/// [`compute_flows_into`]: ContinuousProcess::compute_flows_into
pub trait ContinuousProcess {
    /// Short human-readable name, e.g. `"fos"` or `"sos(beta=1.8)"`.
    fn name(&self) -> &str;

    /// The graph the process operates on.
    fn graph(&self) -> &Graph;

    /// A shared handle to the graph, for components (twins, discretizers)
    /// that need to keep the topology alive without cloning it.
    fn shared_graph(&self) -> Arc<Graph>;

    /// Node speeds as `f64` (length = node count).
    fn speeds(&self) -> &[f64];

    /// Computes the gross flows of round `t` for the load vector `x` (the
    /// load at the *beginning* of round `t`) into `out`.
    ///
    /// `out` has length `self.graph().edge_count()`; every entry must be
    /// overwritten. This is the zero-allocation hot-path kernel.
    fn compute_flows_into(&mut self, t: usize, x: &[f64], out: &mut [EdgeFlow]);

    /// Allocating convenience wrapper around
    /// [`compute_flows_into`](ContinuousProcess::compute_flows_into),
    /// retained for tests and exploratory code.
    fn compute_flows(&mut self, t: usize, x: &[f64]) -> Vec<EdgeFlow> {
        let mut out = vec![EdgeFlow::default(); self.graph().edge_count()];
        self.compute_flows_into(t, x, &mut out);
        out
    }

    /// Whether this process implements the sharded kernel protocol
    /// ([`compute_flows_range`](ContinuousProcess::compute_flows_range) /
    /// [`commit_flows`](ContinuousProcess::commit_flows)). Processes that do
    /// not (the matching-based models) fall back to a sequential twin step
    /// inside a sharded round.
    fn supports_sharding(&self) -> bool {
        false
    }

    /// Sharded kernel: computes the round-`t` flows of the canonical edge
    /// range `edges` into `out` (`out.len() == edges.len()`), **reading**
    /// process state only — shard workers call this concurrently on disjoint
    /// ranges. Must produce values bit-identical to
    /// [`compute_flows_into`](ContinuousProcess::compute_flows_into) over
    /// the same edges. Only called when
    /// [`supports_sharding`](ContinuousProcess::supports_sharding) is true.
    fn compute_flows_range(
        &self,
        _t: usize,
        _x: &[f64],
        _edges: std::ops::Range<usize>,
        _out: &mut [EdgeFlow],
    ) {
        unreachable!("process does not support the sharded kernel protocol")
    }

    /// Commits the complete flow vector of round `t` after a sharded
    /// compute: the mutable half of the sharded kernel protocol (e.g. SOS
    /// stores `flows` as its previous-round history here). Called once per
    /// round, sequentially. The default is a no-op for memoryless kernels.
    fn commit_flows(&mut self, _t: usize, _flows: &[EdgeFlow]) {}

    /// Captures process-internal history for an engine snapshot (SOS's β and
    /// previous-round flows). Memoryless kernels return `None` (the
    /// default).
    fn capture_history(&self) -> Option<crate::snapshot::ProcessHistory> {
        None
    }

    /// Restores history captured by
    /// [`capture_history`](ContinuousProcess::capture_history) into a
    /// freshly built process. The default (for memoryless kernels) rejects
    /// any history as a model mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Mismatch`](crate::snapshot::SnapshotError)
    /// if the history does not belong to this process.
    fn restore_history(
        &mut self,
        _history: &crate::snapshot::ProcessHistory,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        Err(crate::snapshot::SnapshotError::mismatch(format!(
            "snapshot carries twin history but process {:?} keeps none",
            self.name()
        )))
    }
}

/// Drives a [`ContinuousProcess`], maintaining its load vector and the
/// cumulative net per-edge flows `f^A_e(t)`.
///
/// The runner owns a reusable flow buffer: a steady-state [`step`] performs
/// no heap allocations (for processes whose kernel is allocation-free).
///
/// [`step`]: ContinuousRunner::step
///
/// # Examples
///
/// ```
/// use lb_core::continuous::{ContinuousRunner, Fos};
/// use lb_core::Speeds;
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::cycle(4)?;
/// let speeds = Speeds::uniform(4);
/// let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// let mut runner = ContinuousRunner::new(fos, vec![8.0, 0.0, 0.0, 0.0]);
/// runner.run(100);
/// // After enough rounds the load is nearly balanced.
/// for &x in runner.loads() {
///     assert!((x - 2.0).abs() < 0.01);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContinuousRunner<A: ContinuousProcess> {
    process: A,
    loads: Vec<f64>,
    cumulative_flow: Vec<f64>,
    /// Reused per-round flow buffer (the "out" side of the double buffer;
    /// `loads` is updated in place from it).
    flow_buf: Vec<EdgeFlow>,
    round: usize,
    min_load_seen: f64,
}

impl<A: ContinuousProcess> ContinuousRunner<A> {
    /// Creates a runner for `process` starting from the load vector
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` differs from the process's node count.
    pub fn new(process: A, initial: Vec<f64>) -> Self {
        assert_eq!(
            initial.len(),
            process.graph().node_count(),
            "initial load vector length must equal node count"
        );
        let m = process.graph().edge_count();
        let min_load_seen = initial.iter().copied().fold(f64::INFINITY, f64::min);
        ContinuousRunner {
            process,
            loads: initial,
            cumulative_flow: vec![0.0; m],
            flow_buf: vec![EdgeFlow::default(); m],
            round: 0,
            min_load_seen,
        }
    }

    /// Rebinds the runner to a new process and initial load vector, reusing
    /// the runner's existing buffers. Semantically identical to replacing the
    /// runner with `ContinuousRunner::new(process, initial)`, but the
    /// load/flow vectors keep their allocations, so a same-size topology
    /// patch allocates nothing here.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields a different number of loads than the
    /// process's node count.
    pub fn rebind(&mut self, process: A, initial: impl IntoIterator<Item = f64>) {
        self.loads.clear();
        self.loads.extend(initial);
        assert_eq!(
            self.loads.len(),
            process.graph().node_count(),
            "initial load vector length must equal node count"
        );
        let m = process.graph().edge_count();
        self.process = process;
        self.cumulative_flow.clear();
        self.cumulative_flow.resize(m, 0.0);
        self.flow_buf.clear();
        self.flow_buf.resize(m, EdgeFlow::default());
        self.round = 0;
        self.min_load_seen = self.loads.iter().copied().fold(f64::INFINITY, f64::min);
    }

    /// The underlying process.
    pub fn process(&self) -> &A {
        &self.process
    }

    /// The current round index (number of completed rounds).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The current load vector `x^A(t)`.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Cumulative net flow `f^A_e(t)` along each canonical edge orientation,
    /// at the end of the last completed round.
    pub fn cumulative_flows(&self) -> &[f64] {
        &self.cumulative_flow
    }

    /// The smallest node load observed at any round boundary so far;
    /// negative values indicate the process induced negative load
    /// (Definition 1 violated), which only SOS can do.
    pub fn min_load_seen(&self) -> f64 {
        self.min_load_seen
    }

    /// Returns `true` if no node load has dipped below `-tolerance` so far.
    pub fn no_negative_load(&self, tolerance: f64) -> bool {
        self.min_load_seen >= -tolerance
    }

    /// Executes one round: computes the flows for the current round into the
    /// runner's reusable buffer, applies them to the load vector, and
    /// accumulates the per-edge totals. Returns the flows of the executed
    /// round (valid until the next `step`).
    ///
    /// This is the zero-allocation hot path: no heap allocation happens here
    /// for processes with an allocation-free kernel.
    // lint: zero-alloc
    pub fn step(&mut self) -> &[EdgeFlow] {
        self.process
            .compute_flows_into(self.round, &self.loads, &mut self.flow_buf);
        let graph = self.process.graph();
        debug_assert_eq!(self.flow_buf.len(), graph.edge_count());
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let net = self.flow_buf[e].net();
            self.loads[u] -= net;
            self.loads[v] += net;
            self.cumulative_flow[e] += net;
        }
        let mut round_min = f64::INFINITY;
        for &x in &self.loads {
            round_min = round_min.min(x);
        }
        self.round += 1;
        self.min_load_seen = self.min_load_seen.min(round_min);
        &self.flow_buf
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Sharded [`step`](ContinuousRunner::step): the flow computation and
    /// the load/ledger application each run in parallel across the
    /// executor's shards, **bit-identically** to the sequential step — every
    /// load entry receives the same floating-point operations in the same
    /// (CSR incident-edge, i.e. canonical edge) order, just from its own
    /// shard's worker.
    ///
    /// Falls back to the sequential step when the process does not implement
    /// the sharded kernel protocol or the executor has a single shard.
    /// Steady-state calls on an unchanged topology do not allocate.
    // lint: zero-alloc
    pub fn step_sharded(&mut self, exec: &mut crate::shard::ShardedExecutor) -> &[EdgeFlow]
    where
        A: Sync,
    {
        exec.ensure_plan(&self.process.shared_graph());
        if !self.process.supports_sharding() || exec.shard_count() == 1 {
            return self.step();
        }
        let t = self.round;
        // Phase A (parallel): kernel over disjoint canonical edge ranges.
        {
            let process = &self.process;
            let loads = &self.loads[..];
            let flow = crate::shard::SharedSliceMut::new(&mut self.flow_buf);
            let (pool, plan, _) = exec.split();
            pool.run(|s| {
                let range = plan.edge_range(s);
                if range.is_empty() {
                    return;
                }
                // SAFETY: edge ranges are disjoint across shards.
                let out = unsafe { flow.range_mut(range.clone()) };
                process.compute_flows_range(t, loads, range, out);
            });
        }
        self.process.commit_flows(t, &self.flow_buf);
        // Phase B (parallel): apply flows to own loads (CSR incident order ==
        // canonical edge order, so the f64 op sequence per load entry matches
        // the sequential step exactly) and accumulate own edge ledgers.
        {
            let graph = self.process.graph();
            let flows = &self.flow_buf[..];
            let loads = crate::shard::SharedSliceMut::new(&mut self.loads);
            let cumulative = crate::shard::SharedSliceMut::new(&mut self.cumulative_flow);
            let (pool, plan, scratch) = exec.split();
            pool.run(|s| {
                // SAFETY: scratch cell, node range and edge range all belong
                // to shard `s` alone.
                let scratch = unsafe { &mut *scratch[s].get() };
                let nodes = plan.node_range(s);
                let loads_s = unsafe { loads.range_mut(nodes.clone()) };
                for (k, i) in nodes.clone().enumerate() {
                    for (neighbor, e) in graph.neighbors_with_edges(i) {
                        let net = flows[e].net();
                        if i < neighbor {
                            loads_s[k] -= net;
                        } else {
                            loads_s[k] += net;
                        }
                    }
                }
                let edges = plan.edge_range(s);
                let cumulative_s = unsafe { cumulative.range_mut(edges.clone()) };
                for (k, e) in edges.enumerate() {
                    cumulative_s[k] += flows[e].net();
                }
                let mut min = f64::INFINITY;
                for &x in loads_s.iter() {
                    min = min.min(x);
                }
                scratch.min_load = min;
            });
        }
        self.round += 1;
        let mut round_min = f64::INFINITY;
        for scratch in exec.shard_results() {
            round_min = round_min.min(scratch.min_load);
        }
        self.min_load_seen = self.min_load_seen.min(round_min);
        &self.flow_buf
    }

    /// Federated [`step`](ContinuousRunner::step): this runner advances one
    /// **part** of the round and exchanges boundary state over `link` —
    /// boundary loads before the kernel, crossing-edge flows after it. Owned
    /// node loads, owned + incident edge ledgers and the owned-range minimum
    /// watermark receive exactly the floating-point operations of the
    /// sequential step, in the same order; foreign entries are stale and
    /// never read.
    ///
    /// The kernel (Phase A) fans out over the executor's intra-part shards;
    /// any chunking of the owned edge range is bit-identical because per-edge
    /// flow computation is independent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the process does not
    /// implement the sharded kernel protocol (federation needs
    /// [`compute_flows_range`](ContinuousProcess::compute_flows_range) as its
    /// isolation seam), and propagates link failures as
    /// [`CoreError::Federation`](crate::CoreError).
    pub fn step_federated(
        &mut self,
        fed: &mut crate::federate::FederatedExecutor,
        link: &mut dyn crate::federate::FederateLink,
    ) -> Result<(), crate::CoreError>
    where
        A: Sync,
    {
        use crate::CoreError;
        if !self.process.supports_sharding() {
            return Err(CoreError::invalid_parameter(format!(
                "process {:?} does not support the range kernel federation relies on",
                self.process.name()
            )));
        }
        fed.ensure_plan(&self.process.shared_graph())?;
        let t = self.round;

        // Boundary-loads exchange: publish own boundary entries, refresh the
        // remote ones the kernel will read on crossing edges.
        fed.loads_out.clear();
        for &node in fed.plan.boundary() {
            fed.loads_out.push((node, self.loads[node].to_bits()));
        }
        let incoming = link.exchange_loads(&fed.loads_out)?;
        crate::federate::apply_load_entries(&mut self.loads, &incoming)?;

        // Phase A: kernel over the owned canonical edge range, chunked
        // across the intra-part shards.
        if fed.shard_count() == 1 {
            let range = fed.plan.edge_range();
            self.process.compute_flows_range(
                t,
                &self.loads,
                range.clone(),
                &mut self.flow_buf[range],
            );
        } else {
            let process = &self.process;
            let loads = &self.loads[..];
            let flow = crate::shard::SharedSliceMut::new(&mut self.flow_buf);
            let fed_ref = &*fed;
            fed_ref.pool.run(|c| {
                let range = fed_ref.kernel_chunk(c);
                if range.is_empty() {
                    return;
                }
                // SAFETY: kernel chunks are disjoint across shards.
                let out = unsafe { flow.range_mut(range.clone()) };
                process.compute_flows_range(t, loads, range, out);
            });
        }

        // Crossing-flows exchange: publish own crossing edges, receive the
        // flows remote owners computed for edges incident to this part.
        fed.flows_out.clear();
        for &e in fed.plan.crossing() {
            let f = self.flow_buf[e];
            fed.flows_out
                .push((e, f.forward.to_bits(), f.backward.to_bits()));
        }
        let incoming = link.exchange_flows(&fed.flows_out)?;
        for (e, forward, backward) in incoming {
            let slot = self.flow_buf.get_mut(e).ok_or_else(|| {
                CoreError::federation(format!("exchanged flow names unknown edge {e}"))
            })?;
            *slot = EdgeFlow::new(f64::from_bits(forward), f64::from_bits(backward));
        }
        self.process.commit_flows(t, &self.flow_buf);

        // Phase B: apply flows to owned loads (CSR incident order == canonical
        // edge order) and accumulate incident edge ledgers. Both endpoints of
        // a crossing edge accumulate identical ledger bits.
        let graph = self.process.graph();
        for i in fed.plan.node_range() {
            for (neighbor, e) in graph.neighbors_with_edges(i) {
                let net = self.flow_buf[e].net();
                if i < neighbor {
                    self.loads[i] -= net;
                } else {
                    self.loads[i] += net;
                }
            }
        }
        for &e in fed.plan.incident() {
            self.cumulative_flow[e] += self.flow_buf[e].net();
        }
        self.round += 1;
        let mut round_min = f64::INFINITY;
        for &x in &self.loads[fed.plan.node_range()] {
            round_min = round_min.min(x);
        }
        self.min_load_seen = self.min_load_seen.min(round_min);
        Ok(())
    }

    /// Captures the runner's state for an engine snapshot: loads, cumulative
    /// flows, the round counter, the minimum-load watermark and the
    /// process's internal history. Snapshot-time only (allocates).
    pub fn capture(&self) -> crate::snapshot::TwinState {
        crate::snapshot::TwinState {
            round: self.round as u64,
            loads: self.loads.clone(),
            cumulative_flow: self.cumulative_flow.clone(),
            min_load_seen: self.min_load_seen,
            history: self.process.capture_history(),
        }
    }

    /// Restores state captured by [`capture`](ContinuousRunner::capture)
    /// into a runner freshly built on the same topology. The flow buffer is
    /// scratch (fully overwritten each round) and is left as constructed.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Mismatch`](crate::snapshot::SnapshotError)
    /// if the vector lengths do not fit the graph or the history does not
    /// belong to this process.
    pub fn restore(
        &mut self,
        state: &crate::snapshot::TwinState,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = self.process.graph().node_count();
        let m = self.process.graph().edge_count();
        if state.loads.len() != n {
            return Err(SnapshotError::mismatch(format!(
                "twin load vector has {} entries, graph has {n} nodes",
                state.loads.len()
            )));
        }
        if state.cumulative_flow.len() != m {
            return Err(SnapshotError::mismatch(format!(
                "twin flow ledger has {} entries, graph has {m} edges",
                state.cumulative_flow.len()
            )));
        }
        match &state.history {
            Some(history) => self.process.restore_history(history)?,
            None => {
                if self.process.capture_history().is_some() {
                    return Err(SnapshotError::mismatch(format!(
                        "snapshot has no twin history but process {:?} keeps history",
                        self.process.name()
                    )));
                }
            }
        }
        self.loads.copy_from_slice(&state.loads);
        self.cumulative_flow.copy_from_slice(&state.cumulative_flow);
        self.round = state.round as usize;
        self.min_load_seen = state.min_load_seen;
        Ok(())
    }

    /// Adds `delta` load units to node `i` between rounds (negative values
    /// remove load).
    ///
    /// This is the twin-side half of a dynamic-workload event: when a task
    /// arrives at (or completes on) a node of the discrete process, the twin
    /// receives the same load change so both processes keep balancing the
    /// same workload. Cumulative flows are untouched — the imitation ledger
    /// stays valid because the processes are additive (Definition 3), so the
    /// flows of "old load + injected load" are the sums of the flows each
    /// part would generate on its own.
    ///
    /// Removing more load than the node currently holds may drive the twin's
    /// entry negative; diffusion processes are well defined on arbitrary
    /// reals, and [`min_load_seen`](ContinuousRunner::min_load_seen) records
    /// the dip.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn adjust_load(&mut self, i: usize, delta: f64) {
        self.loads[i] += delta;
        self.min_load_seen = self.min_load_seen.min(self.loads[i]);
    }

    /// Runs until every node load is within `tolerance` of its balanced
    /// value `W·s_i/S` (the paper's balancing-time condition with
    /// `tolerance = 1`), or until `max_rounds` have elapsed. Returns the
    /// number of rounds executed by this call.
    pub fn run_until_balanced(&mut self, tolerance: f64, max_rounds: usize) -> usize {
        let executed_start = self.round;
        for _ in 0..max_rounds {
            if self.is_balanced(tolerance) {
                break;
            }
            self.step();
        }
        self.round - executed_start
    }

    /// Returns `true` if every node load is within `tolerance` of its
    /// balanced value.
    pub fn is_balanced(&self, tolerance: f64) -> bool {
        let speeds = self.process.speeds();
        let total_speed: f64 = speeds.iter().sum();
        let total_load: f64 = self.loads.iter().sum();
        self.loads
            .iter()
            .zip(speeds)
            .all(|(&x, &s)| (x - total_load * s / total_speed).abs() <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Speeds;
    use lb_graph::{generators, AlphaScheme};

    #[test]
    fn runner_conserves_load_and_tracks_flow() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut runner = ContinuousRunner::new(fos, vec![4.0, 0.0, 0.0, 0.0]);
        let total: f64 = runner.loads().iter().sum();
        runner.run(25);
        assert!((runner.loads().iter().sum::<f64>() - total).abs() < 1e-9);
        assert_eq!(runner.round(), 25);
        // Node 0 must have exported load, so the flows on its two incident
        // edges are non-zero.
        let g = runner.process().graph();
        let e01 = g.edge_between(0, 1).unwrap();
        assert!(runner.cumulative_flows()[e01].abs() > 0.0);
        assert!(runner.no_negative_load(1e-9));
    }

    #[test]
    fn run_until_balanced_stops_early_on_balanced_input() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut runner = ContinuousRunner::new(fos, vec![3.0; 4]);
        let executed = runner.run_until_balanced(1.0, 100);
        assert_eq!(executed, 0);
        assert!(runner.is_balanced(1e-12));
    }

    #[test]
    fn edge_flow_net() {
        let f = EdgeFlow::new(2.5, 1.0);
        assert!((f.net() - 1.5).abs() < 1e-12);
        assert_eq!(EdgeFlow::default().net(), 0.0);
    }

    #[test]
    fn compute_flows_shim_matches_kernel() {
        let g = generators::torus(3, 3).unwrap();
        let speeds = Speeds::uniform(9);
        let x: Vec<f64> = (0..9).map(|i| (i * 5 % 7) as f64).collect();
        let mut a = Fos::new(g.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut b = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let via_shim = a.compute_flows(0, &x);
        let mut via_kernel = vec![EdgeFlow::new(9.9, 9.9); via_shim.len()];
        b.compute_flows_into(0, &x, &mut via_kernel);
        assert_eq!(via_shim, via_kernel, "kernel must overwrite every slot");
    }

    #[test]
    fn shared_graph_is_one_allocation() {
        let g = generators::cycle(5).unwrap();
        let speeds = Speeds::uniform(5);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let a = fos.shared_graph();
        let b = fos.shared_graph();
        assert!(Arc::ptr_eq(&a, &b), "both handles must share one graph");
        assert!(std::ptr::eq(fos.graph(), a.as_ref()));
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_initial_vector_panics() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let _ = ContinuousRunner::new(fos, vec![1.0; 3]);
    }
}
