//! Second-order diffusion (SOS), Muthukrishnan–Ghosh–Schultz style, with
//! speeds.

use super::fos::KERNEL_LANES;
use super::{ContinuousProcess, EdgeFlow};
use crate::error::CoreError;
use crate::task::Speeds;
use lb_graph::{AlphaScheme, DiffusionMatrix, Graph, GraphDelta, PowerIterationOptions};
use std::sync::Arc;

/// The second-order diffusion process:
///
/// ```text
/// y[i][j](0) = α[i][j]/s_i · x_i(0)
/// y[i][j](t) = (β − 1)·y[i][j](t−1) + β·α[i][j]/s_i · x_i(t)     (t ≥ 1)
/// ```
///
/// For well-chosen `β` (the optimum is `2/(1 + √(1 − λ²))`) SOS converges in
/// `O(log(Kn)/√(1 − λ))` rounds, a quadratic improvement over FOS on
/// poorly-expanding graphs. Unlike FOS, SOS **may induce negative load**
/// (Definition 1), in which case only the max-avg part of Theorems 3/8
/// applies to its discretizations; [`ContinuousRunner::min_load_seen`]
/// reports whether that happened.
///
/// [`ContinuousRunner::min_load_seen`]: super::ContinuousRunner::min_load_seen
#[derive(Debug, Clone)]
pub struct Sos {
    graph: Arc<Graph>,
    matrix: DiffusionMatrix,
    speeds: Vec<f64>,
    beta: f64,
    /// Flows of the previous round, pre-sized to the edge count; only valid
    /// once `has_previous` is set. Kept flat (not `Option<Vec>`) so the
    /// kernel never allocates.
    previous: Vec<EdgeFlow>,
    has_previous: bool,
    name: String,
}

impl Sos {
    /// Creates an SOS process with an explicit relaxation parameter
    /// `beta ∈ (0, 2]`. The graph may be owned or shared via `Arc`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `beta` is outside `(0, 2]`
    /// and [`CoreError::Graph`] if the diffusion matrix cannot be built.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
        scheme: AlphaScheme,
        beta: f64,
    ) -> Result<Self, CoreError> {
        if !(beta > 0.0 && beta <= 2.0) {
            return Err(CoreError::invalid_parameter(format!(
                "beta must be in (0, 2], got {beta}"
            )));
        }
        let graph = graph.into();
        let speeds_f64 = speeds.to_f64();
        let matrix = DiffusionMatrix::new(&graph, &speeds_f64, scheme)?;
        let m = graph.edge_count();
        Ok(Sos {
            graph,
            matrix,
            speeds: speeds_f64,
            beta,
            previous: vec![EdgeFlow::default(); m],
            has_previous: false,
            name: format!("sos(beta={beta:.3})"),
        })
    }

    /// Creates an SOS process with the optimal relaxation parameter
    /// `β = 2/(1 + √(1 − λ²))`, where `λ` is estimated with power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the diffusion matrix cannot be built.
    pub fn with_optimal_beta(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
        scheme: AlphaScheme,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        let speeds_f64 = speeds.to_f64();
        let matrix = DiffusionMatrix::new(&graph, &speeds_f64, scheme)?;
        let lambda = lb_graph::spectral::second_eigenvalue(
            &graph,
            &matrix,
            PowerIterationOptions::default(),
        );
        let beta = 2.0 / (1.0 + (1.0 - lambda * lambda).max(0.0).sqrt());
        let m = graph.edge_count();
        Ok(Sos {
            graph,
            matrix,
            speeds: speeds_f64,
            beta,
            previous: vec![EdgeFlow::default(); m],
            has_previous: false,
            name: format!("sos(beta={beta:.3})"),
        })
    }

    /// The relaxation parameter `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Rebuilds the process for a patched topology: `new_graph` must be this
    /// process's graph with `delta` applied. The diffusion matrix is patched
    /// incrementally (bit-identical to a fresh build); for a **non-empty**
    /// delta the spectrum may change, so `β` is re-estimated exactly as
    /// [`Sos::with_optimal_beta`] would (power iteration is seed-free and
    /// deterministic, so the result bit-matches a full rebuild). For an
    /// empty delta the matrix is unchanged and the spectral re-estimate is
    /// skipped entirely — the dominant cost of a same-family rewire.
    ///
    /// The relaxation history resets, mirroring the full-rebuild churn path:
    /// a topology epoch boundary invalidates `y(t−1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the delta does not describe the
    /// old-to-new edge difference.
    pub fn patched(&self, new_graph: Arc<Graph>, delta: &GraphDelta) -> Result<Self, CoreError> {
        let matrix = self.matrix.patched(&self.graph, &new_graph, delta)?;
        let beta = if delta.is_empty() {
            self.beta
        } else {
            let lambda = lb_graph::spectral::second_eigenvalue(
                &new_graph,
                &matrix,
                PowerIterationOptions::default(),
            );
            2.0 / (1.0 + (1.0 - lambda * lambda).max(0.0).sqrt())
        };
        let m = new_graph.edge_count();
        Ok(Sos {
            graph: new_graph,
            matrix,
            speeds: self.speeds.clone(),
            beta,
            previous: vec![EdgeFlow::default(); m],
            has_previous: false,
            name: format!("sos(beta={beta:.3})"),
        })
    }
}

impl ContinuousProcess for Sos {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    // lint: zero-alloc
    fn compute_flows_into(&mut self, t: usize, x: &[f64], out: &mut [EdgeFlow]) {
        self.compute_flows_range(t, x, 0..self.graph.edge_count(), out);
        self.commit_flows(t, out);
    }

    fn supports_sharding(&self) -> bool {
        true
    }

    /// Stride-friendly kernel, same struct-of-arrays shape as the FOS one.
    /// The `has_previous` branch is hoisted out of the per-edge loop: the
    /// first round runs the FOS-shaped variant, every later round runs the
    /// relaxation variant with the history gathered alongside the loads.
    /// Per-edge float-op order matches the scalar loop
    /// (`(β−1)·y_prev + β·(α·x_u/s_u)`), so flows are bit-identical.
    // lint: zero-alloc
    fn compute_flows_range(
        &self,
        _t: usize,
        x: &[f64],
        edges: std::ops::Range<usize>,
        out: &mut [EdgeFlow],
    ) {
        const LANES: usize = KERNEL_LANES;
        let pairs = &self.graph.edges()[edges.clone()];
        let alphas = &self.matrix.alphas()[edges.clone()];
        let beta = self.beta;
        let carry = self.beta - 1.0;
        let mut xu = [0.0f64; LANES];
        let mut su = [0.0f64; LANES];
        let mut xv = [0.0f64; LANES];
        let mut sv = [0.0f64; LANES];
        let mut fu = [0.0f64; LANES];
        let mut fv = [0.0f64; LANES];
        let mut k = 0usize;
        if self.has_previous {
            let prev = &self.previous[edges];
            let mut pf = [0.0f64; LANES];
            let mut pb = [0.0f64; LANES];
            for (pair_chunk, (alpha_chunk, prev_chunk)) in pairs
                .chunks_exact(LANES)
                .zip(alphas.chunks_exact(LANES).zip(prev.chunks_exact(LANES)))
            {
                for (i, &(u, v)) in pair_chunk.iter().enumerate() {
                    xu[i] = x[u];
                    su[i] = self.speeds[u];
                    xv[i] = x[v];
                    sv[i] = self.speeds[v];
                    pf[i] = prev_chunk[i].forward;
                    pb[i] = prev_chunk[i].backward;
                }
                for i in 0..LANES {
                    fu[i] = carry * pf[i] + beta * (alpha_chunk[i] * xu[i] / su[i]);
                    fv[i] = carry * pb[i] + beta * (alpha_chunk[i] * xv[i] / sv[i]);
                }
                for (slot, i) in out[k..k + LANES].iter_mut().zip(0..LANES) {
                    *slot = EdgeFlow::new(fu[i], fv[i]);
                }
                k += LANES;
            }
            for (i, &(u, v)) in pairs[k..].iter().enumerate() {
                let alpha = alphas[k + i];
                let fos_forward = alpha * x[u] / self.speeds[u];
                let fos_backward = alpha * x[v] / self.speeds[v];
                out[k + i] = EdgeFlow::new(
                    carry * prev[k + i].forward + beta * fos_forward,
                    carry * prev[k + i].backward + beta * fos_backward,
                );
            }
        } else {
            for (pair_chunk, alpha_chunk) in
                pairs.chunks_exact(LANES).zip(alphas.chunks_exact(LANES))
            {
                for (i, &(u, v)) in pair_chunk.iter().enumerate() {
                    xu[i] = x[u];
                    su[i] = self.speeds[u];
                    xv[i] = x[v];
                    sv[i] = self.speeds[v];
                }
                for i in 0..LANES {
                    fu[i] = alpha_chunk[i] * xu[i] / su[i];
                    fv[i] = alpha_chunk[i] * xv[i] / sv[i];
                }
                for (slot, i) in out[k..k + LANES].iter_mut().zip(0..LANES) {
                    *slot = EdgeFlow::new(fu[i], fv[i]);
                }
                k += LANES;
            }
            for (i, &(u, v)) in pairs[k..].iter().enumerate() {
                let alpha = alphas[k + i];
                out[k + i] =
                    EdgeFlow::new(alpha * x[u] / self.speeds[u], alpha * x[v] / self.speeds[v]);
            }
        }
    }

    /// SOS is the stateful kernel: the committed flows become the
    /// `y(t−1)` history the next round's relaxation reads.
    fn commit_flows(&mut self, _t: usize, flows: &[EdgeFlow]) {
        self.previous.copy_from_slice(flows);
        self.has_previous = true;
    }

    fn capture_history(&self) -> Option<crate::snapshot::ProcessHistory> {
        Some(crate::snapshot::ProcessHistory {
            beta: self.beta,
            previous: self.previous.clone(),
            has_previous: self.has_previous,
        })
    }

    /// Restores the relaxation history into a freshly rebuilt process. β is
    /// validated **bit-exactly**: resume rebuilds SOS deterministically from
    /// the scenario (power iteration is seed-free), so any difference means
    /// the snapshot belongs to another topology epoch or build — a stale
    /// snapshot, rejected rather than silently diverging.
    fn restore_history(
        &mut self,
        history: &crate::snapshot::ProcessHistory,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if history.beta.to_bits() != self.beta.to_bits() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot β = {} does not bit-match the rebuilt process β = {} \
                 (stale snapshot?)",
                history.beta, self.beta
            )));
        }
        if history.previous.len() != self.previous.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot SOS history has {} edges, graph has {}",
                history.previous.len(),
                self.previous.len()
            )));
        }
        self.previous.copy_from_slice(&history.previous);
        self.has_previous = history.has_previous;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{ContinuousRunner, Fos};
    use lb_graph::generators;

    #[test]
    fn beta_one_reduces_to_fos() {
        let g = generators::cycle(6).unwrap();
        let speeds = Speeds::uniform(6);
        let initial: Vec<f64> = (0..6).map(|i| (i * i % 5) as f64 * 3.0).collect();
        let sos = Sos::new(g.clone(), &speeds, AlphaScheme::MaxDegreePlusOne, 1.0).unwrap();
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut r_sos = ContinuousRunner::new(sos, initial.clone());
        let mut r_fos = ContinuousRunner::new(fos, initial);
        for _ in 0..30 {
            r_sos.step();
            r_fos.step();
            for (a, b) in r_sos.loads().iter().zip(r_fos.loads()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn invalid_beta_rejected() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        assert!(Sos::new(g.clone(), &speeds, AlphaScheme::MaxDegreePlusOne, 0.0).is_err());
        assert!(Sos::new(g.clone(), &speeds, AlphaScheme::MaxDegreePlusOne, 2.5).is_err());
        assert!(Sos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne, f64::NAN).is_err());
    }

    #[test]
    fn optimal_beta_is_in_range_and_converges_faster_than_fos_on_cycle() {
        let n = 24;
        let g = generators::cycle(n).unwrap();
        let speeds = Speeds::uniform(n);
        let sos =
            Sos::with_optimal_beta(g.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        assert!(sos.beta() > 1.0 && sos.beta() <= 2.0);

        let mut initial = vec![0.0; n];
        initial[0] = 240.0;

        let mut r_sos = ContinuousRunner::new(sos, initial.clone());
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut r_fos = ContinuousRunner::new(fos, initial);

        let sos_rounds = r_sos.run_until_balanced(1.0, 100_000);
        let fos_rounds = r_fos.run_until_balanced(1.0, 100_000);
        assert!(r_sos.is_balanced(1.0));
        assert!(r_fos.is_balanced(1.0));
        assert!(
            sos_rounds < fos_rounds,
            "SOS ({sos_rounds}) should beat FOS ({fos_rounds}) on the cycle"
        );
    }

    #[test]
    fn sos_conserves_total_load() {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let sos = Sos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne, 1.7).unwrap();
        let initial: Vec<f64> = (0..16).map(|i| (i % 4) as f64 * 5.0).collect();
        let total: f64 = initial.iter().sum();
        let mut runner = ContinuousRunner::new(sos, initial);
        runner.run(200);
        assert!((runner.loads().iter().sum::<f64>() - total).abs() < 1e-6);
    }

    #[test]
    fn sos_name_mentions_beta() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let sos = Sos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne, 1.5).unwrap();
        assert!(sos.name().contains("1.5"));
    }
}
