//! First-order diffusion (FOS), Cybenko/Boillat style, with speeds.

use super::{ContinuousProcess, EdgeFlow};
use crate::error::CoreError;
use crate::task::Speeds;
use lb_graph::{AlphaScheme, DiffusionMatrix, Graph, GraphDelta};
use std::sync::Arc;

/// Lane width of the struct-of-arrays flow kernels. Wide enough to fill
/// 256/512-bit vector units after unrolling, small enough to keep the gather
/// buffers on the stack.
pub(crate) const KERNEL_LANES: usize = 8;

/// The first-order diffusion process:
///
/// ```text
/// y[i][j](t) = α[i][j] / s_i · x_i(t)
/// x_i(t+1)   = x_i(t) − Σ_j α[i][j] · (x_i(t)/s_i − x_j(t)/s_j)
/// ```
///
/// FOS is additive and terminating (Lemma 1 of the paper) and never induces
/// negative load, so both parts of Theorem 3 / Theorem 8 apply to its
/// discretizations.
///
/// # Examples
///
/// ```
/// use lb_core::continuous::{ContinuousProcess, Fos};
/// use lb_core::Speeds;
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::hypercube(3)?;
/// let fos = Fos::new(g, &Speeds::uniform(8), AlphaScheme::MaxDegreePlusOne)?;
/// assert_eq!(fos.name(), "fos");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fos {
    graph: Arc<Graph>,
    matrix: DiffusionMatrix,
    speeds: Vec<f64>,
    name: String,
}

impl Fos {
    /// Creates a FOS process on `graph` (owned or shared via `Arc`) with the
    /// given `speeds` and `α` scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the diffusion matrix cannot be built
    /// (mismatched speed vector, non-positive speeds).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        speeds: &Speeds,
        scheme: AlphaScheme,
    ) -> Result<Self, CoreError> {
        let graph = graph.into();
        let speeds_f64 = speeds.to_f64();
        let matrix = DiffusionMatrix::new(&graph, &speeds_f64, scheme)?;
        Ok(Fos {
            graph,
            matrix,
            speeds: speeds_f64,
            name: "fos".to_string(),
        })
    }

    /// The diffusion matrix driving the process.
    pub fn matrix(&self) -> &DiffusionMatrix {
        &self.matrix
    }

    /// Rebuilds the process for a patched topology: `new_graph` must be this
    /// process's graph with `delta` applied (see [`Graph::apply_delta`]).
    /// Speeds and scheme carry over; the diffusion matrix is patched
    /// incrementally in `O(m)` copies plus `O(Δ · d_max)` recomputation and
    /// is bit-identical to a fresh [`Fos::new`] on `new_graph`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Graph`] if the delta does not describe the
    /// old-to-new edge difference.
    pub fn patched(&self, new_graph: Arc<Graph>, delta: &GraphDelta) -> Result<Self, CoreError> {
        let matrix = self.matrix.patched(&self.graph, &new_graph, delta)?;
        Ok(Fos {
            graph: new_graph,
            matrix,
            speeds: self.speeds.clone(),
            name: self.name.clone(),
        })
    }
}

impl ContinuousProcess for Fos {
    fn name(&self) -> &str {
        &self.name
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    // lint: zero-alloc
    fn compute_flows_into(&mut self, t: usize, x: &[f64], out: &mut [EdgeFlow]) {
        self.compute_flows_range(t, x, 0..self.graph.edge_count(), out);
    }

    fn supports_sharding(&self) -> bool {
        true
    }

    /// Stride-friendly kernel: gathers endpoint loads/speeds into fixed-width
    /// struct-of-arrays lanes, runs a branch-free arithmetic loop over
    /// contiguous `f64` arrays (auto-vectorisable), and scatters into `out`.
    /// The per-edge float-op order is exactly the scalar loop's
    /// `α · x_u / s_u`, so flows are bit-identical to the previous kernel.
    // lint: zero-alloc
    fn compute_flows_range(
        &self,
        _t: usize,
        x: &[f64],
        edges: std::ops::Range<usize>,
        out: &mut [EdgeFlow],
    ) {
        const LANES: usize = KERNEL_LANES;
        let pairs = &self.graph.edges()[edges.clone()];
        let alphas = &self.matrix.alphas()[edges];
        let mut xu = [0.0f64; LANES];
        let mut su = [0.0f64; LANES];
        let mut xv = [0.0f64; LANES];
        let mut sv = [0.0f64; LANES];
        let mut fu = [0.0f64; LANES];
        let mut fv = [0.0f64; LANES];
        let mut k = 0usize;
        for (pair_chunk, alpha_chunk) in pairs.chunks_exact(LANES).zip(alphas.chunks_exact(LANES))
        {
            for (i, &(u, v)) in pair_chunk.iter().enumerate() {
                xu[i] = x[u];
                su[i] = self.speeds[u];
                xv[i] = x[v];
                sv[i] = self.speeds[v];
            }
            for i in 0..LANES {
                fu[i] = alpha_chunk[i] * xu[i] / su[i];
                fv[i] = alpha_chunk[i] * xv[i] / sv[i];
            }
            for (slot, i) in out[k..k + LANES].iter_mut().zip(0..LANES) {
                *slot = EdgeFlow::new(fu[i], fv[i]);
            }
            k += LANES;
        }
        for (i, &(u, v)) in pairs[k..].iter().enumerate() {
            let alpha = alphas[k + i];
            out[k + i] =
                EdgeFlow::new(alpha * x[u] / self.speeds[u], alpha * x[v] / self.speeds[v]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::ContinuousRunner;
    use crate::metrics;
    use lb_graph::generators;

    #[test]
    fn fos_flows_match_matrix_entries() {
        let g = generators::path(3).unwrap();
        let speeds = Speeds::uniform(3);
        let mut fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let x = vec![6.0, 0.0, 0.0];
        let flows = fos.compute_flows(0, &x);
        // Edge (0,1): alpha = 1/(2+1) = 1/3, so forward = 2.0, backward = 0.
        let e01 = fos.graph().edge_between(0, 1).unwrap();
        assert!((flows[e01].forward - 2.0).abs() < 1e-12);
        assert_eq!(flows[e01].backward, 0.0);
    }

    #[test]
    fn fos_converges_on_hypercube() {
        let g = generators::hypercube(4).unwrap();
        let speeds = Speeds::uniform(16);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut initial = vec![0.0; 16];
        initial[0] = 160.0;
        let mut runner = ContinuousRunner::new(fos, initial);
        runner.run_until_balanced(1.0, 10_000);
        assert!(runner.is_balanced(1.0));
        assert!(runner.no_negative_load(1e-9));
    }

    #[test]
    fn fos_converges_to_speed_proportional_allocation() {
        let g = generators::complete(3).unwrap();
        let speeds = Speeds::new(vec![1, 2, 3]).unwrap();
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut runner = ContinuousRunner::new(fos, vec![12.0, 0.0, 0.0]);
        runner.run(2000);
        let loads = runner.loads();
        assert!((loads[0] - 2.0).abs() < 1e-6);
        assert!((loads[1] - 4.0).abs() < 1e-6);
        assert!((loads[2] - 6.0).abs() < 1e-6);
        assert!(metrics::max_min_discrepancy(loads, &speeds) < 1e-6);
    }

    #[test]
    fn fos_is_terminating_on_balanced_input() {
        // Terminating (Definition 2): started from a speed-proportional
        // vector, the net flow over every edge is zero in every round.
        let g = generators::cycle(5).unwrap();
        let speeds = Speeds::new(vec![2, 1, 3, 1, 1]).unwrap();
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let balanced: Vec<f64> = speeds.to_f64().iter().map(|s| 5.0 * s).collect();
        let mut runner = ContinuousRunner::new(fos, balanced.clone());
        for _ in 0..20 {
            let flows = runner.step();
            for f in flows {
                assert!(f.net().abs() < 1e-12);
            }
        }
        for (a, b) in runner.loads().iter().zip(&balanced) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fos_is_additive() {
        // Additive (Definition 3): flows of x' + x'' equal the sum of flows.
        let g = generators::torus(3, 3).unwrap();
        let speeds = Speeds::uniform(9);
        let x1: Vec<f64> = (0..9).map(|i| (i * 3 % 7) as f64).collect();
        let x2: Vec<f64> = (0..9).map(|i| (i * 5 % 11) as f64).collect();
        let sum: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();

        let mk = |x: Vec<f64>| {
            let fos = Fos::new(
                generators::torus(3, 3).unwrap(),
                &speeds,
                AlphaScheme::MaxDegreePlusOne,
            )
            .unwrap();
            ContinuousRunner::new(fos, x)
        };
        let mut r1 = mk(x1);
        let mut r2 = mk(x2);
        let mut r_sum = mk(sum);
        for _ in 0..30 {
            let f1 = r1.step();
            let f2 = r2.step();
            let fs = r_sum.step();
            for e in 0..g.edge_count() {
                assert!((fs[e].forward - f1[e].forward - f2[e].forward).abs() < 1e-9);
                assert!((fs[e].backward - f1[e].backward - f2[e].backward).abs() < 1e-9);
            }
        }
    }
}
