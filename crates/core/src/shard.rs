//! Intra-instance parallelism: one simulation round, many cores.
//!
//! `parallel_map`-style fan-out (in `lb-bench`) only parallelises
//! *independent* trials; a single large instance (n ≥ 10⁶) was still bound
//! by a serial `O(m)` round. This module shards **one** instance: the node
//! range `0..n` is split into `S` contiguous shards, the canonical edge list
//! splits with it (edges are sorted by lower endpoint, so each shard owns a
//! contiguous edge range), and every round runs as a two-phase protocol:
//!
//! 1. **Compute (parallel)** — each shard worker processes the edges it is
//!    responsible for, mutating only *its own* node state (queues, token
//!    counts, load entries) and appending cross-shard effects (task
//!    deliveries, dummy transfers, flow-ledger deltas) to per-shard
//!    *outboxes*;
//! 2. **Apply (sequential)** — the outboxes are drained in a deterministic
//!    order (task deliveries in global edge order, everything else is
//!    additive), reproducing the exact state the sequential engine builds.
//!
//! # Determinism contract
//!
//! Sharded execution is **bit-identical** to sequential execution, for every
//! shard count: all floating-point operations touch the same accumulators in
//! the same order (per-node load updates follow the CSR incident-edge order,
//! which equals canonical edge order), task queues pop in the same per-node
//! sequence and receive deliveries in global edge order, and Algorithm 2
//! derives an independent sub-RNG per `(seed, round, edge)` instead of
//! consuming one stream edge-by-edge (see
//! [`edge_rounding_rng`](crate::discrete::edge_rounding_rng)).
//! `tests/sharded_equivalence.rs` and the shard-count invariance property in
//! `tests/properties.rs` pin this.
//!
//! # Zero-allocation contract
//!
//! [`ShardedExecutor`] owns `S − 1` persistent worker threads (spawning per
//! round would allocate) and pre-sizes every per-shard outbox when the shard
//! plan is (re)built — at construction and after topology churn. Steady-state
//! sharded rounds perform no heap allocation; `tests/zero_alloc.rs` enforces
//! this with shards > 1.

use lb_graph::{EdgeId, Graph, NodeId};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::task::Task;

/// Contiguous node-range sharding of one graph: which nodes, canonical
/// edges and incident edges each shard is responsible for.
///
/// Shard boundaries are chosen so canonical edge counts balance (the edge
/// loops dominate a round); shards may be empty when `n < S`.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// Node range starts, length `S + 1`.
    node_bounds: Vec<usize>,
    /// Canonical edge range starts (edges grouped by lower endpoint),
    /// length `S + 1`.
    edge_bounds: Vec<usize>,
    /// Per shard: every edge with at least one endpoint in the shard's node
    /// range, ascending by edge id.
    incident: Vec<Vec<EdgeId>>,
}

impl ShardPlan {
    /// An empty placeholder plan (no graph bound yet).
    fn empty(shards: usize) -> Self {
        ShardPlan {
            node_bounds: vec![0; shards + 1],
            edge_bounds: vec![0; shards + 1],
            incident: vec![Vec::new(); shards],
        }
    }

    /// Builds the plan for `graph` with exactly `shards` shards.
    fn build(shards: usize, graph: &Graph) -> Self {
        let n = graph.node_count();
        let edges = graph.edges();
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "canonical order");

        let (node_bounds, edge_bounds) = edge_balanced_bounds(shards, graph);

        let mut shard_of = vec![0u32; n];
        for s in 0..shards {
            for slot in &mut shard_of[node_bounds[s]..node_bounds[s + 1]] {
                *slot = s as u32;
            }
        }
        let mut incident = vec![Vec::new(); shards];
        for (e, &(u, v)) in edges.iter().enumerate() {
            let su = shard_of[u] as usize;
            let sv = shard_of[v] as usize;
            incident[su].push(e);
            if sv != su {
                incident[sv].push(e);
            }
        }

        ShardPlan {
            node_bounds,
            edge_bounds,
            incident,
        }
    }

    /// Number of shards (some possibly empty).
    #[cfg(test)]
    fn shard_count(&self) -> usize {
        self.incident.len()
    }

    /// The node range owned by shard `s`.
    pub(crate) fn node_range(&self, s: usize) -> Range<usize> {
        self.node_bounds[s]..self.node_bounds[s + 1]
    }

    /// The canonical edge range owned by shard `s`.
    pub(crate) fn edge_range(&self, s: usize) -> Range<usize> {
        self.edge_bounds[s]..self.edge_bounds[s + 1]
    }

    /// Edges incident to shard `s`, ascending by edge id.
    pub(crate) fn incident(&self, s: usize) -> &[EdgeId] {
        &self.incident[s]
    }
}

/// The edge-balanced contiguous node partition shared by [`ShardPlan`] and
/// the federation planner: node-range starts (length `parts + 1`) chosen so
/// canonical edge counts balance across parts, plus the matching canonical
/// edge-range starts (edges grouped by lower endpoint).
pub(crate) fn edge_balanced_bounds(parts: usize, graph: &Graph) -> (Vec<usize>, Vec<usize>) {
    let n = graph.node_count();
    let m = graph.edge_count();
    let edges = graph.edges();

    let mut node_bounds = Vec::with_capacity(parts + 1);
    node_bounds.push(0);
    for s in 1..parts {
        // Aim for m·s/P canonical edges per prefix, then snap the cut to
        // a node boundary so each node's canonical edges stay together.
        let target = m * s / parts;
        let node = if target >= m { n } else { edges[target].0 };
        node_bounds.push(node.max(node_bounds[s - 1]));
    }
    node_bounds.push(n);

    let mut edge_bounds = Vec::with_capacity(parts + 1);
    for &node in &node_bounds {
        edge_bounds.push(edges.partition_point(|&(u, _)| u < node));
    }
    (node_bounds, edge_bounds)
}

/// A raw shared-mutable view of a slice, for handing **disjoint** ranges to
/// shard workers.
///
/// Every access goes through [`range_mut`](SharedSliceMut::range_mut), whose
/// safety contract is that concurrently handed-out ranges never overlap; the
/// shard plan's node/edge ranges partition their index spaces, which is what
/// every caller in this crate relies on.
pub(crate) struct SharedSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only ever yields disjoint subslices (the caller
// contract of `range_mut`), so sending/sharing it across the pool's scoped
// workers is no more dangerous than `slice::split_at_mut`.
unsafe impl<T: Send> Send for SharedSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// A mutable view of `range`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no two live views (across all threads)
    /// overlap. `range` must lie within the original slice.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

/// An `UnsafeCell` that may be shared across the pool's workers; each worker
/// only touches the cell matching its shard index.
pub(crate) struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: access discipline is per-shard-index (enforced by every call
// site); no two threads touch the same cell during a parallel phase.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(value: T) -> Self {
        SyncCell(UnsafeCell::new(value))
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// The wide pointer to the current phase closure, lifetime-erased so it can
/// sit in the pool's shared state. Valid only while `ShardPool::run` has not
/// returned — workers finish (and bump `done`) before `run` returns, so no
/// worker ever dereferences a stale job.
#[derive(Clone, Copy)]
struct JobHandle(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` and outlives every dereference (see above).
unsafe impl Send for JobHandle {}

struct PoolState {
    epoch: u64,
    shutdown: bool,
    job: Option<JobHandle>,
    /// Workers finished with the current epoch.
    done: usize,
    /// A worker's phase closure panicked during the current epoch.
    panicked: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// `S − 1` persistent worker threads executing one closure per phase.
///
/// Workers park on a condvar between phases; dispatch is a mutex'd epoch
/// bump plus `notify_all`, and the caller blocks on a completion condvar —
/// none of which allocates, keeping sharded steady-state rounds heap-free
/// (per-round `thread::scope` spawning would not be). Blocking (rather than
/// spinning) on completion keeps the overhead small even when shards
/// outnumber cores.
pub(crate) struct ShardPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` threads, serving shard indices `1..=workers` (the
    /// caller itself runs shard 0).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                shutdown: false,
                job: None,
                done: 0,
                panicked: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        let job = {
                            let mut state = shared.state.lock().expect("pool mutex poisoned");
                            loop {
                                if state.shutdown {
                                    return;
                                }
                                if state.epoch != seen {
                                    break;
                                }
                                state = shared.work.wait(state).expect("pool mutex poisoned");
                            }
                            seen = state.epoch;
                            // lint: allow(R03, run() stores the job before bumping the epoch)
                            state.job.expect("job published with epoch")
                        };
                        // SAFETY: `run` keeps the closure alive until every
                        // worker has reported done for this epoch. A panic in
                        // the phase closure is caught so the worker always
                        // reports done — otherwise `run` would block forever —
                        // and is re-raised on the calling thread.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                (unsafe { &*job.0 })(shard)
                            }));
                        let mut state = shared.state.lock().expect("pool mutex poisoned");
                        state.done += 1;
                        state.panicked |= outcome.is_err();
                        if state.done == workers {
                            shared.done.notify_one();
                        }
                    }
                })
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Runs `f(s)` for every shard index `0..=workers`, shard 0 on the
    /// calling thread, and returns once all have finished.
    pub(crate) fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the lifetime is erased only for the duration of this call;
        // the done-condvar wait below (reached even when shard 0 panics)
        // ensures every worker is finished with the pointer before `f` drops.
        let job = JobHandle(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        });
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.epoch += 1;
            state.job = Some(job);
        }
        self.shared.work.notify_all();
        // Shard 0 runs on this thread. Its panic must not unwind before the
        // workers are done — they still hold the lifetime-erased pointer to
        // `f` — so catch it, drain the epoch, and only then re-raise.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let mut state = self.shared.state.lock().expect("pool mutex poisoned");
        while state.done < self.handles.len() {
            state = self.shared.done.wait(state).expect("pool mutex poisoned");
        }
        state.done = 0;
        let worker_panicked = std::mem::take(&mut state.panicked);
        drop(state);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            // lint: allow(R03, propagates a worker thread's caught panic)
            panic!("a shard worker panicked during a parallel phase");
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One entry of Algorithm 2's per-shard outbox: everything a processed edge
/// contributes to cross-shard state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Alg2Send {
    pub(crate) edge: EdgeId,
    pub(crate) receiver: NodeId,
    pub(crate) real: u64,
    pub(crate) dummy: u64,
    /// Signed delta for the discrete-flow ledger of `edge`.
    pub(crate) delta: i64,
}

/// Per-shard scratch: the outboxes a compute phase fills and the apply phase
/// drains, plus per-shard counter partials. All buffers are pre-sized when
/// the plan is built, so steady-state rounds never allocate (the task outbox
/// warms up like the sequential engine's delivery buffer does).
pub(crate) struct ShardScratch {
    /// Algorithm 1: real-task deliveries `(edge, receiver, task)`, ascending
    /// by edge id (the incident list is sorted).
    pub(crate) task_out: Vec<(EdgeId, NodeId, Task)>,
    /// Algorithm 1: dummy deliveries `(receiver, amount)`, one per edge.
    pub(crate) dummy_out: Vec<(NodeId, u64)>,
    /// Algorithm 1: discrete-flow ledger deltas `(edge, delta)`.
    pub(crate) flow_out: Vec<(EdgeId, i64)>,
    /// Algorithm 2: per-edge send records.
    pub(crate) alg2_out: Vec<Alg2Send>,
    /// Items (tasks + dummy units) this shard moved this round.
    pub(crate) items_sent: u64,
    /// Dummy units this shard drew from the infinite source this round.
    pub(crate) dummy_created: u64,
    /// Minimum load over this shard's nodes after the twin's apply phase.
    pub(crate) min_load: f64,
}

impl ShardScratch {
    fn new() -> Self {
        ShardScratch {
            task_out: Vec::new(),
            dummy_out: Vec::new(),
            flow_out: Vec::new(),
            alg2_out: Vec::new(),
            items_sent: 0,
            dummy_created: 0,
            min_load: f64::INFINITY,
        }
    }
}

/// Drives sharded rounds for one engine: the persistent worker pool, the
/// current shard plan and the per-shard scratch.
///
/// An executor is engine-agnostic — it binds to whatever graph the engine
/// currently runs on (checked by `Arc` identity each round), so topology
/// churn just triggers a plan rebuild on the next sharded step. Pass the
/// same executor to every `step_sharded` call of one engine:
///
/// ```
/// use lb_core::continuous::Fos;
/// use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
/// use lb_core::{InitialLoad, ShardedExecutor, Speeds};
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::hypercube(4)?;
/// let speeds = Speeds::uniform(16);
/// let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// let initial = InitialLoad::single_source(16, 0, 160);
/// let mut sharded = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo)?;
/// let mut sequential = sharded.clone();
/// let mut exec = ShardedExecutor::new(4);
/// for _ in 0..50 {
///     sharded.step_sharded(&mut exec);
///     sequential.step();
/// }
/// // Sharded execution is bit-identical to sequential execution.
/// assert_eq!(sharded.loads(), sequential.loads());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardedExecutor {
    pool: ShardPool,
    plan: ShardPlan,
    scratch: Vec<SyncCell<ShardScratch>>,
    /// Reusable cursors for the k-way merge of task outboxes.
    merge_cursor: Vec<usize>,
    /// The graph the current plan was built for.
    graph: Option<Arc<Graph>>,
}

impl ShardedExecutor {
    /// Creates an executor with `shards` shards (clamped to at least 1),
    /// spawning `shards − 1` persistent worker threads.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedExecutor {
            pool: ShardPool::new(shards - 1),
            plan: ShardPlan::empty(shards),
            scratch: (0..shards)
                .map(|_| SyncCell::new(ShardScratch::new()))
                .collect(),
            merge_cursor: vec![0; shards],
            graph: None,
        }
    }

    /// The shard count this executor runs with.
    pub fn shard_count(&self) -> usize {
        self.scratch.len()
    }

    /// Binds the executor to `graph` ahead of time, building the shard plan
    /// and pre-sizing the per-shard outboxes. Calling this is optional —
    /// every sharded step rebinds lazily — but lets benchmarks and warm-up
    /// paths keep plan construction out of the measured region.
    pub fn bind(&mut self, graph: &Arc<Graph>) {
        self.ensure_plan(graph);
    }

    /// Rebinds the plan to `graph` if it changed (initial call, topology
    /// churn), pre-sizing the bounded per-shard outboxes. Allocation only
    /// happens here — never in a steady-state round on an unchanged graph.
    pub(crate) fn ensure_plan(&mut self, graph: &Arc<Graph>) {
        if self.graph.as_ref().is_some_and(|g| Arc::ptr_eq(g, graph)) {
            return;
        }
        self.plan = ShardPlan::build(self.shard_count(), graph);
        for s in 0..self.shard_count() {
            let bound = self.plan.incident(s).len();
            // SAFETY: `&mut self` — no parallel phase is running.
            let scratch = unsafe { &mut *self.scratch[s].get() };
            scratch.task_out.clear();
            scratch.dummy_out = Vec::with_capacity(bound);
            scratch.flow_out = Vec::with_capacity(bound);
            scratch.alg2_out = Vec::with_capacity(bound);
        }
        self.graph = Some(Arc::clone(graph));
    }

    /// The pool, plan and scratch cells, split for a parallel phase.
    pub(crate) fn split(&self) -> (&ShardPool, &ShardPlan, &[SyncCell<ShardScratch>]) {
        (&self.pool, &self.plan, &self.scratch)
    }

    /// Per-shard scratch for sequential (apply-phase) inspection.
    pub(crate) fn shard_results(&mut self) -> impl Iterator<Item = &ShardScratch> {
        // SAFETY: `&mut self` — no parallel phase is running.
        self.scratch.iter().map(|cell| unsafe { &*cell.get() })
    }

    /// Drains every shard's task outbox in **global edge order** (a k-way
    /// merge over the per-shard edge-sorted outboxes), calling
    /// `deliver(receiver, task)` exactly as the sequential engine would have
    /// pushed its pending deliveries.
    pub(crate) fn drain_merged_tasks(&mut self, mut deliver: impl FnMut(NodeId, Task)) {
        let shards = self.scratch.len();
        self.merge_cursor[..shards].fill(0);
        loop {
            let mut best: Option<(EdgeId, usize)> = None;
            for s in 0..shards {
                // SAFETY: `&mut self` — no parallel phase is running.
                let scratch = unsafe { &*self.scratch[s].get() };
                if let Some(&(edge, _, _)) = scratch.task_out.get(self.merge_cursor[s]) {
                    if best.is_none_or(|(e, _)| edge < e) {
                        best = Some((edge, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            // SAFETY: as above; the cursor keeps reads within bounds.
            let scratch = unsafe { &*self.scratch[s].get() };
            let (_, receiver, task) = scratch.task_out[self.merge_cursor[s]];
            self.merge_cursor[s] += 1;
            deliver(receiver, task);
        }
    }
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.shard_count())
            .field("bound", &self.graph.as_ref().map(|g| g.name().to_string()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn plan_partitions_nodes_and_edges() {
        let g = generators::torus(6, 6).unwrap();
        for shards in [1, 2, 3, 7, 64] {
            let plan = ShardPlan::build(shards, &g);
            assert_eq!(plan.shard_count(), shards);
            // Node ranges partition 0..n; edge ranges partition 0..m.
            let mut node = 0;
            let mut edge = 0;
            for s in 0..shards {
                assert_eq!(plan.node_range(s).start, node);
                node = plan.node_range(s).end;
                assert_eq!(plan.edge_range(s).start, edge);
                edge = plan.edge_range(s).end;
                // An owned edge's lower endpoint lies in the node range.
                for e in plan.edge_range(s) {
                    let (u, _) = g.edges()[e];
                    assert!(plan.node_range(s).contains(&u));
                }
                // Incident lists are sorted and cover the node range.
                let incident = plan.incident(s);
                assert!(incident.windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(node, g.node_count());
            assert_eq!(edge, g.edge_count());
            // Every edge is incident to exactly the shards of its endpoints.
            let total: usize = (0..shards).map(|s| plan.incident(s).len()).sum();
            assert!(total >= g.edge_count());
            assert!(total <= 2 * g.edge_count());
        }
    }

    #[test]
    fn pool_runs_every_shard_exactly_once() {
        let pool = ShardPool::new(3);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..100 {
            pool.run(|s| {
                hits[s].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn pool_survives_panicking_phases() {
        // A panic on a worker shard must not deadlock `run`, and a panic on
        // the caller's shard must not free the job closure under running
        // workers; both re-raise on the caller and leave the pool usable.
        let pool = ShardPool::new(2);
        for &bad_shard in &[1usize, 0] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|s| {
                    if s == bad_shard {
                        panic!("phase failure on shard {s}");
                    }
                });
            }));
            assert!(result.is_err(), "panic on shard {bad_shard} propagates");
        }
        // The pool still dispatches cleanly after both failure modes.
        let hits: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        pool.run(|s| {
            hits[s].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn executor_rebinds_on_graph_change() {
        let g1: Arc<Graph> = Arc::new(generators::hypercube(3).unwrap());
        let g2: Arc<Graph> = Arc::new(generators::torus(4, 4).unwrap());
        let mut exec = ShardedExecutor::new(2);
        exec.ensure_plan(&g1);
        assert_eq!(exec.plan.node_range(1).end, 8);
        exec.ensure_plan(&g2);
        assert_eq!(exec.plan.node_range(1).end, 16);
        // Same Arc: no rebuild needed (checked by identity).
        exec.ensure_plan(&g2);
        assert_eq!(exec.shard_count(), 2);
    }
}
