//! Multi-producer merge stage: N independently round-tagged event feeds,
//! k-way merged into one strictly round-ordered stream on the consumer side.
//!
//! Each feed is the consumer half of its own bounded SPSC channel
//! ([`super::bounded`]), so producers never contend with each other — the
//! merge happens where the batches are consumed:
//!
//! ```text
//! producer 0 ──► channel 0 ──┐
//! producer 1 ──► channel 1 ──┤  MergeSession::apply_round(r)
//!      ⋮             ⋮       ├──► coalesce every feed's batch for round r
//! producer N ──► channel N ──┘    (feed index order), apply, recycle
//! ```
//!
//! # Merge contract
//!
//! * **Per-feed monotonicity** — every feed sends batches in strictly
//!   increasing round order (enforced by [`super::EventProducer::send`]; the
//!   session re-checks on receipt so a protocol violation surfaces as a
//!   typed error, never as corrupted state).
//! * **Additive coalescing** — when several feeds carry a batch for the same
//!   round, the merged batch is their concatenation in **feed index order**
//!   (completions then arrivals within each feed's batch, as always).
//!   Event application is additive, so a partition of one stream across
//!   feeds merges back to the original trajectory; a partition into
//!   contiguous per-round slices merges back to the *identical batch*.
//! * **Hang-up degradation** — a feed whose producer hangs up simply stops
//!   contributing; the merge continues over the remaining feeds. All feeds
//!   closed means every remaining round is event-free (same as the
//!   single-channel contract).
//! * **Ordering errors** — a batch tagged earlier than the round being
//!   applied is a protocol error ([`crate::CoreError::InvalidParameter`]):
//!   the session reports it and leaves the engine untouched.
//!
//! # Zero-allocation steady state
//!
//! The session owns one scratch batch; coalescing copies feed batches into
//! it and recycles them to their own channel's spare pool. Once the scratch
//! and every circulating buffer have grown to the working batch size, a
//! steady-state round — receive from each feed, coalesce, apply, recycle,
//! step — allocates nothing on any thread (`tests/zero_alloc.rs` pins the
//! two-feed case with a counting global allocator).

use crate::discrete::{DynamicBalancer, EventReport, RoundEvents};
use crate::error::CoreError;
use std::sync::{Arc, Mutex};

use super::{ChannelMetrics, EventConsumer};

/// What one feed contributed to a merged run — batch/event totals plus the
/// backpressure counters of its channel. Timing-dependent (see
/// [`ChannelMetrics`]); report out of band, never in deterministic results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedReport {
    /// Batches coalesced from this feed.
    pub batches: u64,
    /// Events (arrivals + completions) coalesced from this feed.
    pub events: u64,
    /// Whether the feed's producer had hung up (and its queue drained) when
    /// the snapshot was taken.
    pub drained: bool,
    /// The feed channel's backpressure counters.
    pub channel: ChannelMetrics,
}

/// One feed's consumer-side state inside a [`MergeSession`].
struct Feed {
    consumer: EventConsumer,
    /// A received batch whose round has not come up yet.
    pending: Option<(u64, RoundEvents)>,
    /// The producer hung up and the queue drained.
    ended: bool,
    /// The round of the last batch coalesced from this feed (receipt-side
    /// monotonicity check).
    last_round: Option<u64>,
    batches: u64,
    events: u64,
}

impl Feed {
    fn new(consumer: EventConsumer) -> Self {
        Feed {
            consumer,
            pending: None,
            ended: false,
            last_round: None,
            batches: 0,
            events: 0,
        }
    }

    /// Makes `pending` hold the feed's next batch, blocking on the channel
    /// if necessary; a hang-up marks the feed ended instead.
    fn refill(&mut self) {
        if self.pending.is_none() && !self.ended {
            match self.consumer.recv() {
                Some(batch) => self.pending = Some(batch),
                None => self.ended = true,
            }
        }
    }
}

/// A clone-able, `Send` handle that registers new feeds on a live
/// [`MergeSession`] (created by [`MergeSession::with_registrar`]).
///
/// Registered consumers are queued and admitted into the merge at the start
/// of the session's next [`fill_round`](MergeSession::fill_round) /
/// [`apply_round`](MergeSession::apply_round) call, in registration order —
/// a feed admitted while round `r` is being applied contributes from round
/// `r` on, and its first batch must be tagged `>= r` (earlier tags are the
/// usual ordering protocol violation).
///
/// Same-round batches coalesce in feed *admission* order, so byte-identity
/// across nondeterministic registration orders (e.g. a socket accept loop)
/// requires that no two dynamically registered feeds carry the same round —
/// a whole-round partition of one stream satisfies this; an element-wise
/// split does not.
#[derive(Clone)]
pub struct FeedRegistrar {
    queue: Arc<Mutex<Vec<EventConsumer>>>,
}

impl FeedRegistrar {
    /// Queues `consumer` for admission into the session. If the session has
    /// already been dropped the consumer is simply discarded when the last
    /// registrar goes away, and the feed's producer observes the hang-up
    /// through [`super::EventProducer::send`].
    pub fn register(&self, consumer: EventConsumer) {
        self.queue
            .lock()
            .expect("merge registry lock")
            .push(consumer);
    }

    /// Number of registered feeds not yet admitted into the session.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("merge registry lock").len()
    }
}

/// Consumer-side k-way merge over N event feeds: pulls each feed's
/// round-tagged batches and hands the engine one coalesced, strictly
/// round-ordered batch per round — the multi-producer counterpart of
/// [`super::IngestSession`].
pub struct MergeSession {
    feeds: Vec<Feed>,
    /// Feeds registered through a [`FeedRegistrar`], awaiting admission.
    registry: Option<Arc<Mutex<Vec<EventConsumer>>>>,
    /// Owned coalescing scratch, reused across rounds.
    scratch: RoundEvents,
    report: EventReport,
}

impl MergeSession {
    /// Wraps the consumer halves of N [`super::bounded`] channels; feed
    /// index order is the coalescing order.
    pub fn new(consumers: Vec<EventConsumer>) -> Self {
        MergeSession {
            feeds: consumers.into_iter().map(Feed::new).collect(),
            registry: None,
            scratch: RoundEvents::default(),
            report: EventReport::default(),
        }
    }

    /// Creates a session with **no** initial feeds plus a [`FeedRegistrar`]
    /// through which feeds are registered while the session is live — the
    /// substrate for socket front-ends whose producers connect (and
    /// reconnect) after the engine has started.
    ///
    /// Until the first feed is admitted the session reports
    /// [`ended`](MergeSession::ended) only while no registration is pending,
    /// so drivers that gate on feed presence should admit at least one feed
    /// before running rounds.
    pub fn with_registrar() -> (Self, FeedRegistrar) {
        let queue = Arc::new(Mutex::new(Vec::new()));
        let registrar = FeedRegistrar {
            queue: Arc::clone(&queue),
        };
        let mut session = MergeSession::new(Vec::new());
        session.registry = Some(queue);
        (session, registrar)
    }

    /// Admits feeds registered through the [`FeedRegistrar`] (if any) into
    /// the merge, in registration order.
    fn admit_registered(&mut self) {
        if let Some(registry) = &self.registry {
            let mut queue = registry.lock().expect("merge registry lock");
            self.feeds.extend(queue.drain(..).map(Feed::new));
        }
    }

    /// Number of feeds (open or ended), including any registered feeds not
    /// yet admitted by a `fill_round`/`apply_round` call.
    pub fn feed_count(&self) -> usize {
        let pending = self.registry.as_ref().map_or(0, |registry| {
            registry.lock().expect("merge registry lock").len()
        });
        self.feeds.len() + pending
    }

    /// Coalesces every feed's batch for `round` into `out` (cleared first),
    /// in feed index order; `out` stays empty when no feed carries the
    /// round. Blocks only on feeds whose next batch is unknown.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when a feed delivers a batch
    /// tagged earlier than `round` or earlier than a batch it already
    /// delivered — the producer violated the ordering protocol. The engine
    /// side is untouched: nothing is applied on the error path.
    pub fn fill_round(&mut self, round: u64, out: &mut RoundEvents) -> Result<(), CoreError> {
        out.clear();
        self.admit_registered();
        for index in 0..self.feeds.len() {
            let feed = &mut self.feeds[index];
            feed.refill();
            match &feed.pending {
                Some((tag, _)) if *tag < round => {
                    let tag = *tag;
                    return Err(CoreError::invalid_parameter(format!(
                        "merge protocol violation: feed {index} delivered a batch for \
                         round {tag} while applying round {round}"
                    )));
                }
                Some((tag, _)) if *tag == round => {
                    // lint: allow(R03, the match arm proves pending is Some)
                    let (tag, events) = feed.pending.take().expect("pending batch");
                    if feed.last_round.is_some_and(|last| tag <= last) {
                        return Err(CoreError::invalid_parameter(format!(
                            "merge protocol violation: feed {index} repeated round {tag}"
                        )));
                    }
                    feed.last_round = Some(tag);
                    feed.batches += 1;
                    feed.events += (events.arrivals.len() + events.completions.len()) as u64;
                    out.completions.extend_from_slice(&events.completions);
                    out.arrivals.extend_from_slice(&events.arrivals);
                    feed.consumer.recycle(events);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Applies the coalesced batch for `round` (if any) to `engine`. Call
    /// between rounds, before `round` executes — the same point the
    /// synchronous driver applies events, so merged and sync paths are
    /// bit-identical for the same merged stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on an ordering violation
    /// (nothing applied) or when the engine rejects an event.
    // lint: zero-alloc
    pub fn apply_round(
        &mut self,
        round: u64,
        engine: &mut dyn DynamicBalancer,
    ) -> Result<EventReport, CoreError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let filled = self.fill_round(round, &mut scratch);
        let applied = filled.and_then(|()| {
            if scratch.is_empty() {
                Ok(EventReport::default())
            } else {
                engine.apply_events(&scratch)
            }
        });
        self.scratch = scratch;
        let report = applied?;
        self.report.absorb(report);
        Ok(report)
    }

    /// Totals across every batch applied through
    /// [`apply_round`](MergeSession::apply_round).
    pub fn report(&self) -> EventReport {
        self.report
    }

    /// Whether every feed hung up and every sent batch has been consumed —
    /// the event-free remainder of the run. A registered feed not yet
    /// admitted counts as open.
    pub fn ended(&self) -> bool {
        let pending = self
            .registry
            .as_ref()
            .is_some_and(|registry| !registry.lock().expect("merge registry lock").is_empty());
        !pending
            && self
                .feeds
                .iter()
                .all(|feed| feed.ended && feed.pending.is_none())
    }

    /// Per-feed contribution and backpressure snapshots, in feed index
    /// order. Timing-dependent; report out of band.
    pub fn feed_reports(&self) -> Vec<FeedReport> {
        self.feeds
            .iter()
            .map(|feed| FeedReport {
                batches: feed.batches,
                events: feed.events,
                drained: feed.ended && feed.pending.is_none(),
                channel: feed.consumer.metrics(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::bounded;
    use super::*;
    use crate::continuous::Fos;
    use crate::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
    use crate::load::InitialLoad;
    use crate::task::{Speeds, Task, TaskId};
    use lb_graph::{generators, AlphaScheme};
    use std::thread;

    fn engine() -> FlowImitation<Fos> {
        let g = generators::torus(4, 4).unwrap();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
    }

    fn unit_arrival(node: usize, id: u64) -> (usize, Task) {
        (node, Task::new(TaskId(id), 1))
    }

    #[test]
    fn same_round_batches_coalesce_in_feed_order() {
        let (mut tx0, rx0) = bounded(4);
        let (mut tx1, rx1) = bounded(4);
        let mut batch = tx0.buffer();
        batch.arrivals.push(unit_arrival(0, 100));
        batch.completions.push((3, 2));
        tx0.send(5, batch).unwrap();
        let mut batch = tx1.buffer();
        batch.arrivals.push(unit_arrival(1, 200));
        batch.completions.push((4, 1));
        tx1.send(5, batch).unwrap();

        let mut session = MergeSession::new(vec![rx0, rx1]);
        let mut out = RoundEvents::default();
        for round in 0..5 {
            session.fill_round(round, &mut out).unwrap();
            assert!(out.is_empty(), "round {round} carries no events");
        }
        session.fill_round(5, &mut out).unwrap();
        assert_eq!(out.completions, vec![(3, 2), (4, 1)], "feed 0 first");
        assert_eq!(
            out.arrivals,
            vec![unit_arrival(0, 100), unit_arrival(1, 200)]
        );
        drop(tx0);
        drop(tx1);
        session.fill_round(6, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(session.ended(), "all feeds closed = event-free remainder");
    }

    #[test]
    fn feeds_at_different_rounds_interleave() {
        let (mut tx0, rx0) = bounded(4);
        let (mut tx1, rx1) = bounded(4);
        let handle = thread::spawn(move || {
            for round in [0u64, 2] {
                let mut batch = tx0.buffer();
                batch.arrivals.push(unit_arrival(0, round));
                tx0.send(round, batch).unwrap();
            }
        });
        for round in [1u64, 2] {
            let mut batch = tx1.buffer();
            batch.arrivals.push(unit_arrival(1, 100 + round));
            tx1.send(round, batch).unwrap();
        }
        drop(tx1);
        let mut session = MergeSession::new(vec![rx0, rx1]);
        let mut out = RoundEvents::default();
        session.fill_round(0, &mut out).unwrap();
        assert_eq!(out.arrivals, vec![unit_arrival(0, 0)]);
        session.fill_round(1, &mut out).unwrap();
        assert_eq!(out.arrivals, vec![unit_arrival(1, 101)]);
        session.fill_round(2, &mut out).unwrap();
        assert_eq!(
            out.arrivals,
            vec![unit_arrival(0, 2), unit_arrival(1, 102)],
            "same round from both feeds coalesces additively"
        );
        handle.join().unwrap();
    }

    #[test]
    fn hung_up_feed_degrades_to_the_rest() {
        let (mut tx0, rx0) = bounded(8);
        let (mut tx1, rx1) = bounded(8);
        for round in 0..6u64 {
            let mut batch = tx0.buffer();
            batch.arrivals.push(unit_arrival(0, round));
            tx0.send(round, batch).unwrap();
        }
        drop(tx0);
        // Feed 1 dies after round 1.
        for round in 0..2u64 {
            let mut batch = tx1.buffer();
            batch.arrivals.push(unit_arrival(1, 100 + round));
            tx1.send(round, batch).unwrap();
        }
        drop(tx1);

        let mut session = MergeSession::new(vec![rx0, rx1]);
        let mut alg1 = engine();
        for round in 0..8u64 {
            let report = session.apply_round(round, &mut alg1).unwrap();
            let expect = match round {
                0 | 1 => 2,
                2..=5 => 1,
                _ => 0,
            };
            assert_eq!(report.arrived_tasks, expect, "round {round}");
            alg1.step();
        }
        assert!(session.ended());
        assert_eq!(session.report().arrived_tasks, 8);
        let reports = session.feed_reports();
        assert_eq!(reports[0].batches, 6);
        assert_eq!(reports[1].batches, 2);
        assert!(reports.iter().all(|r| r.drained));
    }

    #[test]
    fn registered_feeds_join_a_live_merge() {
        let (mut session, registrar) = MergeSession::with_registrar();
        assert_eq!(session.feed_count(), 0);
        assert!(session.ended(), "no feeds, nothing registered");

        let (mut tx0, rx0) = bounded(4);
        registrar.register(rx0);
        assert_eq!(registrar.pending(), 1);
        assert_eq!(session.feed_count(), 1, "registered feeds count");
        assert!(!session.ended(), "a registered feed counts as open");

        let mut batch = tx0.buffer();
        batch.arrivals.push(unit_arrival(0, 1));
        tx0.send(0, batch).unwrap();
        let mut out = RoundEvents::default();
        session.fill_round(0, &mut out).unwrap();
        assert_eq!(registrar.pending(), 0, "fill_round admits the feed");
        assert_eq!(out.arrivals, vec![unit_arrival(0, 1)]);

        // A second feed joins mid-run (registrar handles are clone-able);
        // its first batch is tagged with a current round, never an earlier
        // one.
        let (mut tx1, rx1) = bounded(4);
        registrar.clone().register(rx1);
        let mut batch = tx1.buffer();
        batch.arrivals.push(unit_arrival(1, 2));
        tx1.send(3, batch).unwrap();
        let mut batch = tx0.buffer();
        batch.arrivals.push(unit_arrival(2, 3));
        tx0.send(3, batch).unwrap();
        for round in 1..3 {
            session.fill_round(round, &mut out).unwrap();
            assert!(out.is_empty(), "round {round}");
        }
        session.fill_round(3, &mut out).unwrap();
        assert_eq!(
            out.arrivals,
            vec![unit_arrival(2, 3), unit_arrival(1, 2)],
            "admission order is coalescing order"
        );

        drop(tx0);
        drop(tx1);
        session.fill_round(4, &mut out).unwrap();
        assert!(session.ended());
        let reports = session.feed_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].batches, 2);
        assert_eq!(reports[1].batches, 1);
    }

    #[test]
    fn stale_batches_are_protocol_errors_and_do_not_corrupt() {
        let (mut tx, rx) = bounded(4);
        let mut batch = tx.buffer();
        batch.arrivals.push(unit_arrival(2, 7));
        tx.send(3, batch).unwrap();
        let mut session = MergeSession::new(vec![rx]);
        let mut alg1 = engine();
        let loads_before = alg1.loads();
        let err = session.apply_round(9, &mut alg1).unwrap_err();
        assert!(err.to_string().contains("protocol violation"), "{err}");
        assert_eq!(alg1.loads(), loads_before, "engine state untouched");
        assert_eq!(session.report(), EventReport::default());
    }
}
