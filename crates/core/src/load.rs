//! Initial load distributions and load-vector helpers.

use crate::task::{Speeds, Task, TaskId, Weight};

/// An assignment of indivisible tasks to nodes — the input of every discrete
/// balancing process.
///
/// # Examples
///
/// ```
/// use lb_core::InitialLoad;
///
/// // 10 unit tokens on node 0 of a 4-node network.
/// let load = InitialLoad::single_source(4, 0, 10);
/// assert_eq!(load.total_weight(), 10);
/// assert_eq!(load.load_vector(), vec![10, 0, 0, 0]);
///
/// // Explicit token counts.
/// let load = InitialLoad::from_token_counts(vec![3, 1, 0, 2]);
/// assert_eq!(load.total_weight(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialLoad {
    tasks: Vec<Vec<Task>>,
}

impl InitialLoad {
    /// Creates an initial load from explicit per-node task lists.
    pub fn from_tasks(tasks: Vec<Vec<Task>>) -> Self {
        InitialLoad { tasks }
    }

    /// Creates an initial load of unit-weight tokens with the given per-node
    /// counts.
    pub fn from_token_counts(counts: Vec<u64>) -> Self {
        let mut next_id = 0u64;
        let tasks = counts
            .iter()
            .map(|&c| {
                (0..c)
                    .map(|_| {
                        let t = Task::new(TaskId(next_id), 1);
                        next_id += 1;
                        t
                    })
                    .collect()
            })
            .collect();
        InitialLoad { tasks }
    }

    /// Creates an initial load of unit-weight tokens with per-node weighted
    /// counts, where node `i` receives `counts[i]` tokens.
    ///
    /// Alias of [`InitialLoad::from_token_counts`] kept for readability at
    /// call sites that think in "tokens".
    pub fn tokens(counts: Vec<u64>) -> Self {
        Self::from_token_counts(counts)
    }

    /// All `total` unit tokens placed on a single `source` node of an
    /// `n`-node network — the worst-case "point" distribution used in most
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if `source >= n`.
    pub fn single_source(n: usize, source: usize, total: u64) -> Self {
        assert!(source < n, "source node {source} out of range for n = {n}");
        let mut counts = vec![0; n];
        counts[source] = total;
        Self::from_token_counts(counts)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.tasks.len()
    }

    /// The tasks initially assigned to node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tasks_of(&self, i: usize) -> &[Task] {
        &self.tasks[i]
    }

    /// Consumes the distribution and returns the per-node task lists.
    pub fn into_tasks(self) -> Vec<Vec<Task>> {
        self.tasks
    }

    /// Total number of tasks `m`.
    pub fn task_count(&self) -> usize {
        self.tasks.iter().map(|t| t.len()).sum()
    }

    /// Total weight `W` of all tasks.
    pub fn total_weight(&self) -> u64 {
        self.tasks
            .iter()
            .flat_map(|tasks| tasks.iter().map(|t| t.weight()))
            .sum()
    }

    /// Maximum task weight `w_max` (1 if there are no tasks, so that bounds
    /// like `2·d·w_max` remain meaningful).
    pub fn max_weight(&self) -> Weight {
        self.tasks
            .iter()
            .flat_map(|tasks| tasks.iter().map(|t| t.weight()))
            .max()
            .unwrap_or(1)
    }

    /// Returns `true` if every task has unit weight.
    pub fn is_unit_weight(&self) -> bool {
        self.tasks
            .iter()
            .all(|tasks| tasks.iter().all(|t| t.weight() == 1))
    }

    /// The per-node total weights `x(0)`.
    pub fn load_vector(&self) -> Vec<u64> {
        self.tasks
            .iter()
            .map(|tasks| tasks.iter().map(|t| t.weight()).sum())
            .collect()
    }

    /// The per-node total weights as `f64`, i.e. the continuous twin's
    /// initial load vector.
    pub fn load_vector_f64(&self) -> Vec<f64> {
        self.load_vector().into_iter().map(|w| w as f64).collect()
    }

    /// Initial max-min makespan discrepancy `K` under the given speeds.
    ///
    /// # Panics
    ///
    /// Panics if `speeds.len()` differs from the node count.
    pub fn initial_discrepancy(&self, speeds: &Speeds) -> f64 {
        assert_eq!(speeds.len(), self.node_count());
        crate::metrics::max_min_discrepancy(&self.load_vector_f64(), speeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_places_everything_on_one_node() {
        let load = InitialLoad::single_source(5, 2, 7);
        assert_eq!(load.load_vector(), vec![0, 0, 7, 0, 0]);
        assert_eq!(load.task_count(), 7);
        assert_eq!(load.total_weight(), 7);
        assert!(load.is_unit_weight());
        assert_eq!(load.max_weight(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_source_rejects_bad_node() {
        let _ = InitialLoad::single_source(3, 3, 1);
    }

    #[test]
    fn from_tasks_with_weights() {
        let tasks = vec![
            vec![Task::new(TaskId(0), 3), Task::new(TaskId(1), 5)],
            vec![],
            vec![Task::new(TaskId(2), 1)],
        ];
        let load = InitialLoad::from_tasks(tasks);
        assert_eq!(load.node_count(), 3);
        assert_eq!(load.total_weight(), 9);
        assert_eq!(load.max_weight(), 5);
        assert!(!load.is_unit_weight());
        assert_eq!(load.load_vector(), vec![8, 0, 1]);
        assert_eq!(load.load_vector_f64(), vec![8.0, 0.0, 1.0]);
        assert_eq!(load.tasks_of(0).len(), 2);
        assert_eq!(load.into_tasks().len(), 3);
    }

    #[test]
    fn token_ids_are_unique() {
        let load = InitialLoad::from_token_counts(vec![2, 3]);
        let mut ids: Vec<u64> = load.tasks.iter().flatten().map(|t| t.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn empty_distribution_has_wmax_one() {
        let load = InitialLoad::from_token_counts(vec![0, 0]);
        assert_eq!(load.max_weight(), 1);
        assert_eq!(load.total_weight(), 0);
    }

    #[test]
    fn initial_discrepancy_single_source() {
        let load = InitialLoad::single_source(4, 0, 8);
        let speeds = Speeds::uniform(4);
        assert!((load.initial_discrepancy(&speeds) - 8.0).abs() < 1e-12);
    }
}
