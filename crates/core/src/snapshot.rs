//! Versioned, crash-safe serialization of the full engine state.
//!
//! A snapshot captures everything a dynamic run needs to resume
//! bit-identically from a between-rounds boundary — the one quiescent point
//! the ingest contract already defines: discrete per-node loads, every
//! [`TaskQueue`](crate::TaskQueue)'s contents *in pop order* with their
//! tie-breaking sequence
//! numbers, the continuous twin's state (loads, cumulative flows, SOS
//! history), the imitation ledger, the Algorithm 2 rounding-RNG derivation
//! inputs, the round counter, and opaque driver payloads (the effective
//! scenario header and accumulated trajectory, owned by the driver layer).
//!
//! # Format
//!
//! One JSON document per line (via [`lb_analysis::Json`]; integers are
//! exact, `f64` state is encoded as IEEE-754 **bit patterns** so restore is
//! bit-identical, never a decimal round-trip):
//!
//! ```text
//! {"kind":"header","version":1,"scenario":{…}}            // opaque driver payload
//! {"kind":"run","round":R,"driver":{…}}                   // opaque driver payload
//! {"kind":"twin","round":T,"min_load_seen":B,"loads":[…],"cumulative_flow":[…]}
//! {"kind":"history","beta":B,"has_previous":true,"previous":[[F,B],…]}  // SOS only
//! {"kind":"alg1","round":R,"wmax":W,…,"dummy":[…],"discrete_flow":[…]}  // or "alg2"
//! {"kind":"queue","node":0,"next_seq":S,"entries":[[seq,id,weight,dummy],…]}
//! …                                                       // one queue line per node (alg1)
//! {"kind":"end","records":N,"tasks":T}                    // truncation guard
//! ```
//!
//! The end record carries the record and stored-task totals; a reader
//! rejects a snapshot without a matching end record, so a truncated or torn
//! file fails loudly ([`SnapshotError::Truncated`]) instead of silently
//! resuming from a prefix — the same discipline the trace format applies.
//!
//! # Crash safety
//!
//! [`write_atomic`] (and the byte-level helper [`write_bytes_atomic`])
//! publishes a snapshot via temp file → fsync → rename, so a crash mid-write
//! never leaves a torn file under the target path: readers see either the
//! previous complete snapshot or the new one.

use crate::continuous::EdgeFlow;
use crate::task::Task;
use crate::TaskId;
use lb_analysis::{u64_exact, usize_exact, Json};
use std::fmt;
use std::fs;
use std::path::Path;

pub use lb_analysis::artifact::write_bytes_atomic;

/// The snapshot format version this module writes and the only one it reads.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Typed snapshot failures: corrupt, truncated, stale and version-mismatched
/// snapshots each surface as their own variant, never a panic or a
/// silently-wrong resume.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error message.
        message: String,
    },
    /// Structurally invalid content, located at a 1-based line.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// The header declares a format version this build does not read.
    Version {
        /// 1-based line number of the header.
        line: usize,
        /// The declared version.
        found: u64,
    },
    /// The file ends before the end record (interrupted write, partial
    /// copy, or a mid-line torn write).
    Truncated {
        /// 1-based line number where the stream gave out.
        line: usize,
        /// What exactly is missing.
        reason: String,
    },
    /// The snapshot is internally consistent but does not belong to the run
    /// being resumed (wrong algorithm, wrong node count, stale seed, …).
    Mismatch {
        /// Why the snapshot cannot drive this engine.
        reason: String,
    },
}

impl SnapshotError {
    /// Convenience constructor for [`SnapshotError::Mismatch`].
    pub fn mismatch(reason: impl Into<String>) -> Self {
        SnapshotError::Mismatch {
            reason: reason.into(),
        }
    }

    fn corrupt(line: usize, reason: impl Into<String>) -> Self {
        SnapshotError::Corrupt {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, message } => write!(f, "snapshot {path}: {message}"),
            SnapshotError::Corrupt { line, reason } => {
                write!(f, "corrupt snapshot: line {line}: {reason}")
            }
            SnapshotError::Version { line, found } => write!(
                f,
                "corrupt snapshot: line {line}: unsupported snapshot version {found} \
                 (this build reads version {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { line, reason } => {
                write!(f, "truncated snapshot: line {line}: {reason}")
            }
            SnapshotError::Mismatch { reason } => {
                write!(f, "snapshot does not match this run: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Process-internal history captured alongside the twin (SOS's relaxation
/// state); memoryless kernels (FOS) have none.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessHistory {
    /// The relaxation parameter β, for bit-exact validation against the
    /// process rebuilt at resume time.
    pub beta: f64,
    /// The previous round's committed flows (`y(t−1)`).
    pub previous: Vec<EdgeFlow>,
    /// Whether `previous` is valid yet (false before the first round of an
    /// epoch).
    pub has_previous: bool,
}

/// The continuous twin's state: load vector, cumulative per-edge flows, and
/// the running minimum-load watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct TwinState {
    /// Completed twin rounds in the current topology epoch.
    pub round: u64,
    /// The load vector `x^A(t)`.
    pub loads: Vec<f64>,
    /// Cumulative net flow per canonical edge.
    pub cumulative_flow: Vec<f64>,
    /// Smallest node load observed at any round boundary so far.
    pub min_load_seen: f64,
    /// Process history (SOS), or `None` for memoryless kernels.
    pub history: Option<ProcessHistory>,
}

/// One node's task queue: its next-seq counter and `(seq, task)` entries in
/// pop order (see [`TaskQueue::snapshot`](crate::TaskQueue::snapshot)).
#[derive(Debug, Clone, PartialEq)]
pub struct QueueState {
    /// The queue's monotone push counter.
    pub next_seq: u64,
    /// `(seq, task)` pairs in pop order.
    pub entries: Vec<(u64, Task)>,
}

/// Algorithm 1 (deterministic flow imitation) state.
#[derive(Debug, Clone, PartialEq)]
pub struct Alg1State {
    /// Per-node task queues, in pop order with tie-breaking seqs.
    pub queues: Vec<QueueState>,
    /// Per-node dummy holdings.
    pub dummy: Vec<u64>,
    /// Cumulative net discrete flow per canonical edge.
    pub discrete_flow: Vec<i64>,
    /// The maximum task weight seen so far (mutated by arrivals).
    pub wmax: u64,
    /// Total dummy load created from the infinite source.
    pub dummy_created: u64,
    /// Total items moved over edges.
    pub items_sent: u64,
    /// Total weight injected by arrival events.
    pub arrived_weight: u64,
    /// Total weight drained by completion events.
    pub completed_weight: u64,
}

/// Algorithm 2 (randomized flow imitation) state. The rounding RNG is not
/// serialized: every decision derives a fresh sub-RNG from
/// `(seed, round, edge)`, so the seed and round counter reconstruct it.
#[derive(Debug, Clone, PartialEq)]
pub struct Alg2State {
    /// Per-node real token counts.
    pub tokens: Vec<u64>,
    /// Per-node dummy holdings.
    pub dummy: Vec<u64>,
    /// Cumulative net discrete flow per canonical edge.
    pub discrete_flow: Vec<i64>,
    /// The master rounding seed (validated against the resumed engine).
    pub seed: u64,
    /// Total dummy load created from the infinite source.
    pub dummy_created: u64,
    /// Total weight injected by arrival events.
    pub arrived_weight: u64,
    /// Total weight drained by completion events.
    pub completed_weight: u64,
}

/// Which discretizer the snapshot belongs to.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscreteState {
    /// Algorithm 1 state.
    Alg1(Alg1State),
    /// Algorithm 2 state.
    Alg2(Alg2State),
}

/// The full engine state at a between-rounds boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Completed engine rounds (never resets, unlike the twin's counter).
    pub round: u64,
    /// The continuous twin.
    pub twin: TwinState,
    /// The discretizer's state.
    pub discrete: DiscreteState,
}

/// A complete parsed snapshot: the engine state plus the driver layer's
/// opaque payloads, round-tripped verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The effective scenario header (owned and interpreted by the driver).
    pub scenario: Json,
    /// Driver payload (accumulated trajectory, engine identity, …).
    pub driver: Json,
    /// Completed rounds at capture time — the round the resumed run
    /// continues from.
    pub round: u64,
    /// The captured engine.
    pub engine: EngineState,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// `f64` state travels as its IEEE-754 bit pattern: exact for every value
/// including negative zero, subnormals and infinities.
fn bits(x: f64) -> Json {
    Json::from(x.to_bits())
}

fn bits_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| bits(x)).collect())
}

fn i64_arr(xs: &[i64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::from(x)).collect())
}

fn u64_arr(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::from(x)).collect())
}

/// Renders `snapshot` into the line-delimited text form.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut records = 0usize;
    let mut tasks = 0u64;
    let header = Json::obj([
        ("kind", Json::from("header")),
        ("version", Json::from(SNAPSHOT_VERSION)),
        ("scenario", snapshot.scenario.clone()),
    ]);
    out.push_str(&header.render());
    out.push('\n');
    let mut push = |record: Json, out: &mut String| {
        out.push_str(&record.render());
        out.push('\n');
        records += 1;
    };
    push(
        Json::obj([
            ("kind", Json::from("run")),
            ("round", Json::from(snapshot.round)),
            ("driver", snapshot.driver.clone()),
        ]),
        &mut out,
    );
    let twin = &snapshot.engine.twin;
    push(
        Json::obj([
            ("kind", Json::from("twin")),
            ("round", Json::from(twin.round)),
            ("min_load_seen", bits(twin.min_load_seen)),
            ("loads", bits_arr(&twin.loads)),
            ("cumulative_flow", bits_arr(&twin.cumulative_flow)),
        ]),
        &mut out,
    );
    if let Some(history) = &twin.history {
        let previous = history
            .previous
            .iter()
            .map(|flow| Json::Arr(vec![bits(flow.forward), bits(flow.backward)]))
            .collect();
        push(
            Json::obj([
                ("kind", Json::from("history")),
                ("beta", bits(history.beta)),
                ("has_previous", Json::from(history.has_previous)),
                ("previous", Json::Arr(previous)),
            ]),
            &mut out,
        );
    }
    match &snapshot.engine.discrete {
        DiscreteState::Alg1(alg1) => {
            push(
                Json::obj([
                    ("kind", Json::from("alg1")),
                    ("round", Json::from(snapshot.engine.round)),
                    ("wmax", Json::from(alg1.wmax)),
                    ("dummy_created", Json::from(alg1.dummy_created)),
                    ("items_sent", Json::from(alg1.items_sent)),
                    ("arrived_weight", Json::from(alg1.arrived_weight)),
                    ("completed_weight", Json::from(alg1.completed_weight)),
                    ("dummy", u64_arr(&alg1.dummy)),
                    ("discrete_flow", i64_arr(&alg1.discrete_flow)),
                ]),
                &mut out,
            );
            for (node, queue) in alg1.queues.iter().enumerate() {
                tasks += u64_exact(queue.entries.len());
                let entries = queue
                    .entries
                    .iter()
                    .map(|&(seq, task)| {
                        Json::Arr(vec![
                            Json::from(seq),
                            Json::from(task.id().0),
                            Json::from(task.weight()),
                            Json::from(task.is_dummy()),
                        ])
                    })
                    .collect();
                push(
                    Json::obj([
                        ("kind", Json::from("queue")),
                        ("node", Json::from(node)),
                        ("next_seq", Json::from(queue.next_seq)),
                        ("entries", Json::Arr(entries)),
                    ]),
                    &mut out,
                );
            }
        }
        DiscreteState::Alg2(alg2) => {
            push(
                Json::obj([
                    ("kind", Json::from("alg2")),
                    ("round", Json::from(snapshot.engine.round)),
                    ("seed", Json::from(alg2.seed)),
                    ("dummy_created", Json::from(alg2.dummy_created)),
                    ("arrived_weight", Json::from(alg2.arrived_weight)),
                    ("completed_weight", Json::from(alg2.completed_weight)),
                    ("tokens", u64_arr(&alg2.tokens)),
                    ("dummy", u64_arr(&alg2.dummy)),
                    ("discrete_flow", i64_arr(&alg2.discrete_flow)),
                ]),
                &mut out,
            );
        }
    }
    let end = Json::obj([
        ("kind", Json::from("end")),
        ("records", Json::from(records)),
        ("tasks", Json::from(tasks)),
    ]);
    out.push_str(&end.render());
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Exact u64: `Json::Int` in range or an integral non-negative `Num`.
fn get_u64(record: &Json, field: &str, line: usize) -> Result<u64, SnapshotError> {
    record
        .get(field)
        .ok_or_else(|| SnapshotError::corrupt(line, format!("missing field {field:?}")))?
        .as_u64()
        .ok_or_else(|| {
            SnapshotError::corrupt(
                line,
                format!("field {field:?} must be a non-negative exact integer"),
            )
        })
}

fn item_u64(item: &Json, what: &str, line: usize) -> Result<u64, SnapshotError> {
    item.as_u64().ok_or_else(|| {
        SnapshotError::corrupt(line, format!("{what} must be a non-negative exact integer"))
    })
}

/// Exact i64 (the discrete-flow ledger is signed).
fn item_i64(item: &Json, what: &str, line: usize) -> Result<i64, SnapshotError> {
    let exact = match item {
        Json::Int(v) => i64::try_from(*v).ok(),
        // lint: allow(R02, both casts proven exact by the fract/magnitude guard)
        Json::Num(x) if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 => Some(*x as i64),
        _ => None,
    };
    exact.ok_or_else(|| SnapshotError::corrupt(line, format!("{what} must be an exact integer")))
}

fn item_f64_bits(item: &Json, what: &str, line: usize) -> Result<f64, SnapshotError> {
    Ok(f64::from_bits(item_u64(item, what, line)?))
}

fn get_f64_bits(record: &Json, field: &str, line: usize) -> Result<f64, SnapshotError> {
    Ok(f64::from_bits(get_u64(record, field, line)?))
}

fn get_array<'a>(record: &'a Json, field: &str, line: usize) -> Result<&'a [Json], SnapshotError> {
    record
        .get(field)
        .ok_or_else(|| SnapshotError::corrupt(line, format!("missing field {field:?}")))?
        .as_array()
        .ok_or_else(|| SnapshotError::corrupt(line, format!("field {field:?} must be an array")))
}

fn get_bits_arr(record: &Json, field: &str, line: usize) -> Result<Vec<f64>, SnapshotError> {
    get_array(record, field, line)?
        .iter()
        .map(|item| item_f64_bits(item, &format!("{field} entry"), line))
        .collect()
}

fn get_u64_arr(record: &Json, field: &str, line: usize) -> Result<Vec<u64>, SnapshotError> {
    get_array(record, field, line)?
        .iter()
        .map(|item| item_u64(item, &format!("{field} entry"), line))
        .collect()
}

fn get_i64_arr(record: &Json, field: &str, line: usize) -> Result<Vec<i64>, SnapshotError> {
    get_array(record, field, line)?
        .iter()
        .map(|item| item_i64(item, &format!("{field} entry"), line))
        .collect()
}

fn get_bool(record: &Json, field: &str, line: usize) -> Result<bool, SnapshotError> {
    match record.get(field) {
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(SnapshotError::corrupt(
            line,
            format!("field {field:?} must be a boolean"),
        )),
        None => Err(SnapshotError::corrupt(
            line,
            format!("missing field {field:?}"),
        )),
    }
}

fn kind_of(record: &Json) -> Option<&str> {
    record.get("kind").and_then(Json::as_str)
}

/// Parses a snapshot from its line-delimited text form, validating the
/// version, the record sequence and the end record's totals.
///
/// # Errors
///
/// Every malformed input maps to a specific [`SnapshotError`]: bad records
/// are located by line, a flipped version is [`SnapshotError::Version`], a
/// missing end record or a mid-line torn write is
/// [`SnapshotError::Truncated`].
pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
    if text.is_empty() {
        return Err(SnapshotError::Truncated {
            line: 1,
            reason: "empty snapshot".into(),
        });
    }
    let line_count = text.lines().count();
    if !text.ends_with('\n') {
        return Err(SnapshotError::Truncated {
            line: line_count,
            reason: "torn line (the file ends mid-record, without a newline)".into(),
        });
    }
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(idx, line)| (idx + 1, line))
        .filter(|(_, line)| !line.trim().is_empty());

    // Header.
    let (line, header) = lines.next().ok_or(SnapshotError::Truncated {
        line: 1,
        reason: "empty snapshot".into(),
    })?;
    let header = Json::parse(header).map_err(|e| SnapshotError::corrupt(line, e))?;
    if kind_of(&header) != Some("header") {
        return Err(SnapshotError::corrupt(
            line,
            "expected the snapshot header record",
        ));
    }
    match get_u64(&header, "version", line)? {
        SNAPSHOT_VERSION => {}
        found => return Err(SnapshotError::Version { line, found }),
    }
    let scenario = header
        .get("scenario")
        .ok_or_else(|| SnapshotError::corrupt(line, "header has no scenario"))?
        .clone();

    // Body: run → twin → [history] → alg1 + queues | alg2 → end.
    let mut run: Option<(u64, Json)> = None;
    let mut twin: Option<TwinState> = None;
    let mut alg1: Option<(u64, Alg1State)> = None;
    let mut alg2: Option<(u64, Alg2State)> = None;
    let mut records = 0usize;
    let mut tasks = 0u64;
    let mut sealed = false;
    let mut last_line = line;
    for (line, text) in lines {
        last_line = line;
        if sealed {
            return Err(SnapshotError::corrupt(line, "content after the end record"));
        }
        let record = Json::parse(text).map_err(|e| SnapshotError::corrupt(line, e))?;
        match kind_of(&record) {
            Some("run") => {
                if run.is_some() {
                    return Err(SnapshotError::corrupt(line, "duplicate run record"));
                }
                let round = get_u64(&record, "round", line)?;
                let driver = record
                    .get("driver")
                    .ok_or_else(|| SnapshotError::corrupt(line, "run record has no driver"))?
                    .clone();
                run = Some((round, driver));
            }
            Some("twin") => {
                if twin.is_some() {
                    return Err(SnapshotError::corrupt(line, "duplicate twin record"));
                }
                twin = Some(TwinState {
                    round: get_u64(&record, "round", line)?,
                    min_load_seen: get_f64_bits(&record, "min_load_seen", line)?,
                    loads: get_bits_arr(&record, "loads", line)?,
                    cumulative_flow: get_bits_arr(&record, "cumulative_flow", line)?,
                    history: None,
                });
            }
            Some("history") => {
                let twin = twin.as_mut().ok_or_else(|| {
                    SnapshotError::corrupt(line, "history record before the twin record")
                })?;
                if twin.history.is_some() {
                    return Err(SnapshotError::corrupt(line, "duplicate history record"));
                }
                let previous = get_array(&record, "previous", line)?
                    .iter()
                    .map(|pair| {
                        let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                            SnapshotError::corrupt(
                                line,
                                "each previous entry must be a [forward, backward] pair",
                            )
                        })?;
                        Ok(EdgeFlow::new(
                            item_f64_bits(&items[0], "previous forward", line)?,
                            item_f64_bits(&items[1], "previous backward", line)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                twin.history = Some(ProcessHistory {
                    beta: get_f64_bits(&record, "beta", line)?,
                    has_previous: get_bool(&record, "has_previous", line)?,
                    previous,
                });
            }
            Some("alg1") => {
                if alg1.is_some() || alg2.is_some() {
                    return Err(SnapshotError::corrupt(line, "duplicate engine record"));
                }
                alg1 = Some((
                    get_u64(&record, "round", line)?,
                    Alg1State {
                        queues: Vec::new(),
                        dummy: get_u64_arr(&record, "dummy", line)?,
                        discrete_flow: get_i64_arr(&record, "discrete_flow", line)?,
                        wmax: get_u64(&record, "wmax", line)?,
                        dummy_created: get_u64(&record, "dummy_created", line)?,
                        items_sent: get_u64(&record, "items_sent", line)?,
                        arrived_weight: get_u64(&record, "arrived_weight", line)?,
                        completed_weight: get_u64(&record, "completed_weight", line)?,
                    },
                ));
            }
            Some("queue") => {
                let (_, alg1) = alg1.as_mut().ok_or_else(|| {
                    SnapshotError::corrupt(line, "queue record before the alg1 record")
                })?;
                let node = get_u64(&record, "node", line)
                    .map(usize_exact)?
                    .ok_or_else(|| {
                        SnapshotError::corrupt(line, "queue node index exceeds this platform")
                    })?;
                if node != alg1.queues.len() {
                    return Err(SnapshotError::corrupt(
                        line,
                        format!(
                            "queue records must cover nodes in order: got node {node}, \
                             expected {}",
                            alg1.queues.len()
                        ),
                    ));
                }
                let entries = get_array(&record, "entries", line)?
                    .iter()
                    .map(|entry| {
                        let items = entry.as_array().filter(|a| a.len() == 4).ok_or_else(|| {
                            SnapshotError::corrupt(
                                line,
                                "each queue entry must be a [seq, id, weight, dummy] quadruple",
                            )
                        })?;
                        let seq = item_u64(&items[0], "queue entry seq", line)?;
                        let id = item_u64(&items[1], "queue entry id", line)?;
                        let weight = item_u64(&items[2], "queue entry weight", line)?;
                        let dummy = match &items[3] {
                            Json::Bool(b) => *b,
                            _ => {
                                return Err(SnapshotError::corrupt(
                                    line,
                                    "queue entry dummy flag must be a boolean",
                                ))
                            }
                        };
                        let task = if dummy {
                            if weight != 1 {
                                return Err(SnapshotError::corrupt(
                                    line,
                                    "dummy tasks must have unit weight",
                                ));
                            }
                            Task::dummy(TaskId(id))
                        } else {
                            if weight == 0 {
                                return Err(SnapshotError::corrupt(
                                    line,
                                    "task weight must be positive",
                                ));
                            }
                            Task::new(TaskId(id), weight)
                        };
                        Ok((seq, task))
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                tasks += u64_exact(entries.len());
                alg1.queues.push(QueueState {
                    next_seq: get_u64(&record, "next_seq", line)?,
                    entries,
                });
            }
            Some("alg2") => {
                if alg1.is_some() || alg2.is_some() {
                    return Err(SnapshotError::corrupt(line, "duplicate engine record"));
                }
                alg2 = Some((
                    get_u64(&record, "round", line)?,
                    Alg2State {
                        tokens: get_u64_arr(&record, "tokens", line)?,
                        dummy: get_u64_arr(&record, "dummy", line)?,
                        discrete_flow: get_i64_arr(&record, "discrete_flow", line)?,
                        seed: get_u64(&record, "seed", line)?,
                        dummy_created: get_u64(&record, "dummy_created", line)?,
                        arrived_weight: get_u64(&record, "arrived_weight", line)?,
                        completed_weight: get_u64(&record, "completed_weight", line)?,
                    },
                ));
            }
            Some("end") => {
                let declared_records = get_u64(&record, "records", line)?;
                let declared_tasks = get_u64(&record, "tasks", line)?;
                if declared_records != u64_exact(records) || declared_tasks != tasks {
                    return Err(SnapshotError::corrupt(
                        line,
                        format!(
                            "end record declares {declared_records} record(s) / \
                             {declared_tasks} task(s) but the snapshot carries \
                             {records} / {tasks}"
                        ),
                    ));
                }
                sealed = true;
                continue; // the end record itself is not counted
            }
            Some("header") => {
                return Err(SnapshotError::corrupt(line, "unexpected header record"));
            }
            Some(other) => {
                return Err(SnapshotError::corrupt(
                    line,
                    format!("unknown record kind {other:?}"),
                ));
            }
            None => return Err(SnapshotError::corrupt(line, "record has no kind")),
        }
        records += 1;
    }
    if !sealed {
        return Err(SnapshotError::Truncated {
            line: last_line,
            reason: "snapshot ends without the end record".into(),
        });
    }
    let (round, driver) =
        run.ok_or_else(|| SnapshotError::corrupt(last_line, "snapshot has no run record"))?;
    let twin =
        twin.ok_or_else(|| SnapshotError::corrupt(last_line, "snapshot has no twin record"))?;
    let (engine_round, discrete) = match (alg1, alg2) {
        (Some((round, state)), None) => (round, DiscreteState::Alg1(state)),
        (None, Some((round, state))) => (round, DiscreteState::Alg2(state)),
        _ => {
            return Err(SnapshotError::corrupt(
                last_line,
                "snapshot has no engine record",
            ))
        }
    };
    if let DiscreteState::Alg1(alg1) = &discrete {
        if alg1.queues.len() != alg1.dummy.len() {
            return Err(SnapshotError::corrupt(
                last_line,
                format!(
                    "snapshot carries {} queue record(s) for {} node(s)",
                    alg1.queues.len(),
                    alg1.dummy.len()
                ),
            ));
        }
    }
    Ok(Snapshot {
        scenario,
        driver,
        round,
        engine: EngineState {
            round: engine_round,
            twin,
            discrete,
        },
    })
}

/// Reads and parses the snapshot file at `path`.
///
/// # Errors
///
/// I/O failures surface as [`SnapshotError::Io`]; malformed content as the
/// located variants of [`SnapshotError`].
pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| SnapshotError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse(&text)
}

/// Renders `snapshot` and atomically writes it to `path` (see
/// [`write_bytes_atomic`]).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] naming the path on failure.
pub fn write_atomic(path: impl AsRef<Path>, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    write_bytes_atomic(path, render(snapshot).as_bytes()).map_err(|e| SnapshotError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            scenario: Json::obj([("name", Json::from("s")), ("seed", Json::from(7u64))]),
            driver: Json::obj([("engine", Json::from("alg1(fos)"))]),
            round: 12,
            engine: EngineState {
                round: 12,
                twin: TwinState {
                    round: 5,
                    loads: vec![1.5, -0.0, f64::MIN_POSITIVE],
                    cumulative_flow: vec![0.1 + 0.2], // not exactly 0.3: bit test
                    min_load_seen: -3.25,
                    history: Some(ProcessHistory {
                        beta: 1.804217,
                        previous: vec![EdgeFlow::new(0.25, 1.75)],
                        has_previous: true,
                    }),
                },
                discrete: DiscreteState::Alg1(Alg1State {
                    queues: vec![
                        QueueState {
                            next_seq: 9,
                            entries: vec![
                                (3, Task::new(TaskId(100), 2)),
                                (7, Task::dummy(TaskId(4))),
                            ],
                        },
                        QueueState {
                            next_seq: 0,
                            entries: Vec::new(),
                        },
                        QueueState {
                            next_seq: 2,
                            entries: vec![(1, Task::new(TaskId((1 << 60) + 3), 1))],
                        },
                    ],
                    dummy: vec![0, 2, 1],
                    discrete_flow: vec![-4, 0, 17],
                    wmax: 2,
                    dummy_created: 3,
                    items_sent: 40,
                    arrived_weight: 12,
                    completed_weight: 9,
                }),
            },
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snapshot = sample();
        let text = render(&snapshot);
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed, snapshot);
        // f64 state survives as bits, not decimal text.
        let twin = &parsed.engine.twin;
        assert_eq!(twin.loads[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(twin.cumulative_flow[0].to_bits(), (0.1 + 0.2f64).to_bits());
        // Re-rendering is byte-identical.
        assert_eq!(render(&parsed), text);
    }

    #[test]
    fn alg2_round_trips() {
        let mut snapshot = sample();
        snapshot.engine.twin.history = None;
        snapshot.engine.discrete = DiscreteState::Alg2(Alg2State {
            tokens: vec![5, 0, 2],
            dummy: vec![1, 0, 0],
            discrete_flow: vec![2, -2, 0],
            seed: (1 << 60) + 9,
            dummy_created: 1,
            arrived_weight: 4,
            completed_weight: 2,
        });
        let text = render(&snapshot);
        assert_eq!(parse(&text).expect("parses"), snapshot);
    }

    #[test]
    fn truncation_and_torn_writes_fail_loudly() {
        let text = render(&sample());
        // Drop the end record.
        let without_end: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        match parse(&without_end) {
            Err(SnapshotError::Truncated { reason, .. }) => {
                assert!(reason.contains("end record"), "{reason}")
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Mid-line torn write: cut the file in the middle of a record.
        let cut = text.rfind("\"kind\":\"queue\"").unwrap() + 8;
        let torn = &text[..cut];
        match parse(torn) {
            Err(SnapshotError::Truncated { reason, .. }) => {
                assert!(reason.contains("torn"), "{reason}")
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn flipped_version_is_a_version_error() {
        let text = render(&sample()).replace("\"version\":1", "\"version\":2");
        match parse(&text) {
            Err(SnapshotError::Version { found: 2, line: 1 }) => {}
            other => panic!("expected Version, got {other:?}"),
        }
    }

    #[test]
    fn edited_totals_are_corrupt() {
        let text = render(&sample()).replace("\"tasks\":3", "\"tasks\":4");
        match parse(&text) {
            Err(SnapshotError::Corrupt { reason, .. }) => {
                assert!(reason.contains("declares"), "{reason}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_up() {
        let path = std::env::temp_dir().join(format!(
            "lb_snapshot_unit_{}.snap.jsonl",
            std::process::id()
        ));
        let snapshot = sample();
        write_atomic(&path, &snapshot).expect("writes");
        // Overwrite with a second snapshot: rename replaces atomically.
        let mut second = snapshot.clone();
        second.round = 13;
        write_atomic(&path, &second).expect("overwrites");
        assert_eq!(load(&path).expect("loads"), second);
        // No temp file lingers.
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("lb_snapshot_unit"))
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_names_the_failure() {
        let err = SnapshotError::Version { line: 1, found: 9 };
        assert!(err.to_string().contains("version 9"));
        let err = SnapshotError::corrupt(4, "bad");
        assert!(err.to_string().contains("line 4"));
        let err = SnapshotError::mismatch("wrong engine");
        assert!(err.to_string().contains("wrong engine"));
    }
}
