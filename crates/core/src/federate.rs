//! Federation: one simulation partitioned across cooperating processes.
//!
//! In-process sharding ([`crate::shard`]) splits a round across threads that
//! share one address space. Federation splits the *same* round across OS
//! processes that share nothing: each **part** owns a contiguous node range
//! (the same edge-balanced planner as the shard plan), runs its partition of
//! the discrete engine plus continuous twin, and exchanges exactly three
//! payloads per round over a [`FederateLink`]:
//!
//! 1. **boundary loads** — after events, before the twin kernel: every part
//!    publishes the loads of its own nodes that have a remote neighbour, so
//!    remote parts can evaluate `compute_flows_range` on crossing edges;
//! 2. **crossing flows** — after the kernel: every part publishes the flows
//!    it computed for its own edges whose higher endpoint is remote, so the
//!    neighbouring part can apply them to its node loads and ledgers;
//! 3. **sends** — after the discrete scan: cross-partition task deliveries,
//!    dummy transfers, token moves and discrete-flow ledger deltas, merged by
//!    the receiver in global edge order (the same k-way merge discipline as
//!    `lb-core::ingest::merge` and the shard outboxes).
//!
//! # Determinism contract
//!
//! Federated execution is **bit-identical** to sequential execution for
//! every part count and per-part shard count. The argument is the sharding
//! argument extended across address spaces: per-node f64 updates follow the
//! CSR incident-edge order (equal to canonical edge order), each edge has a
//! unique sender-owner per round (the deficit sign picks the sender, the
//! sender's owner processes the edge), deliveries are merged in global edge
//! order, every other cross-part effect is additive, and Algorithm 2 derives
//! an independent sub-RNG per `(seed, round, edge)`
//! ([`edge_rounding_rng`](crate::discrete::edge_rounding_rng)) so randomized
//! rounding needs no RNG-stream coordination between processes.
//!
//! Each part holds full-length state vectors but only its **owned** entries
//! (and, transiently, refreshed boundary entries) are authoritative; foreign
//! entries are stale and never read. Counters (`dummy_created`,
//! `items_sent`, arrival/completion totals) are disjoint partials that an
//! assembler sums in rank order.

use std::ops::Range;
use std::sync::Arc;

use lb_graph::{EdgeId, Graph, NodeId};

use crate::error::CoreError;
use crate::shard::{edge_balanced_bounds, ShardPool};
use crate::task::Task;

/// The contiguous node-range partition of one graph across `parts`
/// federated processes, plus everything part `part` needs to know about its
/// boundary: which of its nodes face a remote neighbour, which of its edges
/// cross the cut, and which edges touch it at all.
///
/// A node is owned by the part whose node range contains it; a canonical
/// edge is owned by the owner of its lower endpoint. The planner is the same
/// edge-balanced splitter the in-process [`ShardedExecutor`] uses, so a
/// federated part and a shard see identical ranges for identical counts.
///
/// [`ShardedExecutor`]: crate::ShardedExecutor
#[derive(Debug, Clone)]
pub struct FederationPlan {
    part: usize,
    /// Node range starts, length `parts + 1`.
    node_bounds: Vec<usize>,
    /// Canonical edge range starts, length `parts + 1`.
    edge_bounds: Vec<usize>,
    /// Own nodes with at least one remote neighbour, ascending.
    boundary: Vec<NodeId>,
    /// Own edges whose higher endpoint is remote, ascending.
    crossing: Vec<EdgeId>,
    /// Every edge with at least one own endpoint, ascending.
    incident: Vec<EdgeId>,
}

impl FederationPlan {
    /// Builds the plan for `graph` partitioned into `parts` parts, viewed
    /// from part `part`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `parts` is zero or
    /// `part` is out of range.
    pub fn new(graph: &Graph, part: usize, parts: usize) -> Result<Self, CoreError> {
        if parts == 0 {
            return Err(CoreError::invalid_parameter(
                "federation needs at least one part",
            ));
        }
        if part >= parts {
            return Err(CoreError::invalid_parameter(format!(
                "federation rank {part} is out of range for {parts} part(s)"
            )));
        }
        let (node_bounds, edge_bounds) = edge_balanced_bounds(parts, graph);
        let own = node_bounds[part]..node_bounds[part + 1];
        let mut boundary_mark = vec![false; own.len()];
        let mut crossing = Vec::new();
        let mut incident = Vec::new();
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let u_own = own.contains(&u);
            let v_own = own.contains(&v);
            if !u_own && !v_own {
                continue;
            }
            incident.push(e);
            if u_own != v_own {
                if u_own {
                    boundary_mark[u - own.start] = true;
                    crossing.push(e);
                } else {
                    boundary_mark[v - own.start] = true;
                }
            }
        }
        let boundary = boundary_mark
            .iter()
            .enumerate()
            .filter(|&(_, &marked)| marked)
            .map(|(i, _)| own.start + i)
            .collect();
        Ok(FederationPlan {
            part,
            node_bounds,
            edge_bounds,
            boundary,
            crossing,
            incident,
        })
    }

    /// This part's rank.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Total number of parts.
    pub fn parts(&self) -> usize {
        self.node_bounds.len() - 1
    }

    /// The node range owned by this part.
    pub fn node_range(&self) -> Range<usize> {
        self.node_range_of(self.part)
    }

    /// The canonical edge range owned by this part.
    pub fn edge_range(&self) -> Range<usize> {
        self.edge_range_of(self.part)
    }

    /// The node range owned by part `p` (for assemblers).
    pub fn node_range_of(&self, p: usize) -> Range<usize> {
        self.node_bounds[p]..self.node_bounds[p + 1]
    }

    /// The canonical edge range owned by part `p` (for assemblers).
    pub fn edge_range_of(&self, p: usize) -> Range<usize> {
        self.edge_bounds[p]..self.edge_bounds[p + 1]
    }

    /// Whether this part owns `node`.
    pub fn owns_node(&self, node: NodeId) -> bool {
        self.node_range().contains(&node)
    }

    /// Own nodes that have at least one remote neighbour, ascending.
    pub fn boundary(&self) -> &[NodeId] {
        &self.boundary
    }

    /// Own edges whose higher endpoint is remote, ascending.
    pub fn crossing(&self) -> &[EdgeId] {
        &self.crossing
    }

    /// Every edge with at least one own endpoint, ascending.
    pub fn incident(&self) -> &[EdgeId] {
        &self.incident
    }
}

/// One round's cross-partition effects produced by one part: task
/// deliveries, dummy transfers, Algorithm 2 token moves and discrete-flow
/// ledger deltas for crossing edges.
///
/// `tasks` is ascending by edge id (the incident scan is ascending);
/// receivers merge batches by edge id, which reproduces the sequential
/// delivery order because each edge has a unique sender-owner per round.
/// Every other field is additive, so its order does not matter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SendBatch {
    /// Algorithm 1 task deliveries `(edge, receiver, task)`.
    pub tasks: Vec<(EdgeId, NodeId, Task)>,
    /// Algorithm 1 dummy transfers `(receiver, amount)`.
    pub dummy: Vec<(NodeId, u64)>,
    /// Algorithm 2 token moves `(receiver, real, dummy)`.
    pub tokens: Vec<(NodeId, u64, u64)>,
    /// Discrete-flow ledger deltas `(edge, delta)` for crossing edges.
    pub deltas: Vec<(EdgeId, i64)>,
}

impl SendBatch {
    /// Empties every buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.dummy.clear();
        self.tokens.clear();
        self.deltas.clear();
    }

    /// Whether the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
            && self.dummy.is_empty()
            && self.tokens.is_empty()
            && self.deltas.is_empty()
    }
}

/// The transport a federated engine exchanges its per-round payloads over.
///
/// Every method is an **all-gather with a barrier**: the call blocks until
/// every part has contributed, then returns the combined payloads. `f64`
/// values travel as IEEE-754 bit patterns so a link never has to round-trip
/// decimal text.
///
/// Implementations relay through a coordinator (sockets) or through shared
/// memory (the loopback hub used by this module's tests); the engine only
/// relies on the barrier + rank-order semantics below.
pub trait FederateLink {
    /// Publishes this part's boundary loads `(node, bits)` and returns every
    /// part's entries, concatenated in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Federation`] when a peer is lost or the payload
    /// cannot be exchanged.
    fn exchange_loads(&mut self, own: &[(NodeId, u64)]) -> Result<Vec<(NodeId, u64)>, CoreError>;

    /// Publishes this part's crossing-edge flows
    /// `(edge, forward_bits, backward_bits)` and returns every part's
    /// entries, concatenated in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Federation`] when a peer is lost or the payload
    /// cannot be exchanged.
    fn exchange_flows(
        &mut self,
        own: &[(EdgeId, u64, u64)],
    ) -> Result<Vec<(EdgeId, u64, u64)>, CoreError>;

    /// Publishes this part's send batch and returns every part's batch in
    /// rank order (one entry per part, own included).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Federation`] when a peer is lost or the payload
    /// cannot be exchanged.
    fn exchange_sends(&mut self, own: &SendBatch) -> Result<Vec<SendBatch>, CoreError>;
}

/// Drives federated rounds for one part of one engine: the partition plan,
/// an optional intra-part worker pool for the continuous kernel, and the
/// reusable exchange buffers.
///
/// Like [`ShardedExecutor`](crate::ShardedExecutor), the executor rebinds to
/// whatever graph the engine currently runs on (checked by `Arc` identity),
/// so topology churn triggers a plan rebuild on the next federated step.
/// Intra-part `shards` parallelise the continuous kernel (Phase A) only —
/// any chunking of the owned edge range is bit-identical because per-edge
/// flow computation is independent.
pub struct FederatedExecutor {
    pub(crate) plan: FederationPlan,
    pub(crate) pool: ShardPool,
    shards: usize,
    part: usize,
    parts: usize,
    graph: Option<Arc<Graph>>,
    /// Scratch: boundary loads published this round.
    pub(crate) loads_out: Vec<(NodeId, u64)>,
    /// Scratch: crossing flows published this round.
    pub(crate) flows_out: Vec<(EdgeId, u64, u64)>,
    /// Scratch: this part's outgoing cross-partition effects.
    pub(crate) batch: SendBatch,
    /// Scratch: this part's local (own-receiver) deliveries, edge-tagged.
    pub(crate) local: Vec<(EdgeId, NodeId, Task)>,
    /// Reusable cursors for the delivery merge.
    cursors: Vec<usize>,
}

impl FederatedExecutor {
    /// Creates the executor for rank `part` of `parts`, with `shards`
    /// intra-part kernel shards (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when `parts` is zero or
    /// `part` is out of range.
    pub fn new(part: usize, parts: usize, shards: usize) -> Result<Self, CoreError> {
        if parts == 0 {
            return Err(CoreError::invalid_parameter(
                "federation needs at least one part",
            ));
        }
        if part >= parts {
            return Err(CoreError::invalid_parameter(format!(
                "federation rank {part} is out of range for {parts} part(s)"
            )));
        }
        let shards = shards.max(1);
        Ok(FederatedExecutor {
            plan: FederationPlan {
                part,
                node_bounds: vec![0; parts + 1],
                edge_bounds: vec![0; parts + 1],
                boundary: Vec::new(),
                crossing: Vec::new(),
                incident: Vec::new(),
            },
            pool: ShardPool::new(shards - 1),
            shards,
            part,
            parts,
            graph: None,
            loads_out: Vec::new(),
            flows_out: Vec::new(),
            batch: SendBatch::default(),
            local: Vec::new(),
            cursors: vec![0; parts + 1],
        })
    }

    /// This part's rank.
    pub fn part(&self) -> usize {
        self.part
    }

    /// Total number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Intra-part kernel shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The current partition plan.
    pub fn plan(&self) -> &FederationPlan {
        &self.plan
    }

    /// Rebinds the plan to `graph` if it changed (initial call, topology
    /// churn).
    pub(crate) fn ensure_plan(&mut self, graph: &Arc<Graph>) -> Result<(), CoreError> {
        if self.graph.as_ref().is_some_and(|g| Arc::ptr_eq(g, graph)) {
            return Ok(());
        }
        self.plan = FederationPlan::new(graph, self.part, self.parts)?;
        self.loads_out = Vec::with_capacity(self.plan.boundary.len());
        self.flows_out = Vec::with_capacity(self.plan.crossing.len());
        self.graph = Some(Arc::clone(graph));
        Ok(())
    }

    /// The owned edge range split into `shards` contiguous chunks: chunk `c`
    /// of the Phase A kernel fan-out.
    pub(crate) fn kernel_chunk(&self, c: usize) -> Range<usize> {
        let range = self.plan.edge_range();
        let len = range.end - range.start;
        let start = range.start + len * c / self.shards;
        let end = range.start + len * (c + 1) / self.shards;
        start..end
    }

    /// Merges this part's local deliveries with every foreign batch in
    /// **global edge order**, calling `deliver(receiver, task)` exactly as
    /// the sequential engine would have pushed its pending deliveries.
    /// Foreign entries whose receiver this part does not own are skipped
    /// (batches are broadcast to everyone).
    pub(crate) fn merge_deliveries(
        &mut self,
        batches: &[SendBatch],
        mut deliver: impl FnMut(NodeId, Task),
    ) {
        // Sequence `parts` is the local buffer; sequence `r < parts` is the
        // foreign batch from rank r (own rank's batch holds only foreign
        // receivers and is skipped wholesale via the ownership filter).
        self.cursors.fill(0);
        loop {
            let mut best: Option<(EdgeId, usize)> = None;
            #[allow(clippy::needless_range_loop)] // seq indexes two sequences, not one
            for seq in 0..=self.parts {
                let entries: &[(EdgeId, NodeId, Task)] = if seq == self.parts {
                    &self.local
                } else {
                    &batches[seq].tasks
                };
                // Skip foreign entries addressed to other parts.
                if seq != self.parts {
                    while let Some(&(_, receiver, _)) = entries.get(self.cursors[seq]) {
                        if self.plan.owns_node(receiver) {
                            break;
                        }
                        self.cursors[seq] += 1;
                    }
                }
                if let Some(&(edge, _, _)) = entries.get(self.cursors[seq]) {
                    if best.is_none_or(|(e, _)| edge < e) {
                        best = Some((edge, seq));
                    }
                }
            }
            let Some((_, seq)) = best else { break };
            let (_, receiver, task) = if seq == self.parts {
                self.local[self.cursors[seq]]
            } else {
                batches[seq].tasks[self.cursors[seq]]
            };
            self.cursors[seq] += 1;
            deliver(receiver, task);
        }
    }
}

impl std::fmt::Debug for FederatedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedExecutor")
            .field("part", &self.part)
            .field("parts", &self.parts)
            .field("shards", &self.shards)
            .finish()
    }
}

/// Writes exchanged `(node, bits)` load entries into a full-length load
/// vector, validating indices (a link is an external input).
pub(crate) fn apply_load_entries(
    loads: &mut [f64],
    entries: &[(NodeId, u64)],
) -> Result<(), CoreError> {
    for &(node, bits) in entries {
        let slot = loads.get_mut(node).ok_or_else(|| {
            CoreError::federation(format!("exchanged load names unknown node {node}"))
        })?;
        *slot = f64::from_bits(bits);
    }
    Ok(())
}

#[cfg(test)]
mod loopback {
    //! A shared-memory [`FederateLink`] for in-crate equivalence tests: all
    //! parts rendezvous on a hub, each exchange is an all-gather barrier.

    use super::*;
    use std::sync::{Condvar, Mutex};

    struct GatherCell<T> {
        state: Mutex<GatherState<T>>,
        cv: Condvar,
    }

    struct GatherState<T> {
        slots: Vec<Option<T>>,
        deposited: usize,
        taken: usize,
    }

    impl<T: Clone> GatherCell<T> {
        fn new(parts: usize) -> Self {
            GatherCell {
                state: Mutex::new(GatherState {
                    slots: (0..parts).map(|_| None).collect(),
                    deposited: 0,
                    taken: 0,
                }),
                cv: Condvar::new(),
            }
        }

        fn exchange(&self, rank: usize, own: T) -> Vec<T> {
            let mut state = self.state.lock().unwrap();
            let parts = state.slots.len();
            // Wait out a previous exchange that is still draining.
            while state.deposited == parts && state.taken < parts {
                state = self.cv.wait(state).unwrap();
            }
            state.slots[rank] = Some(own);
            state.deposited += 1;
            if state.deposited == parts {
                self.cv.notify_all();
            }
            while state.deposited < parts {
                state = self.cv.wait(state).unwrap();
            }
            let out: Vec<T> = state
                .slots
                .iter()
                .map(|s| s.as_ref().cloned().unwrap())
                .collect();
            state.taken += 1;
            if state.taken == parts {
                state.slots.iter_mut().for_each(|s| *s = None);
                state.deposited = 0;
                state.taken = 0;
                self.cv.notify_all();
            }
            out
        }
    }

    /// The rendezvous point shared by every part's [`LoopbackLink`].
    pub(crate) struct LoopbackHub {
        loads: GatherCell<Vec<(NodeId, u64)>>,
        flows: GatherCell<Vec<(EdgeId, u64, u64)>>,
        sends: GatherCell<SendBatch>,
    }

    impl LoopbackHub {
        pub(crate) fn new(parts: usize) -> Arc<Self> {
            Arc::new(LoopbackHub {
                loads: GatherCell::new(parts),
                flows: GatherCell::new(parts),
                sends: GatherCell::new(parts),
            })
        }

        pub(crate) fn link(self: &Arc<Self>, rank: usize) -> LoopbackLink {
            LoopbackLink {
                hub: Arc::clone(self),
                rank,
            }
        }
    }

    /// One part's handle onto a [`LoopbackHub`].
    pub(crate) struct LoopbackLink {
        hub: Arc<LoopbackHub>,
        rank: usize,
    }

    impl FederateLink for LoopbackLink {
        fn exchange_loads(
            &mut self,
            own: &[(NodeId, u64)],
        ) -> Result<Vec<(NodeId, u64)>, CoreError> {
            Ok(self
                .hub
                .loads
                .exchange(self.rank, own.to_vec())
                .into_iter()
                .flatten()
                .collect())
        }

        fn exchange_flows(
            &mut self,
            own: &[(EdgeId, u64, u64)],
        ) -> Result<Vec<(EdgeId, u64, u64)>, CoreError> {
            Ok(self
                .hub
                .flows
                .exchange(self.rank, own.to_vec())
                .into_iter()
                .flatten()
                .collect())
        }

        fn exchange_sends(&mut self, own: &SendBatch) -> Result<Vec<SendBatch>, CoreError> {
            Ok(self.hub.sends.exchange(self.rank, own.clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::loopback::LoopbackHub;
    use super::*;
    use crate::continuous::{Fos, Sos};
    use crate::discrete::{
        DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
    };
    use crate::load::InitialLoad;
    use crate::task::{Speeds, TaskId};
    use lb_graph::{generators, AlphaScheme};

    fn torus_graph() -> Graph {
        generators::torus(4, 4).unwrap()
    }

    #[test]
    fn plan_partitions_and_marks_the_boundary() {
        let g = torus_graph();
        for parts in [1, 2, 3, 4] {
            let mut node = 0;
            let mut edge = 0;
            for part in 0..parts {
                let plan = FederationPlan::new(&g, part, parts).unwrap();
                assert_eq!(plan.part(), part);
                assert_eq!(plan.parts(), parts);
                assert_eq!(plan.node_range().start, node);
                node = plan.node_range().end;
                assert_eq!(plan.edge_range().start, edge);
                edge = plan.edge_range().end;
                // Crossing edges are owned and face a remote endpoint.
                for &e in plan.crossing() {
                    let (u, v) = g.edges()[e];
                    assert!(plan.owns_node(u) && !plan.owns_node(v));
                }
                // Boundary nodes are owned and have a remote neighbour.
                for &b in plan.boundary() {
                    assert!(plan.owns_node(b));
                    assert!(g.neighbors(b).iter().any(|&w| !plan.owns_node(w)));
                }
                // Incident edges touch the part; sorted ascending.
                assert!(plan.incident().windows(2).all(|w| w[0] < w[1]));
                for &e in plan.incident() {
                    let (u, v) = g.edges()[e];
                    assert!(plan.owns_node(u) || plan.owns_node(v));
                }
            }
            assert_eq!(node, g.node_count());
            assert_eq!(edge, g.edge_count());
        }
        // One part: no boundary at all.
        let whole = FederationPlan::new(&g, 0, 1).unwrap();
        assert!(whole.boundary().is_empty());
        assert!(whole.crossing().is_empty());
        assert_eq!(whole.incident().len(), g.edge_count());
    }

    #[test]
    fn invalid_ranks_are_rejected() {
        let g = torus_graph();
        assert!(FederationPlan::new(&g, 0, 0).is_err());
        assert!(FederationPlan::new(&g, 2, 2).is_err());
        assert!(FederatedExecutor::new(3, 2, 1).is_err());
    }

    fn events_for(round: usize) -> RoundEvents {
        // A deterministic little arrival/completion stream exercising both
        // owned and foreign nodes from every part's perspective.
        let mut events = RoundEvents::default();
        if round.is_multiple_of(3) {
            events
                .arrivals
                .push((round % 16, Task::new(TaskId(10_000 + round as u64), 1)));
            events.arrivals.push((
                (round * 7) % 16,
                Task::new(TaskId(20_000 + round as u64), 1),
            ));
        }
        if round % 4 == 1 {
            events.completions.push(((round * 5) % 16, 2));
        }
        events
    }

    /// Runs `parts` federated copies of `engine` next to a sequential copy
    /// and asserts bit-identical owned state every round.
    fn assert_federated_equivalence<E>(make: impl Fn() -> E, parts: usize, shards: usize)
    where
        E: DynamicBalancer + FederatedEngine + Clone + Send,
    {
        let rounds = 12;
        let hub = LoopbackHub::new(parts);
        let mut sequential = make();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..parts)
                .map(|part| {
                    let hub = Arc::clone(&hub);
                    let mut engine = make();
                    scope.spawn(move || {
                        let mut link = hub.link(part);
                        let mut fed = FederatedExecutor::new(part, parts, shards).unwrap();
                        for round in 0..rounds {
                            let events = events_for(round);
                            if !events.is_empty() {
                                engine.apply_events_federated(&events, &mut fed).unwrap();
                            }
                            engine.step_federated(&mut fed, &mut link).unwrap();
                        }
                        (part, engine, fed)
                    })
                })
                .collect();
            for round in 0..rounds {
                let events = events_for(round);
                if !events.is_empty() {
                    sequential.apply_events(&events).unwrap();
                }
                sequential.step();
            }
            let expected = sequential.loads();
            for handle in handles {
                let (part, engine, fed) = handle.join().unwrap();
                let plan = fed.plan().clone();
                let loads = engine.loads();
                for i in plan.node_range() {
                    assert_eq!(
                        loads[i].to_bits(),
                        expected[i].to_bits(),
                        "part {part} node {i} load"
                    );
                }
                engine.assert_owned_state_matches(&sequential, &plan);
            }
        });
    }

    /// Test-only view over the two federated engines.
    trait FederatedEngine: Sized {
        fn step_federated(
            &mut self,
            fed: &mut FederatedExecutor,
            link: &mut dyn FederateLink,
        ) -> Result<(), CoreError>;
        fn apply_events_federated(
            &mut self,
            events: &RoundEvents,
            fed: &mut FederatedExecutor,
        ) -> Result<crate::discrete::EventReport, CoreError>;
        fn assert_owned_state_matches(&self, sequential: &Self, plan: &FederationPlan);
    }

    impl<A: crate::continuous::ContinuousProcess + Clone + Sync> FederatedEngine for FlowImitation<A> {
        fn step_federated(
            &mut self,
            fed: &mut FederatedExecutor,
            link: &mut dyn FederateLink,
        ) -> Result<(), CoreError> {
            FlowImitation::step_federated(self, fed, link)
        }
        fn apply_events_federated(
            &mut self,
            events: &RoundEvents,
            fed: &mut FederatedExecutor,
        ) -> Result<crate::discrete::EventReport, CoreError> {
            FlowImitation::apply_events_federated(self, events, fed)
        }
        fn assert_owned_state_matches(&self, sequential: &Self, plan: &FederationPlan) {
            let mine = self.capture();
            let theirs = sequential.capture();
            let (crate::snapshot::DiscreteState::Alg1(a), crate::snapshot::DiscreteState::Alg1(b)) =
                (&mine.discrete, &theirs.discrete)
            else {
                panic!("alg1 capture");
            };
            for i in plan.node_range() {
                assert_eq!(a.queues[i], b.queues[i], "queue {i}");
                assert_eq!(a.dummy[i], b.dummy[i], "dummy {i}");
                assert_eq!(
                    mine.twin.loads[i].to_bits(),
                    theirs.twin.loads[i].to_bits(),
                    "twin load {i}"
                );
            }
            for &e in plan.incident() {
                assert_eq!(a.discrete_flow[e], b.discrete_flow[e], "discrete flow {e}");
                assert_eq!(
                    mine.twin.cumulative_flow[e].to_bits(),
                    theirs.twin.cumulative_flow[e].to_bits(),
                    "cumulative flow {e}"
                );
            }
            assert_eq!(a.wmax, b.wmax);
            assert_eq!(mine.round, theirs.round);
        }
    }

    impl<A: crate::continuous::ContinuousProcess + Clone + Sync> FederatedEngine
        for RandomizedImitation<A>
    {
        fn step_federated(
            &mut self,
            fed: &mut FederatedExecutor,
            link: &mut dyn FederateLink,
        ) -> Result<(), CoreError> {
            RandomizedImitation::step_federated(self, fed, link)
        }
        fn apply_events_federated(
            &mut self,
            events: &RoundEvents,
            fed: &mut FederatedExecutor,
        ) -> Result<crate::discrete::EventReport, CoreError> {
            RandomizedImitation::apply_events_federated(self, events, fed)
        }
        fn assert_owned_state_matches(&self, sequential: &Self, plan: &FederationPlan) {
            let mine = self.capture();
            let theirs = sequential.capture();
            let (crate::snapshot::DiscreteState::Alg2(a), crate::snapshot::DiscreteState::Alg2(b)) =
                (&mine.discrete, &theirs.discrete)
            else {
                panic!("alg2 capture");
            };
            for i in plan.node_range() {
                assert_eq!(a.tokens[i], b.tokens[i], "tokens {i}");
                assert_eq!(a.dummy[i], b.dummy[i], "dummy {i}");
                assert_eq!(
                    mine.twin.loads[i].to_bits(),
                    theirs.twin.loads[i].to_bits(),
                    "twin load {i}"
                );
            }
            for &e in plan.incident() {
                assert_eq!(a.discrete_flow[e], b.discrete_flow[e], "discrete flow {e}");
                assert_eq!(
                    mine.twin.cumulative_flow[e].to_bits(),
                    theirs.twin.cumulative_flow[e].to_bits(),
                    "cumulative flow {e}"
                );
            }
            assert_eq!(mine.round, theirs.round);
        }
    }

    fn alg1_fos() -> FlowImitation<Fos> {
        let g = torus_graph();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo).unwrap()
    }

    fn alg1_sos() -> FlowImitation<Sos> {
        let g = torus_graph();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let sos = Sos::with_optimal_beta(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        FlowImitation::new(sos, &initial, speeds, TaskPicker::Fifo).unwrap()
    }

    fn alg2_fos() -> RandomizedImitation<Fos> {
        let g = torus_graph();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        RandomizedImitation::new(fos, &initial, speeds, 77).unwrap()
    }

    fn alg2_sos() -> RandomizedImitation<Sos> {
        let g = torus_graph();
        let speeds = Speeds::uniform(16);
        let initial = InitialLoad::single_source(16, 0, 64);
        let sos = Sos::with_optimal_beta(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        RandomizedImitation::new(sos, &initial, speeds, 77).unwrap()
    }

    #[test]
    fn alg1_fos_matches_sequential_across_parts() {
        for parts in [1, 2, 3] {
            assert_federated_equivalence(alg1_fos, parts, 1);
        }
        assert_federated_equivalence(alg1_fos, 2, 2);
    }

    #[test]
    fn alg1_sos_matches_sequential_across_parts() {
        for parts in [1, 2, 3] {
            assert_federated_equivalence(alg1_sos, parts, 1);
        }
        assert_federated_equivalence(alg1_sos, 2, 2);
    }

    #[test]
    fn alg2_fos_matches_sequential_across_parts() {
        for parts in [1, 2, 3] {
            assert_federated_equivalence(alg2_fos, parts, 1);
        }
        assert_federated_equivalence(alg2_fos, 2, 2);
    }

    #[test]
    fn alg2_sos_matches_sequential_across_parts() {
        for parts in [1, 2, 3] {
            assert_federated_equivalence(alg2_sos, parts, 1);
        }
        assert_federated_equivalence(alg2_sos, 2, 2);
    }
}
