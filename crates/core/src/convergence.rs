//! Balancing-time helpers.
//!
//! The paper's guarantees hold at the *continuous balancing time*
//! `T^A = min{t : ∀i, |x_i(t) − W·s_i/S| ≤ 1}`. Experiments need `T` both to
//! know how long to run the discrete processes and to report it alongside
//! discrepancies.

use crate::continuous::{ContinuousProcess, ContinuousRunner};

/// Result of measuring the balancing time of a continuous process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancingTime {
    /// The process reached the balanced state after this many rounds.
    Reached(usize),
    /// The process had not balanced after the given round budget.
    NotReached {
        /// The number of rounds that were executed.
        budget: usize,
    },
}

impl BalancingTime {
    /// The number of rounds to run a discrete experiment for: the balancing
    /// time if it was reached, otherwise the exhausted budget.
    pub fn rounds(&self) -> usize {
        match *self {
            BalancingTime::Reached(t) => t,
            BalancingTime::NotReached { budget } => budget,
        }
    }

    /// Returns `true` if the balanced state was reached within the budget.
    pub fn reached(&self) -> bool {
        matches!(self, BalancingTime::Reached(_))
    }
}

/// Measures the balancing time `T^A` of `process` started from `initial`,
/// i.e. the first round at which every node load is within `tolerance`
/// (paper: 1.0) of its balanced value, giving up after `max_rounds`.
///
/// # Examples
///
/// ```
/// use lb_core::continuous::Fos;
/// use lb_core::convergence::{continuous_balancing_time, BalancingTime};
/// use lb_core::Speeds;
/// use lb_graph::{generators, AlphaScheme};
///
/// let g = generators::hypercube(4)?;
/// let speeds = Speeds::uniform(16);
/// let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne)?;
/// let mut initial = vec![0.0; 16];
/// initial[0] = 160.0;
/// let t = continuous_balancing_time(fos, initial, 1.0, 10_000);
/// assert!(t.reached());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn continuous_balancing_time<A: ContinuousProcess>(
    process: A,
    initial: Vec<f64>,
    tolerance: f64,
    max_rounds: usize,
) -> BalancingTime {
    let mut runner = ContinuousRunner::new(process, initial);
    for t in 0..=max_rounds {
        if runner.is_balanced(tolerance) {
            return BalancingTime::Reached(t);
        }
        if t < max_rounds {
            runner.step();
        }
    }
    BalancingTime::NotReached { budget: max_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::Fos;
    use crate::task::Speeds;
    use lb_graph::{generators, AlphaScheme};

    #[test]
    fn balanced_input_has_zero_balancing_time() {
        let g = generators::cycle(4).unwrap();
        let speeds = Speeds::uniform(4);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let t = continuous_balancing_time(fos, vec![5.0; 4], 1.0, 100);
        assert_eq!(t, BalancingTime::Reached(0));
        assert_eq!(t.rounds(), 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The cycle balances slowly; 3 rounds is nowhere near enough.
        let n = 32;
        let g = generators::cycle(n).unwrap();
        let speeds = Speeds::uniform(n);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut initial = vec![0.0; n];
        initial[0] = (n * n) as f64;
        let t = continuous_balancing_time(fos, initial, 1.0, 3);
        assert!(!t.reached());
        assert_eq!(t.rounds(), 3);
    }

    #[test]
    fn hypercube_balances_within_reasonable_time() {
        let g = generators::hypercube(5).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let fos = Fos::new(g, &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
        let mut initial = vec![0.0; n];
        initial[0] = (n * 10) as f64;
        let t = continuous_balancing_time(fos, initial, 1.0, 10_000);
        assert!(t.reached());
        assert!(t.rounds() > 0 && t.rounds() < 1_000);
    }

    #[test]
    fn tighter_tolerance_takes_longer() {
        let g = generators::torus(4, 4).unwrap();
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let mk = || {
            Fos::new(
                generators::torus(4, 4).unwrap(),
                &speeds,
                AlphaScheme::MaxDegreePlusOne,
            )
            .unwrap()
        };
        let mut initial = vec![0.0; n];
        initial[0] = 1_000.0;
        let loose = continuous_balancing_time(mk(), initial.clone(), 2.0, 100_000);
        let tight = continuous_balancing_time(mk(), initial, 0.1, 100_000);
        assert!(loose.reached() && tight.reached());
        assert!(tight.rounds() >= loose.rounds());
        let _ = g;
    }
}
