//! Criterion bench for experiment E3 (Theorem 3): prints the quick-mode bound
//! check, then benchmarks Algorithm 1 with weighted tasks across the three
//! task-picking policies (the DESIGN.md ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::Speeds;
use lb_graph::{generators, AlphaScheme};
use lb_workloads::{pad_for_min_load, weighted_load, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_theorem3(c: &mut Criterion) {
    let report = lb_bench::experiments::theorem3::run(true);
    println!("{}", report.markdown);

    let graph = generators::hypercube(5).expect("hypercube builds");
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let w_max = 4u64;
    let speeds = Speeds::uniform(n);
    let mut rng = StdRng::seed_from_u64(5);
    let mut per_node = vec![0u64; n];
    per_node[0] = 200;
    let initial = pad_for_min_load(
        &weighted_load(&per_node, WeightModel::UniformRange { w_max }, &mut rng),
        &speeds,
        d * w_max,
    );

    let mut group = c.benchmark_group("theorem3_alg1_task_picker");
    group.sample_size(10);
    for picker in [
        TaskPicker::Fifo,
        TaskPicker::LargestFirst,
        TaskPicker::SmallestFirst,
    ] {
        group.bench_function(format!("{picker:?}"), |b| {
            b.iter(|| {
                let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne)
                    .expect("FOS constructs");
                let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), picker)
                    .expect("dimensions agree");
                alg1.run(200);
                alg1.metrics().max_min
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem3);
criterion_main!(benches);
