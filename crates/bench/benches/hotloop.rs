//! Hot-loop micro-bench: per-round step cost of Algorithm 1 (FIFO) on
//! hypercube / torus / random-regular topologies at n ≈ 1k, 10k and —
//! when `LB_BENCH_LARGE=1` — 100k nodes, so regressions in the buffer-reuse
//! kernel and the `TaskQueue` storage are caught in-repo.
//!
//! Run with: `cargo bench -p lb-bench --bench hotloop`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::harness::{standard_initial_load, GraphClass};
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::Speeds;
use lb_graph::{AlphaScheme, Graph};
use std::sync::Arc;

fn sizes() -> Vec<usize> {
    let mut sizes = vec![1_000, 10_000];
    if std::env::var("LB_BENCH_LARGE").is_ok_and(|v| v == "1") {
        sizes.push(100_000);
    }
    sizes
}

fn bench_hotloop(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_round_fifo");
    group.sample_size(20);
    for class in [
        GraphClass::Hypercube,
        GraphClass::Torus,
        GraphClass::Expander,
    ] {
        for target_n in sizes() {
            let graph: Arc<Graph> = class
                .build(target_n, 0xAB)
                .expect("bench families always build")
                .into();
            let n = graph.node_count();
            let d = graph.max_degree() as u64;
            let speeds = Speeds::uniform(n);
            let initial = standard_initial_load(n, 4, d);
            let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
                .expect("FOS constructs");
            let mut pristine = FlowImitation::new(fos, &initial, speeds, TaskPicker::Fifo)
                .expect("dimensions agree");
            // Warm up past the initial burst so buffers reach steady-state
            // capacity, then keep a snapshot: the measured loop rewinds to it
            // periodically so every measured round still moves tasks (a
            // balancer left running converges and would only exercise the
            // O(m) edge scan, hiding TaskQueue regressions).
            pristine.run(5);
            let reset_every = 50;
            let mut alg1 = pristine.clone();
            let mut rounds_since_reset = 0usize;
            group.bench_with_input(BenchmarkId::new(class.label(), n), &n, |b, _| {
                b.iter(|| {
                    if rounds_since_reset == reset_every {
                        alg1 = pristine.clone();
                        rounds_since_reset = 0;
                    }
                    alg1.step();
                    rounds_since_reset += 1;
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hotloop);
criterion_main!(benches);
