//! Criterion bench for experiment E2 (Table 2): prints the quick-mode table
//! once, then benchmarks one representative matching-model cell per
//! algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_bench::harness::{
    measure_balancing_time, run_once, standard_initial_load, ContinuousModel, Discretizer,
    GraphClass, RunConfig,
};
use lb_core::Speeds;

fn bench_table2(c: &mut Criterion) {
    let report = lb_bench::experiments::table2::run(true);
    println!("{}", report.markdown);

    let graph: std::sync::Arc<lb_graph::Graph> = GraphClass::Hypercube
        .build(64, 1)
        .expect("hypercube builds")
        .into();
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);
    let initial = standard_initial_load(n, 32, graph.max_degree() as u64);
    let model = ContinuousModel::PeriodicMatching;
    let rounds = measure_balancing_time(&graph, &speeds, &initial, model, 50_000)
        .expect("matching model constructs")
        .rounds();

    let mut group = c.benchmark_group("table2_cell_hypercube64_periodic");
    group.sample_size(10);
    for discretizer in Discretizer::TABLE2 {
        group.bench_function(discretizer.label(), |b| {
            b.iter(|| {
                run_once(&RunConfig {
                    graph: graph.clone(),
                    speeds: speeds.clone(),
                    initial: initial.clone(),
                    model,
                    discretizer,
                    rounds,
                    seed: 1,
                })
                .expect("supported combination")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
