//! Micro-benchmarks of the substrate: one continuous FOS round, one Algorithm
//! 1 round, one Algorithm 2 round, spectral estimation and matching
//! generation. These are the building blocks every experiment pays for, so
//! their per-operation cost is tracked separately from the table-level
//! benches. The remaining experiment artefacts (E5–E8) are also regenerated
//! here in quick mode so `cargo bench` covers every artefact in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::continuous::{ContinuousRunner, Fos};
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RandomizedImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds};
use lb_graph::{
    generators, random_maximal_matching, AlphaScheme, DiffusionMatrix, PeriodicMatchings,
    PowerIterationOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_remaining_experiments() {
    for report in [
        lb_bench::experiments::trajectory::run(true),
        lb_bench::experiments::heterogeneous::run(true),
        lb_bench::experiments::dummy_ablation::run(true),
        lb_bench::experiments::fos_vs_sos::run(true),
    ] {
        println!("{}", report.markdown);
    }
}

fn bench_rounds(c: &mut Criterion) {
    print_remaining_experiments();

    let mut group = c.benchmark_group("single_round");
    group.sample_size(20);
    for dim in [6u32, 8, 10] {
        let graph = generators::hypercube(dim).expect("hypercube builds");
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let mut counts = vec![dim as u64; n];
        counts[0] += 32 * n as u64;
        let initial = InitialLoad::from_token_counts(counts);

        group.bench_with_input(BenchmarkId::new("continuous_fos", n), &n, |b, _| {
            let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            let mut runner = ContinuousRunner::new(fos, initial.load_vector_f64());
            b.iter(|| {
                runner.step();
            });
        });
        group.bench_with_input(BenchmarkId::new("alg1_round", n), &n, |b, _| {
            let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            let mut alg1 =
                FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).unwrap();
            b.iter(|| alg1.step());
        });
        group.bench_with_input(BenchmarkId::new("alg2_round", n), &n, |b, _| {
            let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).unwrap();
            let mut alg2 = RandomizedImitation::new(fos, &initial, speeds.clone(), 3).unwrap();
            b.iter(|| alg2.step());
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let graph = generators::torus(32, 32).expect("torus builds");
    let matrix = DiffusionMatrix::uniform(&graph, AlphaScheme::MaxDegreePlusOne).unwrap();

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("second_eigenvalue_torus_1024", |b| {
        b.iter(|| {
            lb_graph::spectral::second_eigenvalue(
                &graph,
                &matrix,
                PowerIterationOptions {
                    max_iterations: 2_000,
                    tolerance: 1e-8,
                },
            )
        })
    });
    group.bench_function("greedy_edge_coloring_torus_1024", |b| {
        b.iter(|| PeriodicMatchings::greedy_edge_coloring(&graph))
    });
    group.bench_function("random_maximal_matching_torus_1024", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| random_maximal_matching(&graph, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_substrate);
criterion_main!(benches);
