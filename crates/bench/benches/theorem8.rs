//! Criterion bench for experiment E4 (Theorem 8): prints the quick-mode
//! scaling check, then benchmarks Algorithm 2 across degrees to expose the
//! cost of the per-edge randomized rounding as the graph densifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_bench::harness::{run_once, ContinuousModel, Discretizer, RunConfig};
use lb_core::{InitialLoad, Speeds};
use lb_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_theorem8(c: &mut Criterion) {
    let report = lb_bench::experiments::theorem8::run(true);
    println!("{}", report.markdown);

    let mut group = c.benchmark_group("theorem8_alg2_by_degree");
    group.sample_size(10);
    for d in [4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(d as u64);
        let graph: std::sync::Arc<lb_graph::Graph> = generators::random_regular(128, d, &mut rng)
            .expect("regular graph builds")
            .into();
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let mut counts = vec![8u64 + d as u64; n];
        counts[0] += 32 * n as u64;
        let initial = InitialLoad::from_token_counts(counts);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                run_once(&RunConfig {
                    graph: graph.clone(),
                    speeds: speeds.clone(),
                    initial: initial.clone(),
                    model: ContinuousModel::Fos,
                    discretizer: Discretizer::Alg2,
                    rounds: 100,
                    seed: 2,
                })
                .expect("supported combination")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem8);
criterion_main!(benches);
