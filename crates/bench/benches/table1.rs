//! Criterion bench for experiment E1 (Table 1): prints the quick-mode table
//! once, then benchmarks one representative cell per algorithm (Algorithm 1,
//! Algorithm 2 and the round-down baseline on a torus) so regressions in the
//! discretizers' per-round cost are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use lb_bench::harness::{
    measure_balancing_time, run_once, standard_initial_load, ContinuousModel, Discretizer,
    GraphClass, RunConfig,
};
use lb_core::Speeds;

fn bench_table1(c: &mut Criterion) {
    // Regenerate the table (quick mode) so `cargo bench` output contains the
    // reproduced rows.
    let report = lb_bench::experiments::table1::run(true);
    println!("{}", report.markdown);

    let graph: std::sync::Arc<lb_graph::Graph> =
        GraphClass::Torus.build(64, 1).expect("torus builds").into();
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);
    let initial = standard_initial_load(n, 32, graph.max_degree() as u64);
    let rounds = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 20_000)
        .expect("FOS constructs")
        .rounds();

    let mut group = c.benchmark_group("table1_cell_torus64");
    group.sample_size(10);
    for discretizer in [Discretizer::Alg1, Discretizer::Alg2, Discretizer::RoundDown] {
        group.bench_function(discretizer.label(), |b| {
            b.iter(|| {
                run_once(&RunConfig {
                    graph: graph.clone(),
                    speeds: speeds.clone(),
                    initial: initial.clone(),
                    model: ContinuousModel::Fos,
                    discretizer,
                    rounds,
                    seed: 1,
                })
                .expect("supported combination")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
