//! Scenario driver: binds a [`Scenario`] spec to a dynamic flow-imitation
//! engine and runs it, streaming per-round metric samples and producing a
//! fully deterministic JSON result document.
//!
//! Everything downstream of the spec is seeded: graph construction, speed
//! assignment, the initial distribution and the arrival stream all derive
//! sub-seeds from one master seed, so the same scenario file and seed produce
//! **bit-identical** result JSON across runs and machines (the document
//! contains no timings). `tests/dynamic_scenarios.rs` pins this.
//!
//! Every way of driving a run goes through one builder, [`Session`]:
//! construct it from a scenario ([`Session::from_scenario`]), a recorded
//! trace ([`Session::from_trace`]), a live byte stream
//! ([`Session::from_stream`]) or a checkpoint snapshot
//! ([`Session::from_snapshot`]); layer on overrides and side outputs
//! (`.seed()`, `.shards()`, `.producer()`, `.record()`, `.checkpoint()`,
//! `.stream()`, `.merged()`); then [`Session::run`]. Failures come back as
//! the typed [`crate::error::BenchError`]. The former free functions
//! (`run_scenario` … `resume_replay`) remain as deprecated shims — the
//! migration table lives in the [crate docs](crate).
//!
//! Events can reach the engine six ways, all bit-identical for the same
//! scenario and seed (`tests/ingest_equivalence.rs`,
//! `tests/merge_equivalence.rs`, `tests/serve_faults.rs`):
//!
//! * **sync** ([`Producer::Scenario`]) — the driver materialises each
//!   round's batch inline from the scenario's event stream;
//! * **channel** ([`Producer::Channel`]) — a producer thread streams the
//!   same batches through the bounded SPSC channel of [`lb_core::ingest`];
//! * **merge** ([`Producer::Merge`]) — N producer threads each stream a
//!   contiguous per-round slice of the same batches over their own channel,
//!   k-way merged back into round order by [`lb_core::ingest::merge`];
//! * **trace replay** ([`Session::from_trace`]) — the batches come from a
//!   recorded trace file ([`lb_workloads::trace`]) through the channel;
//! * **byte-stream replay** ([`Session::from_stream`]) — the batches are
//!   parsed incrementally from a live byte stream ([`lb_workloads::source`]:
//!   a growing file tail or any pipe/socket reader) on the producer thread;
//! * **external merge** ([`Session::merged`]) — the driver consumes an
//!   externally built [`MergeSession`] whose feeds are produced elsewhere —
//!   e.g. the socket connections of [`crate::serve`], registered on the fly
//!   through a [`lb_core::ingest::merge::FeedRegistrar`].
//!
//! Any run can be recorded ([`Session::record`]) and replayed later.
//! Channel-fed runs additionally report backpressure metrics (blocked
//! sends/duration per feed, high-water depth) through
//! [`ScenarioOutcome::ingest`] — out of band, because those counters are
//! timing-dependent while the result document is pinned byte-identical.
//!
//! Any run can also be **checkpointed** ([`Session::checkpoint`]): a
//! rotating [`lb_core::snapshot`] of the full engine state — plus the
//! effective scenario and the trajectory accumulated so far — is atomically
//! replaced every `checkpoint_every` rounds, at the between-rounds boundary
//! (the one quiescent point the ingest contract defines).
//! [`Session::from_snapshot`] continues from the newest checkpoint and
//! emits result JSON **byte-identical** to the uninterrupted run's — at any
//! shard count (resume overrides the executor, never the recorded scenario,
//! so a snapshot doubles as a migration unit), through any producer mode,
//! and with `--record` still producing the complete trace (the drained
//! prefix is re-recorded). [`Session::stream`] on a snapshot session does
//! the same for byte-stream feeds and composes with
//! [`lb_workloads::TraceSource`] checkpoints: a source resumed past the
//! applied prefix simply yields empty batches for the fast-forwarded
//! rounds.

use lb_analysis::Json;
use lb_core::continuous::{Fos, Sos};
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::federate::FederateLink;
use lb_core::ingest::merge::MergeSession;
use lb_core::ingest::{self, ChannelMetrics, IngestSession};
use lb_core::snapshot::{self, Snapshot};
use lb_core::{metrics, CoreError, FederatedExecutor, InitialLoad, ShardedExecutor, Speeds};
use lb_graph::{AlphaScheme, Graph, GraphDelta};
use lb_workloads::{
    pad_for_min_load, AlgorithmSpec, ChurnKind, ModelSpec, PadSpec, RoundSource, Scenario,
    ScenarioEvents, Trace, TraceWriter,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::BenchError;
use crate::harness::GraphClass;

/// Diffusion matrix scheme used by every scenario engine (the harness
/// default).
const SCHEME: AlphaScheme = AlphaScheme::MaxDegreePlusOne;

/// Sub-seed offsets, so the master seed decorrelates its consumers.
const GRAPH_SEED_OFFSET: u64 = 0x6EA9;
const SPEEDS_SEED_OFFSET: u64 = 0x0059_EED5;
const INITIAL_SEED_OFFSET: u64 = 0x1417;

/// One sampled point of a scenario trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSample {
    /// Completed rounds when the sample was taken (0 = initial state).
    pub round: usize,
    /// Node count at sample time (changes across resize churn).
    pub nodes: usize,
    /// Max-min makespan discrepancy (dummy load included, as in the paper).
    pub max_min: f64,
    /// Max-avg makespan discrepancy.
    pub max_avg: f64,
    /// Total real (workload) task weight in the system.
    pub real_weight: f64,
    /// Total dummy load in circulation.
    pub dummy_load: u64,
    /// Cumulative weight arrived via dynamic events.
    pub arrived_weight: u64,
    /// Cumulative weight completed via dynamic events.
    pub completed_weight: u64,
}

impl RoundSample {
    /// JSON form used in trajectory arrays.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::from(self.round)),
            ("nodes", Json::from(self.nodes)),
            ("max_min", Json::from(self.max_min)),
            ("max_avg", Json::from(self.max_avg)),
            ("real_weight", Json::from(self.real_weight)),
            ("dummy_load", Json::from(self.dummy_load)),
            ("arrived_weight", Json::from(self.arrived_weight)),
            ("completed_weight", Json::from(self.completed_weight)),
        ])
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The effective scenario (with the resolved seed).
    pub scenario: Scenario,
    /// Engine name, e.g. `"alg1(fos)"`.
    pub engine: String,
    /// Sampled trajectory (round 0, every `sample_every` rounds, final round).
    pub trajectory: Vec<RoundSample>,
    /// Total dummy load drawn from the infinite source over the run.
    pub dummy_created: u64,
    /// Ingestion report for channel-fed runs (`None` on the sync path):
    /// per-feed batch/event totals and backpressure metrics. Deliberately
    /// **not** part of [`to_json`](ScenarioOutcome::to_json) — the counters
    /// are timing-dependent, while the result document is pinned
    /// byte-identical across producer modes; emit this out of band (stderr,
    /// `--ingest-stats`).
    pub ingest: Option<Json>,
}

impl ScenarioOutcome {
    /// The final sample.
    ///
    /// # Panics
    ///
    /// Panics on a federated *worker* outcome — the one outcome whose
    /// trajectory is empty, because the assembled document lives on the
    /// coordinator ([`Session::federated`]).
    pub fn last(&self) -> &RoundSample {
        // lint: allow(R03, every sampling driver pushes round 0 first; only federated workers return empty and theirs documents the panic)
        self.trajectory.last().expect("trajectory is never empty")
    }

    /// Renders the deterministic result document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("engine", Json::from(self.engine.clone())),
            (
                "trajectory",
                Json::Arr(self.trajectory.iter().map(RoundSample::to_json).collect()),
            ),
            (
                "final",
                Json::obj([
                    ("sample", self.last().to_json()),
                    ("dummy_created", Json::from(self.dummy_created)),
                ]),
            ),
        ])
    }
}

/// Resolves a scenario `topology.family` string to a harness graph class.
///
/// # Errors
///
/// Returns a message listing the known families for unknown names.
pub fn family_class(family: &str) -> Result<GraphClass, String> {
    match family {
        "arbitrary" => Ok(GraphClass::Arbitrary),
        "expander" => Ok(GraphClass::Expander),
        "hypercube" => Ok(GraphClass::Hypercube),
        "torus" => Ok(GraphClass::Torus),
        "ring_of_cliques" => Ok(GraphClass::RingOfCliques),
        "cycle" => Ok(GraphClass::Cycle),
        other => Err(format!(
            "unknown topology family {other:?} \
             (want arbitrary|expander|hypercube|torus|ring_of_cliques|cycle)"
        )),
    }
}

/// The four concrete engines a scenario can request. The enum (rather than a
/// `Box<dyn DynamicBalancer>`) exists because topology churn must rebuild the
/// concrete continuous process type. (`pub(crate)`: the federated driver in
/// [`crate::federate`] steps the same engines over a socket link.)
pub(crate) enum Engine {
    Alg1Fos(FlowImitation<Fos>),
    Alg1Sos(FlowImitation<Sos>),
    Alg2Fos(RandomizedImitation<Fos>),
    Alg2Sos(RandomizedImitation<Sos>),
}

/// Applies `$body` to the engine inside any variant.
macro_rules! with_engine {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            Engine::Alg1Fos($e) => $body,
            Engine::Alg1Sos($e) => $body,
            Engine::Alg2Fos($e) => $body,
            Engine::Alg2Sos($e) => $body,
        }
    };
}

impl Engine {
    pub(crate) fn build(
        scenario: &Scenario,
        graph: Arc<Graph>,
        speeds: &Speeds,
        initial: &InitialLoad,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(match (scenario.algorithm, scenario.model) {
            (AlgorithmSpec::Alg1, ModelSpec::Fos) => Engine::Alg1Fos(FlowImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg1, ModelSpec::Sos) => Engine::Alg1Sos(FlowImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Fos) => Engine::Alg2Fos(RandomizedImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Sos) => Engine::Alg2Sos(RandomizedImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
        })
    }

    pub(crate) fn name(&self) -> &str {
        with_engine!(self, e => e.name())
    }

    /// One round: sequential, or sharded across the executor's workers.
    /// Trajectories are bit-identical either way (the sharding contract).
    pub(crate) fn step(&mut self, exec: Option<&mut ShardedExecutor>) {
        match exec {
            Some(exec) => with_engine!(self, e => e.step_sharded(exec)),
            None => with_engine!(self, e => e.step()),
        }
    }

    pub(crate) fn apply_events(&mut self, events: &RoundEvents) -> Result<(), CoreError> {
        with_engine!(self, e => e.apply_events(events).map(|_| ()))
    }

    pub(crate) fn loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.loads())
    }

    pub(crate) fn real_loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.real_loads())
    }

    pub(crate) fn dummy_load(&self) -> u64 {
        with_engine!(self, e => e.dummy_load())
    }

    pub(crate) fn dummy_created(&self) -> u64 {
        with_engine!(self, e => e.dummy_created())
    }

    /// Per-node dummy holdings (see the engines' `dummy_holdings`): a
    /// federated sampler sums its owned slice only.
    pub(crate) fn dummy_holdings(&self) -> &[u64] {
        with_engine!(self, e => e.dummy_holdings())
    }

    pub(crate) fn speeds(&self) -> &Speeds {
        with_engine!(self, e => e.speeds())
    }

    pub(crate) fn node_count(&self) -> usize {
        with_engine!(self, e => e.graph().node_count())
    }

    pub(crate) fn arrived_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::arrived_weight(e))
    }

    pub(crate) fn completed_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::completed_weight(e))
    }

    /// Captures the full engine state at a between-rounds boundary.
    pub(crate) fn capture(&self) -> snapshot::EngineState {
        with_engine!(self, e => e.capture())
    }

    /// Restores captured state into a freshly rebuilt engine (same
    /// algorithm, same topology epoch) — the seams validate both.
    pub(crate) fn restore(
        &mut self,
        state: &snapshot::EngineState,
    ) -> Result<(), snapshot::SnapshotError> {
        with_engine!(self, e => e.restore(state))
    }

    /// Rebuilds the continuous process on `graph` and swaps it in (topology
    /// churn). `speeds` must already follow the carry-over rule (truncate /
    /// pad with unit speeds), matching what `replace_topology` re-derives.
    ///
    /// With `delta: Some(_)` — a same-size rewire whose edge difference from
    /// the engine's *current* graph is known — the continuous process is
    /// patched incrementally (`O(Δ)` recompute instead of an `O(m)` matrix
    /// re-derivation, and SOS skips the spectral re-estimate entirely when
    /// the delta is empty). The patched process is bit-identical to the
    /// full rebuild, so both paths yield the same trajectory; resume
    /// fast-forward always takes the `None` path because its engine may be
    /// several churn epochs behind the entry it applies.
    pub(crate) fn replace_topology(
        &mut self,
        graph: Arc<Graph>,
        speeds: &Speeds,
        delta: Option<&GraphDelta>,
    ) -> Result<(), CoreError> {
        match self {
            Engine::Alg1Fos(e) => {
                let process = match delta {
                    Some(d) => e.continuous().process().patched(graph, d)?,
                    None => Fos::new(graph, speeds, SCHEME)?,
                };
                e.replace_topology(process)
            }
            Engine::Alg1Sos(e) => {
                let process = match delta {
                    Some(d) => e.continuous().process().patched(graph, d)?,
                    None => Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                };
                e.replace_topology(process)
            }
            Engine::Alg2Fos(e) => {
                let process = match delta {
                    Some(d) => e.continuous().process().patched(graph, d)?,
                    None => Fos::new(graph, speeds, SCHEME)?,
                };
                e.replace_topology(process)
            }
            Engine::Alg2Sos(e) => {
                let process = match delta {
                    Some(d) => e.continuous().process().patched(graph, d)?,
                    None => Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                };
                e.replace_topology(process)
            }
        }
    }

    /// One federated round: this part's slice of the engine, with the three
    /// barrier exchanges running over `link`. Bit-identical to [`Engine::step`]
    /// for every part count (the federation contract).
    pub(crate) fn step_federated(
        &mut self,
        fed: &mut FederatedExecutor,
        link: &mut dyn FederateLink,
    ) -> Result<(), CoreError> {
        with_engine!(self, e => e.step_federated(fed, link))
    }

    /// Applies one round's event batch on this part: `wmax` updates follow
    /// every arrival (all parts see the full batch), queue/token mutations
    /// only the owned ones.
    pub(crate) fn apply_events_federated(
        &mut self,
        events: &RoundEvents,
        fed: &mut FederatedExecutor,
    ) -> Result<(), CoreError> {
        with_engine!(self, e => e.apply_events_federated(events, fed).map(|_| ()))
    }
}

/// Speeds after churn: entries carry over index-by-index, removed nodes drop
/// theirs, new nodes get the unit speed (the engine's carry-over rule).
fn carried_speeds(current: &Speeds, n: usize) -> Speeds {
    let mut values = current.as_slice().to_vec();
    values.resize(n, 1);
    // lint: allow(R03, carried values validated positive at admission)
    Speeds::new(values).expect("carried speeds stay positive")
}

/// How a run's events reach the engine. Both modes apply the same batches at
/// the same round boundaries, so trajectories are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Producer {
    /// The synchronous path: the driver materialises each round's batch
    /// inline from the scenario's event stream (the default).
    #[default]
    Scenario,
    /// The async ingestion path: a producer thread generates the same
    /// stream and feeds it through a bounded SPSC channel
    /// ([`lb_core::ingest`]); the driver drains one round's batch between
    /// rounds.
    Channel {
        /// Maximum in-flight batches (how far the producer may run ahead).
        capacity: usize,
    },
    /// The multi-producer path: `feeds` producer threads each generate the
    /// stream and send a contiguous per-round slice of every batch over
    /// their own bounded channel; the consumer side k-way merges the slices
    /// back into one round-ordered stream ([`lb_core::ingest::merge`]).
    /// Coalescing in feed index order reconstructs each batch exactly, so
    /// results stay byte-identical to the sync path.
    Merge {
        /// Number of producer feeds (1..=[`MAX_MERGE_FEEDS`]).
        feeds: usize,
        /// Per-feed channel capacity.
        capacity: usize,
    },
}

/// Default channel capacity for [`Producer::Channel`] and trace/stream
/// replay sessions.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 32;

/// Upper bound on [`Producer::Merge`] feeds: each feed is an OS thread, so
/// an absurd count must be a validation error, not a `thread::spawn` abort.
pub const MAX_MERGE_FEEDS: usize = 64;

/// Run configuration carried by a [`Session`] (and by the deprecated
/// `run_scenario_with` shim).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Replaces the spec's seed (the CLI's `--seed`); the effective value is
    /// recorded in the outcome.
    pub seed: Option<u64>,
    /// Replaces the spec's shard count (the CLI's `--shards` /
    /// `LB_BENCH_SHARDS`). Shard count never changes the result — only
    /// wall-clock time.
    pub shards: Option<usize>,
    /// How events reach the engine.
    pub producer: Producer,
    /// Record the applied event stream to this trace file
    /// ([`lb_workloads::trace`]); the trace embeds the effective scenario
    /// and replays bit-identically via [`Session::from_trace`]. Recording
    /// never perturbs the run itself.
    pub record: Option<PathBuf>,
    /// Write a rotating engine snapshot ([`lb_core::snapshot`]) to this
    /// path every [`checkpoint_every`](RunOptions::checkpoint_every)
    /// rounds. Each write is atomic (temp file → fsync → rename), so the
    /// file always holds the newest *complete* checkpoint — a crash
    /// mid-write leaves the previous one intact. Resume with
    /// [`Session::from_snapshot`]. Checkpointing never perturbs the run
    /// itself.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in completed rounds; required with (and only
    /// meaningful alongside) [`checkpoint`](RunOptions::checkpoint).
    pub checkpoint_every: Option<usize>,
}

/// The JSON form of one feed's ingestion stats.
fn feed_stats_json(
    feed: usize,
    batches: u64,
    events: u64,
    drained: bool,
    channel: ChannelMetrics,
) -> Json {
    Json::obj([
        ("feed", Json::from(feed)),
        ("batches", Json::from(batches)),
        ("events", Json::from(events)),
        ("drained", Json::from(drained)),
        ("blocked_sends", Json::from(channel.blocked_sends)),
        ("blocked_nanos", Json::from(channel.blocked_nanos)),
        ("high_water", Json::from(channel.high_water)),
    ])
}

/// Where the driver's per-round batches come from.
enum EventSource {
    /// Inline generation from the scenario stream.
    Sync(ScenarioEvents),
    /// A producer thread on the other end of the ingest channel.
    Channel {
        session: IngestSession,
        producer: Option<JoinHandle<Result<(), String>>>,
    },
    /// N producer threads, k-way merged on the consumer side.
    Merge {
        session: MergeSession,
        producers: Vec<JoinHandle<Result<(), String>>>,
    },
}

impl EventSource {
    /// Fills `out` with the batch for `round` (empty when the round has no
    /// events). Channel/merge ordering violations are stream-protocol
    /// errors.
    fn fill_round(&mut self, round: usize, out: &mut RoundEvents) -> Result<(), BenchError> {
        match self {
            EventSource::Sync(stream) => {
                stream.fill_round(round, out);
                Ok(())
            }
            EventSource::Channel { session, .. } => session
                .fill_round(round as u64, out)
                .map_err(|err| BenchError::protocol(err.to_string())),
            EventSource::Merge { session, .. } => session
                .fill_round(round as u64, out)
                .map_err(|err| BenchError::protocol(err.to_string())),
        }
    }

    /// Propagates topology churn to the source. Only the inline stream needs
    /// telling — channel producers follow a precomputed speeds schedule.
    fn set_topology(&mut self, speeds: &Speeds) {
        if let EventSource::Sync(stream) = self {
            stream.set_topology(speeds);
        }
    }

    /// Joins one producer thread: a panic becomes a typed error (the panic
    /// already released the channel via `Drop`, so the run itself degraded
    /// to an event-free remainder instead of deadlocking), and a producer's
    /// own error — e.g. a torn trace tail — propagates verbatim, classified
    /// I/O-versus-protocol by its message shape.
    fn join_producer(handle: JoinHandle<Result<(), String>>) -> Result<(), BenchError> {
        handle
            .join()
            .map_err(|_| BenchError::run("ingest producer thread panicked"))?
            .map_err(BenchError::from_source)
    }

    /// Tears the source down: snapshots the ingestion stats, drops the
    /// consumer side (any still-blocked producer send fails immediately, so
    /// this never blocks on a full queue), then joins every producer thread
    /// and propagates the first failure.
    fn finish(self) -> Result<Option<Json>, BenchError> {
        match self {
            EventSource::Sync(_) => Ok(None),
            EventSource::Channel { session, producer } => {
                let stats = Json::obj([
                    ("producer", Json::from("channel")),
                    (
                        "feeds",
                        Json::Arr(vec![feed_stats_json(
                            0,
                            session.batches(),
                            session.events(),
                            session.ended(),
                            session.metrics(),
                        )]),
                    ),
                ]);
                drop(session);
                producer.map(Self::join_producer).transpose()?;
                Ok(Some(stats))
            }
            EventSource::Merge { session, producers } => {
                let feeds = session
                    .feed_reports()
                    .into_iter()
                    .enumerate()
                    .map(|(feed, report)| {
                        feed_stats_json(
                            feed,
                            report.batches,
                            report.events,
                            report.drained,
                            report.channel,
                        )
                    })
                    .collect();
                let stats = Json::obj([
                    ("producer", Json::from("merge")),
                    ("feeds", Json::Arr(feeds)),
                ]);
                drop(session);
                let mut failure = None;
                for handle in producers {
                    if let Err(err) = Self::join_producer(handle) {
                        failure.get_or_insert(err);
                    }
                }
                match failure {
                    Some(err) => Err(err),
                    None => Ok(Some(stats)),
                }
            }
        }
    }
}

/// One precomputed churn event: the materialised topology the engine lands
/// on, the speeds it carries, and — for same-size edge churn — the edge
/// delta from the *previous* step's graph (the initial world graph for the
/// first step).
#[derive(Debug, Clone)]
pub(crate) struct ChurnStep {
    /// The round before which the event fires.
    pub(crate) round: usize,
    /// The topology after this event (always materialised, so resume can
    /// jump straight to any epoch without replaying deltas).
    pub(crate) graph: Arc<Graph>,
    /// Carried speeds on that topology.
    pub(crate) speeds: Speeds,
    /// Edge difference from the previous step's graph, when the event is a
    /// same-size edge patch. Only valid when steps are applied in sequence:
    /// resume fast-forward applies one arbitrary step onto the original
    /// world graph and must take the full-rebuild path instead.
    pub(crate) delta: Option<GraphDelta>,
}

/// The churn plan, precomputed once per run: for every churn event, the
/// rebuilt topology and the speeds the engine will carry on it. The driver
/// consumes the graphs — each churn graph is built exactly once, whichever
/// producer mode runs — and a channel producer follows the speeds without
/// hearing back from the engine thread. (Graph generators are seeded per
/// event, so building up front is bit-identical to building lazily.)
///
/// `rewire` and explicit `delta` events carry the edge difference from the
/// previous epoch's graph so the engine can patch its process in `O(Δ)`;
/// `resize` events keep the full-rebuild path (`delta: None`).
pub(crate) fn churn_schedule(
    class: GraphClass,
    scenario: &Scenario,
    initial_graph: &Arc<Graph>,
    initial: &Speeds,
) -> Result<Vec<ChurnStep>, String> {
    let mut schedule = Vec::with_capacity(scenario.churn.len());
    let mut current = initial.clone();
    let mut current_graph = Arc::clone(initial_graph);
    for event in &scenario.churn {
        let (graph, delta): (Arc<Graph>, Option<GraphDelta>) = match &event.kind {
            // Rewire keeps the current size; the speeds length tracks the
            // engine's node count exactly.
            ChurnKind::Rewire { seed } => {
                let graph: Arc<Graph> = class
                    .build(current.len(), *seed)
                    .map_err(|err| format!("churn at round {}: {err}", event.round))?
                    .into();
                let delta = current_graph
                    .delta_to(&graph)
                    .map_err(|err| format!("churn at round {}: {err}", event.round))?;
                (graph, Some(delta))
            }
            ChurnKind::Resize { target_n, seed } => {
                let graph: Arc<Graph> = class
                    .build(*target_n, *seed)
                    .map_err(|err| format!("churn at round {}: {err}", event.round))?
                    .into();
                (graph, None)
            }
            ChurnKind::Delta { add, remove } => {
                let delta = GraphDelta::new(
                    current_graph.node_count(),
                    add.iter().copied(),
                    remove.iter().copied(),
                )
                .and_then(|delta| Ok((current_graph.apply_delta(&delta)?, delta)))
                .map_err(|err| format!("churn at round {}: {err}", event.round))?;
                let (graph, delta) = delta;
                (Arc::new(graph), Some(delta))
            }
        };
        current = carried_speeds(&current, graph.node_count());
        current_graph = Arc::clone(&graph);
        schedule.push(ChurnStep {
            round: event.round,
            graph,
            speeds: current.clone(),
            delta,
        });
    }
    Ok(schedule)
}

/// Spawns the producer thread for [`Producer::Channel`]: generates the
/// scenario's event stream round by round and sends each non-empty batch
/// through the channel, recycling drained buffers so steady-state production
/// allocates nothing.
fn spawn_scenario_producer(
    mut stream: ScenarioEvents,
    schedule: Vec<(usize, Speeds)>,
    rounds: usize,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        let mut schedule = schedule.into_iter().peekable();
        let mut spare: Option<RoundEvents> = None;
        for round in 0..rounds {
            while schedule.peek().is_some_and(|(r, _)| *r == round) {
                // lint: allow(R03, the peek in the loop condition proves Some)
                let (_, speeds) = schedule.next().expect("peeked entry");
                stream.set_topology(&speeds);
            }
            let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
            stream.fill_round(round, &mut batch);
            if batch.is_empty() {
                spare = Some(batch);
            } else if tx.send(round as u64, batch).is_err() {
                return Ok(()); // consumer hung up; the driver reports its own error
            }
        }
        Ok(())
    });
    (IngestSession::new(rx), handle)
}

/// The contiguous slice of a `len`-element event list that feed `feed` of
/// `feeds` carries. Concatenating the slices in feed index order — exactly
/// what the merge stage's coalescing does — reconstructs the original list.
/// (`pub(crate)`: the hotpath merge benchmark partitions with the same
/// formula so it measures the production path's shape.)
pub(crate) fn feed_slice(len: usize, feed: usize, feeds: usize) -> std::ops::Range<usize> {
    (len * feed / feeds)..(len * (feed + 1) / feeds)
}

/// Spawns the producer threads for [`Producer::Merge`]: every feed runs the
/// full (deterministic) scenario stream and sends only its contiguous slice
/// of each round's batch over its own channel — no cross-thread coordination
/// on the producer side at all. Empty slices are skipped, so a feed can go
/// whole rounds without sending.
fn spawn_merge_producers(
    stream: ScenarioEvents,
    schedule: Vec<(usize, Speeds)>,
    rounds: usize,
    feeds: usize,
    capacity: usize,
) -> (MergeSession, Vec<JoinHandle<Result<(), String>>>) {
    let mut consumers = Vec::with_capacity(feeds);
    let mut handles = Vec::with_capacity(feeds);
    for feed in 0..feeds {
        let (mut tx, rx) = ingest::bounded(capacity);
        consumers.push(rx);
        let mut stream = stream.clone();
        let schedule = schedule.clone();
        handles.push(std::thread::spawn(move || {
            let mut schedule = schedule.into_iter().peekable();
            let mut full = RoundEvents::default();
            let mut spare: Option<RoundEvents> = None;
            for round in 0..rounds {
                while schedule.peek().is_some_and(|(r, _)| *r == round) {
                    // lint: allow(R03, the peek in the loop condition proves Some)
                    let (_, speeds) = schedule.next().expect("peeked entry");
                    stream.set_topology(&speeds);
                }
                stream.fill_round(round, &mut full);
                let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
                batch.clear();
                batch.completions.extend_from_slice(
                    &full.completions[feed_slice(full.completions.len(), feed, feeds)],
                );
                batch.arrivals.extend_from_slice(
                    &full.arrivals[feed_slice(full.arrivals.len(), feed, feeds)],
                );
                if batch.is_empty() {
                    spare = Some(batch);
                } else if tx.send(round as u64, batch).is_err() {
                    return Ok(()); // consumer hung up; the driver reports it
                }
            }
            Ok(())
        }));
    }
    (MergeSession::new(consumers), handles)
}

/// Spawns the producer thread for [`Session::from_trace`]: feeds the recorded round
/// batches through the channel in order.
fn spawn_trace_producer(
    rounds: Vec<lb_workloads::TraceRound>,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        for record in rounds {
            let mut batch = tx.buffer();
            record.fill(&mut batch);
            if batch.is_empty() {
                continue; // writers skip empty batches, but tolerate them
            }
            if tx.send(record.round, batch).is_err() {
                return Ok(());
            }
        }
        Ok(())
    });
    (IngestSession::new(rx), handle)
}

/// Spawns the producer thread for [`Session::from_stream`]: pulls round batches off
/// a live byte-stream source ([`lb_workloads::source`]) and feeds them
/// through the channel, recycling drained buffers. A source error — a torn
/// trace tail, a stalled writer, malformed records — ends production early
/// (the engine sees an event-free remainder and the run completes) and then
/// surfaces as the run's error when the driver joins the thread.
fn spawn_source_producer(
    mut source: Box<dyn RoundSource>,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        let mut spare: Option<RoundEvents> = None;
        loop {
            // Deliberately no `tx.is_disconnected()` fast-exit here: the
            // engine finishing first must not mask a source fault — a torn
            // tail discovered after the last consumed round still has to
            // surface as this run's error (tests/ingest_faults.rs), and the
            // source's own idle timeout already bounds how long a stalled
            // tail can hold the join.
            let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
            match source.next_round(&mut batch)? {
                Some(round) => {
                    if batch.is_empty() {
                        spare = Some(batch); // recorded empty rounds are legal
                    } else if tx.send(round, batch).is_err() {
                        return Ok(());
                    }
                }
                None => return Ok(()),
            }
        }
    });
    (IngestSession::new(rx), handle)
}

/// Where a [`Session`] starts from: a scenario spec to run, or a snapshot
/// to resume.
enum Origin {
    /// A validated-on-`run` scenario (from a spec, a trace header or a
    /// stream header).
    Scenario(Box<Scenario>),
    /// A checkpoint snapshot (boxed: snapshots carry the full engine
    /// state).
    Snapshot(Box<Snapshot>),
}

/// The one driver entry point: a builder binding an origin (scenario,
/// trace, stream or snapshot) to overrides, side outputs and an event feed,
/// executed by [`Session::run`].
///
/// ```no_run
/// # use lb_bench::dynamic::{Producer, Session};
/// # use std::path::PathBuf;
/// # let scenario: lb_workloads::Scenario = unimplemented!();
/// let outcome = Session::from_scenario(&scenario)
///     .seed(7)
///     .shards(4)
///     .producer(Producer::Channel { capacity: 8 })
///     .record(PathBuf::from("run.trace.jsonl"))
///     .run(|_| {})?;
/// # Ok::<(), lb_bench::error::BenchError>(())
/// ```
///
/// The deprecated free functions (`run_scenario` … `resume_replay`) are
/// thin shims over this builder; the migration table lives in the
/// [crate docs](crate).
pub struct Session {
    origin: Origin,
    feed: Feed,
    options: RunOptions,
    federation: Option<(crate::federate::FederationRole, usize)>,
}

impl Session {
    /// Starts a session that runs `scenario` with its own event generator
    /// (the default feed; [`Session::producer`] selects how the generated
    /// batches reach the engine).
    pub fn from_scenario(scenario: &Scenario) -> Self {
        Session {
            origin: Origin::Scenario(Box::new(scenario.clone())),
            feed: Feed::Generate,
            options: RunOptions::default(),
            federation: None,
        }
    }

    /// Starts a session that replays a recorded trace through the async
    /// ingestion channel: the embedded scenario rebuilds the graph, speeds
    /// and initial load, and the recorded batches drive the engine instead
    /// of the scenario's generator. For a trace recorded from the same
    /// scenario and seed, the result document is byte-identical to the
    /// original run's. The trace pins the seed ([`Session::seed`] is
    /// rejected); [`Session::shards`] replaces the embedded shard count
    /// (shard count never changes the result). The trace is consumed: its
    /// recorded rounds move to the producer thread without copying (clone
    /// first to replay again).
    pub fn from_trace(trace: Trace) -> Self {
        Session {
            origin: Origin::Scenario(Box::new(trace.scenario.clone())),
            feed: Feed::Trace(Box::new(trace)),
            options: RunOptions::default(),
            federation: None,
        }
    }

    /// Starts a session that replays a live byte stream through the async
    /// ingestion channel: the source's header embeds the effective
    /// scenario, and its round records drive the engine as they arrive —
    /// from a growing trace file ([`lb_workloads::TraceSource`]) or any
    /// framed reader ([`lb_workloads::ReadSource`]: pipes, sockets, stdin).
    ///
    /// The source runs on the producer thread; a source failure (torn tail,
    /// stalled writer, malformed record) ends production early — the engine
    /// finishes the remaining rounds event-free — and surfaces as the run's
    /// error, never as a deadlock. The stream pins the seed.
    pub fn from_stream(source: Box<dyn RoundSource>) -> Self {
        Session {
            origin: Origin::Scenario(Box::new(source.scenario().clone())),
            feed: Feed::Source(source),
            options: RunOptions::default(),
            federation: None,
        }
    }

    /// Starts a session that resumes a checkpointed run
    /// ([`Session::checkpoint`]) from `snapshot`: the embedded scenario
    /// rebuilds the graph, speeds and initial load from its seeds, the
    /// pre-resume event stream is fast-forwarded (reconstructing its RNG
    /// state and task-id counter), and the engine state is restored at the
    /// captured between-rounds boundary. The result document is
    /// **byte-identical** to the uninterrupted run's, from any checkpoint.
    ///
    /// [`Session::shards`] resizes the resumed *executor* only — the
    /// recorded scenario keeps the original shard count, so byte-identity
    /// holds across shard counts (shard-invariance makes the snapshot a
    /// migration unit). [`Session::seed`] is rejected (the snapshot pins
    /// the seed). [`Session::producer`] selects the event path as usual;
    /// [`Session::record`] still produces the *complete* trace (the
    /// fast-forwarded prefix is re-recorded); [`Session::checkpoint`] keeps
    /// checkpointing the resumed run. The streaming callback only sees
    /// samples taken after the resume point — the restored prefix is
    /// already in the outcome's trajectory. [`Session::stream`] resumes a
    /// byte-stream replay instead of the scenario generator.
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        Session {
            origin: Origin::Snapshot(Box::new(snapshot)),
            feed: Feed::Generate,
            options: RunOptions::default(),
            federation: None,
        }
    }

    /// Replaces the spec's seed; the effective value is recorded in the
    /// outcome. Rejected by trace/stream/snapshot sessions — those pin the
    /// seed. Accepts an `Option` so call sites can thread an optional
    /// override straight through.
    pub fn seed(mut self, seed: impl Into<Option<u64>>) -> Self {
        self.options.seed = seed.into();
        self
    }

    /// Replaces the spec's shard count (a resumed session resizes only the
    /// executor). Shard count never changes the result — only wall-clock
    /// time. Accepts an `Option` so call sites can thread an optional
    /// override straight through.
    pub fn shards(mut self, shards: impl Into<Option<usize>>) -> Self {
        self.options.shards = shards.into();
        self
    }

    /// Selects how generated events reach the engine (sync, channel or
    /// merge). Ignored by trace/stream/merged feeds, which bring their own
    /// channel path.
    pub fn producer(mut self, producer: Producer) -> Self {
        self.options.producer = producer;
        self
    }

    /// Records the applied event stream to this trace file
    /// ([`lb_workloads::trace`]); the trace embeds the effective scenario
    /// and replays bit-identically via [`Session::from_trace`]. Recording
    /// never perturbs the run itself.
    pub fn record(mut self, path: impl Into<Option<PathBuf>>) -> Self {
        self.options.record = path.into();
        self
    }

    /// Writes a rotating atomic engine snapshot to `path` every `every`
    /// completed rounds (see [`RunOptions::checkpoint`]); resume with
    /// [`Session::from_snapshot`]. Both halves must be present — `run`
    /// rejects an unpaired path or cadence.
    pub fn checkpoint(
        mut self,
        path: impl Into<Option<PathBuf>>,
        every: impl Into<Option<usize>>,
    ) -> Self {
        self.options.checkpoint = path.into();
        self.options.checkpoint_every = every.into();
        self
    }

    /// Feeds the run from a live byte-stream source instead of the
    /// scenario generator. On a snapshot session this resumes a byte-stream
    /// replay; it composes with [`lb_workloads::TraceSource`] checkpoints —
    /// a source resumed past the already-applied trace prefix simply yields
    /// empty batches for the fast-forwarded rounds, so the skipped records
    /// are never re-read (a source replaying from the top works too: the
    /// prefix is drained and discarded). The source's embedded scenario
    /// must equal the session's.
    pub fn stream(mut self, source: Box<dyn RoundSource>) -> Self {
        self.feed = Feed::Source(source);
        self
    }

    /// Runs this scenario federated across `parts` OS processes, one node
    /// partition per process, in the given role (see [`crate::federate`]).
    ///
    /// The scenario's `federation` field is replaced by `parts` (exactly as
    /// [`Session::shards`] replaces the shard count) and the effective value
    /// is recorded in the result document. A
    /// [coordinator](crate::federate::FederationRole::coordinator) session
    /// owns the scenario, drives the round barrier and returns the assembled
    /// outcome — byte-identical to the sequential run of the same effective
    /// scenario. A [worker](crate::federate::join) session runs one
    /// partition; its outcome carries an **empty trajectory** (the assembled
    /// document lives on the coordinator). Composes with [`Session::seed`],
    /// [`Session::shards`] (per-process intra-partition shards) and — on the
    /// coordinator — [`Session::checkpoint`]; every other feed or side
    /// output is rejected by [`Session::run`].
    pub fn federated(mut self, role: crate::federate::FederationRole, parts: usize) -> Self {
        self.federation = Some((role, parts));
        self
    }

    /// Feeds the run from an externally built [`MergeSession`] whose
    /// producers live outside the driver — e.g. the socket connections of
    /// [`crate::serve`], registered on the fly through a
    /// [`lb_core::ingest::merge::FeedRegistrar`]. The driver blocks at each
    /// round boundary on every open feed (the merge contract), applies the
    /// coalesced batches, and rolls the per-feed [`ChannelMetrics`] into
    /// [`ScenarioOutcome::ingest`].
    pub fn merged(mut self, session: MergeSession) -> Self {
        self.feed = Feed::Merge(session);
        self
    }

    /// Runs the session, calling `on_sample` for every trajectory point
    /// recorded *during this execution* (round 0 unless resumed, every
    /// `sample_every` rounds, and the final round). For the same scenario
    /// and seed the result document is bit-identical across machines, shard
    /// counts, producer modes and resume points.
    ///
    /// # Errors
    ///
    /// [`BenchError::Usage`] for invalid specs, unknown families,
    /// contradictory options (seed override on a pinned-seed session,
    /// unpaired checkpoint options, out-of-range shard/feed counts);
    /// [`BenchError::Protocol`] for stream/merge ordering violations,
    /// malformed records and snapshots that do not match the run;
    /// [`BenchError::Io`] for file and stream I/O failures; and
    /// [`BenchError::Core`]/[`BenchError::Snapshot`]/[`BenchError::Run`]
    /// for engine and snapshot failures.
    pub fn run(self, on_sample: impl FnMut(&RoundSample)) -> Result<ScenarioOutcome, BenchError> {
        let Session {
            origin,
            feed,
            options,
            federation,
        } = self;
        if let Some((role, parts)) = federation {
            let Origin::Scenario(scenario) = origin else {
                return Err(BenchError::usage(
                    "a federated session starts from a scenario; resume an assembled \
                     checkpoint with a plain session instead",
                ));
            };
            if !matches!(feed, Feed::Generate) {
                return Err(BenchError::usage(
                    "a federated session generates its own events; trace, stream and merge \
                     feeds do not compose with federation",
                ));
            }
            if !matches!(options.producer, Producer::Scenario) {
                return Err(BenchError::usage(
                    "a federated session uses the synchronous event path; producer modes do \
                     not compose with federation",
                ));
            }
            if options.record.is_some() {
                return Err(BenchError::usage(
                    "a federated session cannot record a trace; record the equivalent \
                     sequential run instead",
                ));
            }
            let mut scenario = *scenario;
            if let Some(seed) = options.seed {
                scenario.seed = seed;
            }
            if let Some(shards) = options.shards {
                scenario.shards = shards;
            }
            scenario.federation = parts;
            scenario.validate().map_err(BenchError::Usage)?;
            return crate::federate::run_federated(scenario, role, &options, on_sample);
        }
        let (scenario, resume) = match origin {
            Origin::Scenario(scenario) => {
                let mut scenario = *scenario;
                if let Some(seed) = options.seed {
                    if !matches!(feed, Feed::Generate | Feed::Merge(_)) {
                        return Err(BenchError::usage(
                            "a replayed run cannot override the seed: the stream pins it",
                        ));
                    }
                    scenario.seed = seed;
                }
                // A stream attached to a scenario session must agree with
                // it before overrides are applied (the shard override is
                // result-neutral and deliberately exempt).
                if let Feed::Source(source) = &feed {
                    if source.scenario() != &scenario {
                        return Err(BenchError::protocol(
                            "the source embeds a different scenario than this session",
                        ));
                    }
                }
                if let Some(shards) = options.shards {
                    scenario.shards = shards;
                }
                scenario.validate().map_err(BenchError::Usage)?;
                (scenario, None)
            }
            Origin::Snapshot(snapshot) => {
                if options.seed.is_some() {
                    return Err(BenchError::usage(
                        "a resumed run cannot override the seed: the snapshot pins it",
                    ));
                }
                let (scenario, resume) = ResumePoint::decode(*snapshot, options.shards)?;
                if let Feed::Source(source) = &feed {
                    if source.scenario() != &scenario {
                        return Err(BenchError::protocol(
                            "snapshot does not match this replay: the source embeds a \
                             different scenario",
                        ));
                    }
                }
                (scenario, Some(resume))
            }
        };
        execute(scenario, feed, &options, resume, on_sample)
    }
}

/// Runs `scenario` with the given overrides.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_scenario(..).seed(..).shards(..).run(..)`")]
pub fn run_scenario(
    scenario: &Scenario,
    seed_override: Option<u64>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_scenario(scenario)
        .seed(seed_override)
        .shards(shards_override)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// Runs `scenario` under `options`.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_scenario(..)` with builder methods")]
pub fn run_scenario_with(
    scenario: &Scenario,
    options: &RunOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_scenario(scenario)
        .seed(options.seed)
        .shards(options.shards)
        .producer(options.producer)
        .record(options.record.clone())
        .checkpoint(options.checkpoint.clone(), options.checkpoint_every)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// Replays a recorded trace.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_trace(..).shards(..).run(..)`")]
pub fn replay_trace(
    trace: Trace,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_trace(trace)
        .shards(shards_override)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// Replays a live byte-stream source.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_stream(..).shards(..).run(..)`")]
pub fn replay_source(
    source: Box<dyn RoundSource>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_stream(source)
        .shards(shards_override)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// Encodes one trajectory sample for the snapshot's driver payload. The
/// `f64` fields travel as IEEE-754 bit patterns so a resumed run re-renders
/// the restored prefix byte-identically.
fn sample_record(sample: &RoundSample) -> Json {
    Json::Arr(vec![
        Json::from(sample.round),
        Json::from(sample.nodes),
        Json::from(sample.max_min.to_bits()),
        Json::from(sample.max_avg.to_bits()),
        Json::from(sample.real_weight.to_bits()),
        Json::from(sample.dummy_load),
        Json::from(sample.arrived_weight),
        Json::from(sample.completed_weight),
    ])
}

/// The snapshot's opaque driver payload: the engine identity and the
/// trajectory accumulated up to the capture round.
pub(crate) fn encode_driver(engine_name: &str, trajectory: &[RoundSample]) -> Json {
    Json::obj([
        ("engine", Json::from(engine_name)),
        (
            "trajectory",
            Json::Arr(trajectory.iter().map(sample_record).collect()),
        ),
    ])
}

/// Decodes the driver payload's trajectory (inverse of [`encode_driver`]).
fn decode_trajectory(driver: &Json) -> Result<Vec<RoundSample>, String> {
    let entries = driver
        .get("trajectory")
        .and_then(Json::as_array)
        .ok_or("snapshot driver payload has no trajectory array")?;
    entries
        .iter()
        .enumerate()
        .map(|(idx, entry)| {
            let items = entry.as_array().filter(|a| a.len() == 8).ok_or_else(|| {
                format!("snapshot driver payload: trajectory entry {idx} is not an 8-field record")
            })?;
            let int = |slot: usize, what: &str| -> Result<u64, String> {
                items[slot].as_u64().ok_or_else(|| {
                    format!(
                        "snapshot driver payload: trajectory entry {idx} field {what} \
                         must be a non-negative exact integer"
                    )
                })
            };
            Ok(RoundSample {
                round: int(0, "round")? as usize,
                nodes: int(1, "nodes")? as usize,
                max_min: f64::from_bits(int(2, "max_min")?),
                max_avg: f64::from_bits(int(3, "max_avg")?),
                real_weight: f64::from_bits(int(4, "real_weight")?),
                dummy_load: int(5, "dummy_load")?,
                arrived_weight: int(6, "arrived_weight")?,
                completed_weight: int(7, "completed_weight")?,
            })
        })
        .collect()
}

/// A validated resume point decoded from a [`Snapshot`].
struct ResumePoint {
    /// Completed rounds at capture: the round the run continues from.
    round: usize,
    /// Engine name recorded at capture, validated against the rebuilt one.
    engine_name: String,
    /// The trajectory accumulated before the capture.
    trajectory: Vec<RoundSample>,
    /// The captured engine state.
    engine: snapshot::EngineState,
    /// Shard-count override for the resumed executor. Deliberately does
    /// **not** rewrite the scenario: shard count never changes the result,
    /// so the resumed document stays byte-identical to the uninterrupted
    /// one — a snapshot is the natural migration unit across shard counts.
    shards: Option<usize>,
}

impl ResumePoint {
    /// Decodes and cross-validates `snapshot`, returning the effective
    /// scenario it embeds alongside the resume point.
    fn decode(snapshot: Snapshot, shards: Option<usize>) -> Result<(Scenario, Self), BenchError> {
        let scenario = Scenario::from_json(&snapshot.scenario)
            .map_err(|err| BenchError::protocol(format!("snapshot scenario header: {err}")))?;
        scenario
            .validate()
            .map_err(|err| BenchError::protocol(format!("snapshot scenario header: {err}")))?;
        if let Some(shards) = shards {
            // Reuse the scenario's own shard validation for the override.
            let mut check = scenario.clone();
            check.shards = shards;
            check.validate().map_err(BenchError::Usage)?;
        }
        if snapshot.engine.round != snapshot.round {
            return Err(BenchError::protocol(format!(
                "corrupt snapshot: the run record says round {} but the engine record \
                 says round {}",
                snapshot.round, snapshot.engine.round
            )));
        }
        let round = usize::try_from(snapshot.round).map_err(|_| {
            BenchError::protocol(format!(
                "snapshot round {} overflows this platform",
                snapshot.round
            ))
        })?;
        if round > scenario.rounds {
            return Err(BenchError::protocol(format!(
                "snapshot was captured at round {round} but the scenario runs only {} round(s)",
                scenario.rounds
            )));
        }
        let engine_name = snapshot
            .driver
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| BenchError::protocol("snapshot driver payload has no engine name"))?
            .to_string();
        let trajectory = decode_trajectory(&snapshot.driver).map_err(BenchError::Protocol)?;
        if trajectory.first().map(|s| s.round) != Some(0) {
            return Err(BenchError::protocol(
                "snapshot driver payload: trajectory does not start at round 0",
            ));
        }
        if trajectory.last().is_some_and(|s| s.round > round) {
            return Err(BenchError::protocol(format!(
                "snapshot driver payload: trajectory reaches round \
                 {} past the capture round {round}",
                // lint: allow(R03, emptiness handled by the branch above)
                trajectory.last().expect("non-empty").round
            )));
        }
        Ok((
            scenario,
            ResumePoint {
                round,
                engine_name,
                trajectory,
                engine: snapshot.engine,
                shards,
            },
        ))
    }
}

/// Resumes a checkpointed run from `snapshot`.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_snapshot(..)` with builder methods")]
pub fn resume_run(
    snapshot: Snapshot,
    options: &RunOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_snapshot(snapshot)
        .seed(options.seed)
        .shards(options.shards)
        .producer(options.producer)
        .record(options.record.clone())
        .checkpoint(options.checkpoint.clone(), options.checkpoint_every)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// Resumes a byte-stream replay from `snapshot`.
///
/// # Errors
///
/// Returns the stringified [`BenchError`].
#[deprecated(note = "use `Session::from_snapshot(..).stream(..).shards(..).run(..)`")]
pub fn resume_replay(
    snapshot: Snapshot,
    source: Box<dyn RoundSource>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    Session::from_snapshot(snapshot)
        .stream(source)
        .shards(shards_override)
        .run(on_sample)
        .map_err(|err| err.to_string())
}

/// What drives a run's event stream (internal face of [`Session`]).
enum Feed {
    /// The scenario's own generator, inline or behind channels per
    /// [`RunOptions::producer`].
    Generate,
    /// A fully parsed recorded trace (boxed: traces dwarf the other
    /// variants).
    Trace(Box<Trace>),
    /// A live byte-stream source, parsed on the producer thread.
    Source(Box<dyn RoundSource>),
    /// An externally built k-way merge whose producers live outside the
    /// driver (e.g. socket connections, see [`crate::serve`]).
    Merge(MergeSession),
}

/// Everything a driver deterministically derives from a scenario before the
/// first round: the seeded topology, speeds, padded initial load and the
/// first dynamic task id. Every process of a federated run rebuilds the
/// identical `World` from the identical scenario document — this derivation
/// is the only "configuration channel" the protocol needs.
pub(crate) struct World {
    pub(crate) class: GraphClass,
    pub(crate) graph: Arc<Graph>,
    pub(crate) speeds: Speeds,
    pub(crate) initial: InitialLoad,
    pub(crate) first_task_id: u64,
}

/// Derives the [`World`] of an effective (validated) scenario.
pub(crate) fn build_world(scenario: &Scenario) -> Result<World, BenchError> {
    let seed = scenario.seed;
    let class = family_class(&scenario.topology.family).map_err(BenchError::Usage)?;
    let graph: Arc<Graph> = class
        .build(
            scenario.topology.target_n,
            seed.wrapping_add(GRAPH_SEED_OFFSET),
        )
        .map_err(|err| BenchError::run(format!("building {}: {err}", scenario.topology.family)))?
        .into();
    let n = graph.node_count();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(SPEEDS_SEED_OFFSET));
    let speeds = scenario.speeds.to_model().generate(n, &mut rng);

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(INITIAL_SEED_OFFSET));
    let total_tokens = scenario.initial.tokens_per_node * n as u64;
    let unpadded = scenario
        .initial
        .distribution
        .generate(n, total_tokens, &mut rng);
    let pad = match scenario.initial.pad {
        PadSpec::Tokens(t) => t,
        PadSpec::Degree => {
            graph.max_degree() as u64 * unpadded.max_weight().max(scenario.arrivals.max_weight())
        }
    };
    let initial = pad_for_min_load(&unpadded, &speeds, pad);
    let first_task_id = initial.task_count() as u64;
    Ok(World {
        class,
        graph,
        speeds,
        initial,
        first_task_id,
    })
}

/// One trajectory point, read off the engine after `round` completed rounds.
pub(crate) fn sample_of(engine: &Engine, round: usize) -> RoundSample {
    let loads = engine.loads();
    let speeds = engine.speeds();
    RoundSample {
        round,
        nodes: engine.node_count(),
        max_min: metrics::max_min_discrepancy(&loads, speeds),
        max_avg: metrics::max_avg_discrepancy(&loads, speeds),
        real_weight: engine.real_loads().iter().sum(),
        dummy_load: engine.dummy_load(),
        arrived_weight: engine.arrived_weight(),
        completed_weight: engine.completed_weight(),
    }
}

/// The shared driver loop behind [`Session::run`]: `scenario` is already
/// effective (overrides applied, validated); `feed` selects where the
/// per-round batches come from.
fn execute(
    scenario: Scenario,
    feed: Feed,
    options: &RunOptions,
    resume: Option<ResumePoint>,
    mut on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, BenchError> {
    let seed = scenario.seed;
    let checkpoint = match (&options.checkpoint, options.checkpoint_every) {
        (Some(path), Some(every)) => {
            if every == 0 {
                return Err(BenchError::usage(
                    "the checkpoint cadence must be at least one round",
                ));
            }
            Some((path.clone(), every))
        }
        (Some(_), None) => {
            return Err(BenchError::usage(
                "a checkpoint path requires a checkpoint cadence (checkpoint-every)",
            ))
        }
        (None, Some(_)) => {
            return Err(BenchError::usage(
                "a checkpoint cadence requires a checkpoint path",
            ));
        }
        (None, None) => None,
    };

    let World {
        class,
        graph,
        speeds,
        initial,
        first_task_id,
    } = build_world(&scenario)?;

    let mut engine = Engine::build(&scenario, Arc::clone(&graph), &speeds, &initial, seed)?;
    // One plan for every churn event, built up front: the driver swaps in
    // the prebuilt graphs, and a channel producer follows the speeds.
    let schedule = churn_schedule(class, &scenario, &graph, &speeds).map_err(BenchError::Run)?;
    let mut source = match feed {
        Feed::Trace(trace) => {
            let (session, handle) = spawn_trace_producer(trace.rounds, DEFAULT_CHANNEL_CAPACITY);
            EventSource::Channel {
                session,
                producer: Some(handle),
            }
        }
        Feed::Source(stream_source) => {
            let (session, handle) = spawn_source_producer(stream_source, DEFAULT_CHANNEL_CAPACITY);
            EventSource::Channel {
                session,
                producer: Some(handle),
            }
        }
        Feed::Merge(session) => EventSource::Merge {
            session,
            producers: Vec::new(),
        },
        Feed::Generate => {
            let stream = ScenarioEvents::new(&scenario, &speeds, first_task_id);
            let speeds_schedule = || {
                schedule
                    .iter()
                    .map(|step| (step.round, step.speeds.clone()))
                    .collect()
            };
            match options.producer {
                Producer::Scenario => EventSource::Sync(stream),
                Producer::Channel { capacity } => {
                    let (session, handle) = spawn_scenario_producer(
                        stream,
                        speeds_schedule(),
                        scenario.rounds,
                        capacity,
                    );
                    EventSource::Channel {
                        session,
                        producer: Some(handle),
                    }
                }
                Producer::Merge { feeds, capacity } => {
                    if feeds == 0 || feeds > MAX_MERGE_FEEDS {
                        return Err(BenchError::usage(format!(
                            "merge feeds must be in 1..={MAX_MERGE_FEEDS}, got {feeds}"
                        )));
                    }
                    let (session, producers) = spawn_merge_producers(
                        stream,
                        speeds_schedule(),
                        scenario.rounds,
                        feeds,
                        capacity,
                    );
                    EventSource::Merge { session, producers }
                }
            }
        }
    };
    let mut writer = options
        .record
        .as_ref()
        .map(|path| TraceWriter::create(path, &scenario))
        .transpose()
        .map_err(BenchError::Io)?;
    let mut events = RoundEvents::default();
    // One executor for the whole run; it rebinds itself across churn. A
    // single shard means plain sequential stepping, no worker threads. A
    // resumed run may override the count — executor only, never the
    // recorded scenario, so the result document stays byte-identical.
    let exec_shards = resume
        .as_ref()
        .and_then(|point| point.shards)
        .unwrap_or(scenario.shards);
    let mut executor = (exec_shards > 1).then(|| ShardedExecutor::new(exec_shards));

    let mut trajectory = Vec::new();
    let mut record = |engine: &Engine, round: usize, trajectory: &mut Vec<RoundSample>| {
        let sample = sample_of(engine, round);
        on_sample(&sample);
        trajectory.push(sample);
    };

    let mut churn = schedule.into_iter().peekable();
    let resume_round = match resume {
        None => {
            record(&engine, 0, &mut trajectory);
            0
        }
        Some(point) => {
            if point.round > scenario.rounds {
                return Err(BenchError::protocol(format!(
                    "snapshot was captured at round {} but the scenario runs only {} round(s)",
                    point.round, scenario.rounds
                )));
            }
            // Fast-forward the pre-resume prefix without stepping the
            // engine: the event stream is drained round by round to
            // reconstruct its RNG state and task-id counter (and re-record
            // it, so a resumed `--record` still yields the complete trace),
            // while churn only needs its *last* topology — the snapshot
            // restore overwrites everything else.
            let mut rebuilt: Option<(Arc<Graph>, Speeds)> = None;
            for round in 0..point.round {
                while churn.peek().is_some_and(|step| step.round == round) {
                    // lint: allow(R03, the peek in the loop condition proves Some)
                    let step = churn.next().expect("peeked entry");
                    source.set_topology(&step.speeds);
                    rebuilt = Some((step.graph, step.speeds));
                }
                source.fill_round(round, &mut events)?;
                if let Some(writer) = writer.as_mut() {
                    writer
                        .record_round(round as u64, &events)
                        .map_err(BenchError::Io)?;
                }
            }
            if let Some((new_graph, new_speeds)) = rebuilt {
                // Full-rebuild path: the engine may be several churn epochs
                // behind this entry, so its delta (relative to the previous
                // epoch only) does not apply.
                engine
                    .replace_topology(new_graph, &new_speeds, None)
                    .map_err(|err| {
                        BenchError::run(format!("rebuilding the churned topology to resume: {err}"))
                    })?;
            }
            if engine.name() != point.engine_name {
                return Err(BenchError::protocol(format!(
                    "snapshot does not match this run: it captured engine {:?} but the \
                     scenario builds {:?}",
                    point.engine_name,
                    engine.name()
                )));
            }
            engine.restore(&point.engine)?;
            trajectory = point.trajectory;
            point.round
        }
    };

    for round in resume_round..scenario.rounds {
        while churn.peek().is_some_and(|step| step.round == round) {
            // lint: allow(R03, the peek in the loop condition proves Some)
            let step = churn.next().expect("peeked entry");
            engine
                .replace_topology(step.graph, &step.speeds, step.delta.as_ref())
                .map_err(|err| BenchError::run(format!("churn at round {round}: {err}")))?;
            source.set_topology(engine.speeds());
        }
        source.fill_round(round, &mut events)?;
        if let Some(writer) = writer.as_mut() {
            writer
                .record_round(round as u64, &events)
                .map_err(BenchError::Io)?;
        }
        if !events.is_empty() {
            engine
                .apply_events(&events)
                .map_err(|err| BenchError::run(format!("events at round {round}: {err}")))?;
        }
        engine.step(executor.as_mut());
        let done = round + 1;
        if done % scenario.sample_every == 0 || done == scenario.rounds {
            record(&engine, done, &mut trajectory);
        }
        if let Some((path, every)) = &checkpoint {
            if done % every == 0 {
                let state = Snapshot {
                    scenario: scenario.to_json(),
                    driver: encode_driver(engine.name(), &trajectory),
                    round: done as u64,
                    engine: engine.capture(),
                };
                snapshot::write_atomic(path, &state)
                    .map_err(|err| BenchError::run(format!("checkpoint at round {done}: {err}")))?;
            }
        }
    }
    let ingest = source.finish()?;
    if let Some(writer) = writer {
        writer.finish().map_err(BenchError::Io)?;
    }

    Ok(ScenarioOutcome {
        engine: engine.name().to_string(),
        scenario,
        trajectory,
        dummy_created: engine.dummy_created(),
        ingest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_workloads::{
        ArrivalSpec, ChurnEvent, InitialSpec, ServiceSpec, SpeedSpec, TokenDistribution,
        TopologySpec,
    };

    fn poisson_scenario() -> Scenario {
        Scenario {
            name: "driver_test".into(),
            seed: 5,
            rounds: 60,
            sample_every: 20,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 36,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 6,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
            federation: 1,
        }
    }

    #[test]
    fn trajectory_samples_first_and_last_rounds() {
        let outcome = Session::from_scenario(&poisson_scenario())
            .run(|_| {})
            .unwrap();
        assert_eq!(outcome.trajectory[0].round, 0);
        assert_eq!(outcome.last().round, 60);
        // 0, 20, 40, 60.
        assert_eq!(outcome.trajectory.len(), 4);
        assert_eq!(outcome.engine, "alg1(fos)");
        assert!(outcome.last().arrived_weight > 0);
        assert!(outcome.last().completed_weight > 0);
    }

    #[test]
    fn same_seed_bit_identical_different_seed_differs() {
        let scenario = poisson_scenario();
        let a = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        let b = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.to_json().render_pretty(), b.to_json().render_pretty());
        let c = Session::from_scenario(&scenario)
            .seed(99)
            .run(|_| {})
            .unwrap();
        assert_eq!(c.scenario.seed, 99);
        assert_ne!(a.trajectory, c.trajectory);
    }

    #[test]
    fn streaming_callback_sees_every_sample() {
        let mut streamed = Vec::new();
        let outcome = Session::from_scenario(&poisson_scenario())
            .run(|s| streamed.push(s.clone()))
            .unwrap();
        assert_eq!(streamed, outcome.trajectory);
    }

    #[test]
    fn churn_resize_changes_node_count_mid_run() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Resize {
                target_n: 16,
                seed: 3,
            },
        }];
        let outcome = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        assert_eq!(outcome.trajectory[1].nodes, 36, "before churn");
        assert_eq!(outcome.last().nodes, 16, "after churn");
    }

    #[test]
    fn shard_override_never_changes_the_trajectory() {
        // The driver-level face of the sharding contract: the same scenario
        // and seed produce identical trajectories for every shard count,
        // across all four engine combos (and churn), including via the
        // `--shards` override path.
        for (algorithm, model) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos),
            (AlgorithmSpec::Alg1, ModelSpec::Sos),
            (AlgorithmSpec::Alg2, ModelSpec::Fos),
            (AlgorithmSpec::Alg2, ModelSpec::Sos),
        ] {
            let mut scenario = poisson_scenario();
            scenario.algorithm = algorithm;
            scenario.model = model;
            scenario.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Rewire { seed: 9 },
            }];
            let sequential = Session::from_scenario(&scenario).run(|_| {}).unwrap();
            for shards in [2, 5] {
                let sharded = Session::from_scenario(&scenario)
                    .shards(shards)
                    .run(|_| {})
                    .unwrap();
                assert_eq!(
                    sequential.trajectory, sharded.trajectory,
                    "{algorithm:?}/{model:?} shards={shards}"
                );
                assert_eq!(sharded.scenario.shards, shards, "override recorded");
            }
        }
    }

    #[test]
    fn zero_shard_override_is_rejected() {
        let err = Session::from_scenario(&poisson_scenario())
            .shards(0)
            .run(|_| {})
            .unwrap_err();
        assert!(matches!(err, BenchError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("shards"), "{err}");
    }

    #[test]
    fn channel_producer_matches_sync_bit_for_bit() {
        // The ingestion contract at driver level: the same scenario and seed
        // produce byte-identical result JSON whether events are generated
        // inline or streamed through the SPSC channel — including across
        // churn, which the channel producer follows via its precomputed
        // speeds schedule.
        let mut scenario = poisson_scenario();
        scenario.churn = vec![
            ChurnEvent {
                round: 20,
                kind: ChurnKind::Rewire { seed: 9 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 3,
                },
            },
        ];
        let sync = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        for capacity in [1, 4] {
            let channel = Session::from_scenario(&scenario)
                .producer(Producer::Channel { capacity })
                .run(|_| {})
                .unwrap();
            assert_eq!(
                sync.to_json().render_pretty(),
                channel.to_json().render_pretty(),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn merge_producer_matches_sync_bit_for_bit() {
        // The multi-producer contract at driver level: N feeds each sending
        // a contiguous slice of every batch, k-way merged back, produce
        // byte-identical result JSON — including across churn.
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 9 },
        }];
        let sync = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        assert!(sync.ingest.is_none(), "sync runs carry no ingest report");
        for feeds in [1usize, 2, 4] {
            let merged = Session::from_scenario(&scenario)
                .producer(Producer::Merge { feeds, capacity: 2 })
                .run(|_| {})
                .unwrap();
            assert_eq!(
                sync.to_json().render_pretty(),
                merged.to_json().render_pretty(),
                "feeds {feeds}"
            );
            let stats = merged.ingest.expect("merged runs report ingest stats");
            assert_eq!(stats.get("producer").and_then(Json::as_str), Some("merge"));
            let reported = stats.get("feeds").and_then(Json::as_array).unwrap();
            assert_eq!(reported.len(), feeds);
            let events: u64 = reported
                .iter()
                .map(|f| f.get("events").and_then(Json::as_u64).unwrap())
                .sum();
            assert!(events > 0, "the feeds carried the stream");
        }
    }

    #[test]
    fn merge_rejects_out_of_range_feed_counts() {
        for feeds in [0usize, super::MAX_MERGE_FEEDS + 1] {
            let err = Session::from_scenario(&poisson_scenario())
                .producer(Producer::Merge { feeds, capacity: 2 })
                .run(|_| {})
                .unwrap_err();
            assert!(matches!(err, BenchError::Usage(_)), "{err:?}");
            assert!(err.to_string().contains("merge feeds"), "{err}");
        }
    }

    #[test]
    fn byte_stream_replay_is_byte_identical() {
        use lb_workloads::{ReadSource, TraceSource};

        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_dynamic_stream_replay.trace.jsonl");
        let recorded = Session::from_scenario(&scenario)
            .record(path.clone())
            .run(|_| {})
            .unwrap();
        let recorded_doc = recorded.to_json().render_pretty();

        // Framed reader over the raw bytes (the pipe/socket/stdin path).
        let bytes = std::fs::read(&path).unwrap();
        let source = ReadSource::new(std::io::Cursor::new(bytes)).unwrap();
        let streamed = Session::from_stream(Box::new(source)).run(|_| {}).unwrap();
        assert_eq!(recorded_doc, streamed.to_json().render_pretty());

        // File tail over the (already complete) trace file.
        let source = TraceSource::open(&path).unwrap();
        let tailed = Session::from_stream(Box::new(source)).run(|_| {}).unwrap();
        assert_eq!(recorded_doc, tailed.to_json().render_pretty());

        // Shard overrides replay bit-identically, like a trace replay.
        let source = TraceSource::open(&path).unwrap();
        let sharded = Session::from_stream(Box::new(source))
            .shards(3)
            .run(|_| {})
            .unwrap();
        assert_eq!(sharded.scenario.shards, 3);
        assert_eq!(recorded.trajectory, sharded.trajectory);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recorded_traces_replay_byte_identically() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 5 },
        }];
        let path = std::env::temp_dir().join("lb_dynamic_record_replay.trace.jsonl");
        let recorded = Session::from_scenario(&scenario)
            .seed(11)
            .record(path.clone())
            .run(|_| {})
            .unwrap();

        // Recording never perturbs the run.
        let plain = Session::from_scenario(&scenario)
            .seed(11)
            .run(|_| {})
            .unwrap();
        assert_eq!(
            plain.to_json().render_pretty(),
            recorded.to_json().render_pretty()
        );

        // Replay reproduces the run byte for byte, and a shard override only
        // changes the recorded shard count, never the trajectory.
        let trace = lb_workloads::Trace::load(&path).unwrap();
        assert_eq!(trace.scenario.seed, 11, "header carries the effective seed");
        let replayed = Session::from_trace(trace.clone()).run(|_| {}).unwrap();
        assert_eq!(
            recorded.to_json().render_pretty(),
            replayed.to_json().render_pretty()
        );
        let sharded = Session::from_trace(trace).shards(3).run(|_| {}).unwrap();
        assert_eq!(sharded.scenario.shards, 3);
        assert_eq!(recorded.trajectory, sharded.trajectory);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_invalid_shard_overrides() {
        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_dynamic_replay_shards.trace.jsonl");
        Session::from_scenario(&scenario)
            .record(path.clone())
            .run(|_| {})
            .unwrap();
        let trace = lb_workloads::Trace::load(&path).unwrap();
        let err = Session::from_trace(trace)
            .shards(0)
            .run(|_| {})
            .unwrap_err();
        assert!(matches!(err, BenchError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("shards"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alg2_sos_engine_runs() {
        let mut scenario = poisson_scenario();
        scenario.algorithm = AlgorithmSpec::Alg2;
        scenario.model = ModelSpec::Sos;
        let outcome = Session::from_scenario(&scenario).run(|_| {}).unwrap();
        assert!(
            outcome.engine.starts_with("alg2(sos"),
            "engine was {}",
            outcome.engine
        );
    }

    #[test]
    fn unknown_family_is_reported() {
        let mut scenario = poisson_scenario();
        scenario.topology.family = "smallworld".into();
        let err = Session::from_scenario(&scenario).run(|_| {}).unwrap_err();
        assert!(err.to_string().contains("smallworld"));
    }

    /// `poisson_scenario` with churn at round 30, for the given engine.
    fn churned_scenario(algorithm: AlgorithmSpec, model: ModelSpec) -> Scenario {
        let mut scenario = poisson_scenario();
        scenario.algorithm = algorithm;
        scenario.model = model;
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 9 },
        }];
        scenario
    }

    /// Runs `scenario` (60 rounds) with a rotating checkpoint every 25
    /// rounds and harvests two snapshots from the ONE run: the sample
    /// callback at round 40 copies the rotating file aside while it still
    /// holds the round-25 checkpoint (pre-churn), and after the run the
    /// rotating file holds the round-50 checkpoint (post-churn). Returns
    /// `(outcome, snapshot@25, snapshot@50)`.
    fn run_with_checkpoints(
        scenario: &Scenario,
        tag: &str,
    ) -> (ScenarioOutcome, Snapshot, Snapshot) {
        let dir = std::env::temp_dir();
        let rotating = dir.join(format!("lb_resume_{tag}.ckpt.jsonl"));
        let early = dir.join(format!("lb_resume_{tag}.ckpt25.jsonl"));
        let outcome = Session::from_scenario(scenario)
            .checkpoint(rotating.clone(), 25)
            .run(|sample| {
                if sample.round == 40 {
                    std::fs::copy(&rotating, &early).expect("copy rotating checkpoint");
                }
            })
            .unwrap();
        let snap25 = snapshot::load(&early).unwrap();
        let snap50 = snapshot::load(&rotating).unwrap();
        std::fs::remove_file(&rotating).ok();
        std::fs::remove_file(&early).ok();
        assert_eq!(
            snap25.round, 25,
            "the round-40 sample saw the round-25 file"
        );
        assert_eq!(snap50.round, 50, "the final rotating file holds round 50");
        (outcome, snap25, snap50)
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_for_all_engines() {
        // The tentpole contract: resuming from ANY checkpoint — before or
        // after churn, at any shard count — reproduces the uninterrupted
        // run's result document byte for byte, for all four engine combos.
        // The round-25 snapshot crosses the churn *after* the resume point
        // (live path); the round-50 snapshot crosses it *during* the
        // fast-forward (replace_topology path).
        for (algorithm, model, tag) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos, "a1fos"),
            (AlgorithmSpec::Alg1, ModelSpec::Sos, "a1sos"),
            (AlgorithmSpec::Alg2, ModelSpec::Fos, "a2fos"),
            (AlgorithmSpec::Alg2, ModelSpec::Sos, "a2sos"),
        ] {
            let scenario = churned_scenario(algorithm, model);
            let (outcome, snap25, snap50) = run_with_checkpoints(&scenario, tag);
            let reference = outcome.to_json().render_pretty();

            // Checkpointing never perturbs the run.
            let plain = Session::from_scenario(&scenario).run(|_| {}).unwrap();
            assert_eq!(
                plain.to_json().render_pretty(),
                reference,
                "{tag}: perturbed"
            );

            for (snap, label) in [(snap25, "round 25"), (snap50, "round 50")] {
                for shards in [None, Some(3)] {
                    // Round-trip through the wire format: resume exercises
                    // render + parse on a real captured state every time.
                    let snap = snapshot::parse(&snapshot::render(&snap)).unwrap();
                    let resumed = Session::from_snapshot(snap)
                        .shards(shards)
                        .run(|_| {})
                        .unwrap();
                    assert_eq!(
                        resumed.to_json().render_pretty(),
                        reference,
                        "{tag}: resume at {label}, shards {shards:?}"
                    );
                }
            }
        }
    }

    /// `poisson_scenario` with a rewire immediately followed by a resize at
    /// the next round — the back-to-back churn schedule.
    fn back_to_back_churn_scenario(algorithm: AlgorithmSpec, model: ModelSpec) -> Scenario {
        let mut scenario = poisson_scenario();
        scenario.algorithm = algorithm;
        scenario.model = model;
        scenario.churn = vec![
            ChurnEvent {
                round: 30,
                kind: ChurnKind::Rewire { seed: 9 },
            },
            ChurnEvent {
                round: 31,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 3,
                },
            },
        ];
        scenario
    }

    #[test]
    fn back_to_back_churn_is_byte_identical_for_all_engines() {
        // A rewire at round 30 immediately followed by a resize at round 31:
        // the delta-patched epoch lives for exactly one round before the
        // full-rebuild path replaces it. The round-25 snapshot crosses both
        // entries live; the round-50 snapshot crosses both during the
        // fast-forward, exercising the only-the-last-step rebuild rule with
        // adjacent steps. Shard overrides must never change the trajectory.
        for (algorithm, model, tag) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos, "btb_a1fos"),
            (AlgorithmSpec::Alg1, ModelSpec::Sos, "btb_a1sos"),
            (AlgorithmSpec::Alg2, ModelSpec::Fos, "btb_a2fos"),
            (AlgorithmSpec::Alg2, ModelSpec::Sos, "btb_a2sos"),
        ] {
            let scenario = back_to_back_churn_scenario(algorithm, model);
            let (outcome, snap25, snap50) = run_with_checkpoints(&scenario, tag);
            let reference = outcome.to_json().render_pretty();
            assert_eq!(outcome.last().nodes, 16, "{tag}: the resize landed");

            for shards in [2, 5] {
                let sharded = Session::from_scenario(&scenario)
                    .shards(shards)
                    .run(|_| {})
                    .unwrap();
                assert_eq!(
                    outcome.trajectory, sharded.trajectory,
                    "{tag}: shards={shards}"
                );
            }

            for (snap, label) in [(snap25, "round 25"), (snap50, "round 50")] {
                for shards in [None, Some(3)] {
                    let snap = snapshot::parse(&snapshot::render(&snap)).unwrap();
                    let resumed = Session::from_snapshot(snap)
                        .shards(shards)
                        .run(|_| {})
                        .unwrap();
                    assert_eq!(
                        resumed.to_json().render_pretty(),
                        reference,
                        "{tag}: resume at {label}, shards {shards:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn resume_from_a_checkpoint_between_back_to_back_churns() {
        // Checkpoints are written at the between-rounds boundary, so a
        // cadence of 31 captures the state after the round-30 rewire but
        // before the round-31 resize: the fast-forward must re-apply the
        // rewire epoch (full-rebuild path) and then take the resize live.
        for (algorithm, model, tag) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos, "mid_a1fos"),
            (AlgorithmSpec::Alg1, ModelSpec::Sos, "mid_a1sos"),
            (AlgorithmSpec::Alg2, ModelSpec::Fos, "mid_a2fos"),
            (AlgorithmSpec::Alg2, ModelSpec::Sos, "mid_a2sos"),
        ] {
            let scenario = back_to_back_churn_scenario(algorithm, model);
            let rotating = std::env::temp_dir().join(format!("lb_resume_{tag}.ckpt.jsonl"));
            let outcome = Session::from_scenario(&scenario)
                .checkpoint(rotating.clone(), 31)
                .run(|_| {})
                .unwrap();
            let snap = snapshot::load(&rotating).unwrap();
            std::fs::remove_file(&rotating).ok();
            assert_eq!(snap.round, 31, "{tag}: captured between the churns");
            let reference = outcome.to_json().render_pretty();
            for shards in [None, Some(3)] {
                let snap = snapshot::parse(&snapshot::render(&snap)).unwrap();
                let resumed = Session::from_snapshot(snap)
                    .shards(shards)
                    .run(|_| {})
                    .unwrap();
                assert_eq!(
                    resumed.to_json().render_pretty(),
                    reference,
                    "{tag}: resume between churns, shards {shards:?}"
                );
            }
        }
    }

    #[test]
    fn delta_churn_is_byte_identical_across_shard_counts() {
        // The explicit delta form of churn, across all four engine combos:
        // shard overrides must never change the trajectory, and (torus
        // rebuilds being deterministic) a rewire is exactly an empty delta.
        for (algorithm, model) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos),
            (AlgorithmSpec::Alg1, ModelSpec::Sos),
            (AlgorithmSpec::Alg2, ModelSpec::Fos),
            (AlgorithmSpec::Alg2, ModelSpec::Sos),
        ] {
            let mut scenario = poisson_scenario();
            scenario.algorithm = algorithm;
            scenario.model = model;
            scenario.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Delta {
                    add: vec![(0, 14), (7, 29)],
                    remove: vec![(0, 1)],
                },
            }];
            let sequential = Session::from_scenario(&scenario).run(|_| {}).unwrap();
            for shards in [2, 5] {
                let sharded = Session::from_scenario(&scenario)
                    .shards(shards)
                    .run(|_| {})
                    .unwrap();
                assert_eq!(
                    sequential.trajectory, sharded.trajectory,
                    "{algorithm:?}/{model:?} delta churn shards={shards}"
                );
            }

            // Rewire ≡ empty delta: the torus family rebuild reproduces the
            // same edges, so both paths patch with an empty delta and must
            // land on the same trajectory (the scenario specs differ, so
            // compare trajectories rather than rendered documents).
            let mut rewire = poisson_scenario();
            rewire.algorithm = algorithm;
            rewire.model = model;
            rewire.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Rewire { seed: 9 },
            }];
            let mut empty_delta = poisson_scenario();
            empty_delta.algorithm = algorithm;
            empty_delta.model = model;
            empty_delta.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Delta {
                    add: Vec::new(),
                    remove: Vec::new(),
                },
            }];
            let a = Session::from_scenario(&rewire).run(|_| {}).unwrap();
            let b = Session::from_scenario(&empty_delta).run(|_| {}).unwrap();
            assert_eq!(
                a.trajectory, b.trajectory,
                "{algorithm:?}/{model:?}: rewire vs empty delta"
            );
            assert_eq!(a.dummy_created, b.dummy_created);
        }
    }

    #[test]
    fn delta_churn_survives_checkpoint_resume() {
        // Resume across a delta-churn entry: the fast-forward takes the
        // full-rebuild path (its ChurnStep carries the materialised graph),
        // and must land on the same bytes as the uninterrupted run.
        for (algorithm, model, tag) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos, "delta_a1fos"),
            (AlgorithmSpec::Alg2, ModelSpec::Sos, "delta_a2sos"),
        ] {
            let mut scenario = poisson_scenario();
            scenario.algorithm = algorithm;
            scenario.model = model;
            scenario.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Delta {
                    add: vec![(0, 14), (7, 29)],
                    remove: vec![(0, 1)],
                },
            }];
            let (outcome, snap25, snap50) = run_with_checkpoints(&scenario, tag);
            let reference = outcome.to_json().render_pretty();
            for (snap, label) in [(snap25, "round 25"), (snap50, "round 50")] {
                for shards in [None, Some(3)] {
                    let snap = snapshot::parse(&snapshot::render(&snap)).unwrap();
                    let resumed = Session::from_snapshot(snap)
                        .shards(shards)
                        .run(|_| {})
                        .unwrap();
                    assert_eq!(
                        resumed.to_json().render_pretty(),
                        reference,
                        "{tag}: resume at {label}, shards {shards:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn resume_streams_only_post_resume_samples() {
        let scenario = churned_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        let (outcome, snap25, _) = run_with_checkpoints(&scenario, "stream");
        let mut streamed = Vec::new();
        let resumed = Session::from_snapshot(snap25)
            .run(|s| streamed.push(s.clone()))
            .unwrap();
        // The restored prefix (rounds 0 and 20) is already in the
        // trajectory; the callback sees only rounds sampled after 25.
        assert_eq!(
            streamed.iter().map(|s| s.round).collect::<Vec<_>>(),
            vec![40, 60]
        );
        assert_eq!(resumed.trajectory, outcome.trajectory);
    }

    #[test]
    fn resume_composes_with_channel_and_merge_producers() {
        let scenario = churned_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        let (outcome, snap25, snap50) = run_with_checkpoints(&scenario, "producers");
        for (snap, producer, label) in [
            (&snap25, Producer::Channel { capacity: 2 }, "channel@25"),
            (&snap50, Producer::Channel { capacity: 1 }, "channel@50"),
            (
                &snap25,
                Producer::Merge {
                    feeds: 3,
                    capacity: 2,
                },
                "merge@25",
            ),
        ] {
            let resumed = Session::from_snapshot(snap.clone())
                .producer(producer)
                .run(|_| {})
                .unwrap();
            // Async producers attach a timing-dependent ingest report, so
            // the comparison is on the deterministic trajectory.
            assert_eq!(resumed.trajectory, outcome.trajectory, "{label}");
            assert!(resumed.ingest.is_some(), "{label}");
        }
    }

    #[test]
    fn resume_records_the_complete_trace() {
        let scenario = churned_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        let dir = std::env::temp_dir();
        let full = dir.join("lb_resume_record_full.trace.jsonl");
        let resumed_path = dir.join("lb_resume_record_resumed.trace.jsonl");

        let (_, snap25, _) = run_with_checkpoints(&scenario, "record");
        Session::from_scenario(&scenario)
            .record(full.clone())
            .run(|_| {})
            .unwrap();
        Session::from_snapshot(snap25)
            .record(resumed_path.clone())
            .run(|_| {})
            .unwrap();

        // The fast-forwarded prefix is re-recorded: the resumed trace is the
        // complete trace, byte for byte.
        assert_eq!(
            std::fs::read(&full).unwrap(),
            std::fs::read(&resumed_path).unwrap()
        );
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&resumed_path).ok();
    }

    #[test]
    fn resume_rejects_contradictory_inputs() {
        let scenario = churned_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        let (_, snap25, snap50) = run_with_checkpoints(&scenario, "reject");

        // A seed override contradicts the snapshot's pinned seed.
        let err = Session::from_snapshot(snap25.clone())
            .seed(9)
            .run(|_| {})
            .unwrap_err();
        assert!(matches!(err, BenchError::Usage(_)), "{err:?}");
        assert!(
            err.to_string().contains("cannot override the seed"),
            "{err}"
        );

        // An out-of-range shard override is rejected up front.
        let err = Session::from_snapshot(snap25.clone())
            .shards(0)
            .run(|_| {})
            .unwrap_err();
        assert!(matches!(err, BenchError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("shards"), "{err}");

        // A snapshot whose embedded scenario builds a different engine is a
        // mismatch, caught before any state is restored.
        let mut flipped = scenario.clone();
        flipped.algorithm = AlgorithmSpec::Alg2;
        let bad = Snapshot {
            scenario: flipped.to_json(),
            ..snap25
        };
        let err = Session::from_snapshot(bad).run(|_| {}).unwrap_err();
        assert!(matches!(err, BenchError::Protocol(_)), "{err:?}");
        assert!(err.to_string().contains("does not match this run"), "{err}");

        // A capture round past the scenario's horizon is corrupt.
        let mut short = scenario.clone();
        short.rounds = 40;
        let bad = Snapshot {
            scenario: short.to_json(),
            ..snap50
        };
        let err = Session::from_snapshot(bad).run(|_| {}).unwrap_err();
        assert!(matches!(err, BenchError::Protocol(_)), "{err:?}");
        assert!(err.to_string().contains("runs only 40"), "{err}");
    }

    #[test]
    fn checkpoint_options_must_come_as_a_pair() {
        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_ckpt_pairing.jsonl");
        let err = Session::from_scenario(&scenario)
            .checkpoint(path.clone(), None)
            .run(|_| {})
            .unwrap_err();
        assert!(err.to_string().contains("cadence"), "{err}");
        let err = Session::from_scenario(&scenario)
            .checkpoint(None, 5)
            .run(|_| {})
            .unwrap_err();
        assert!(err.to_string().contains("checkpoint path"), "{err}");
        let err = Session::from_scenario(&scenario)
            .checkpoint(path, 0)
            .run(|_| {})
            .unwrap_err();
        assert!(err.to_string().contains("at least one round"), "{err}");
    }

    #[test]
    fn resume_replay_composes_with_trace_checkpoints() {
        use lb_workloads::source::DEFAULT_POLL_INTERVAL;
        use lb_workloads::TraceSource;
        use std::time::Duration;

        let scenario = churned_scenario(AlgorithmSpec::Alg1, ModelSpec::Fos);
        let dir = std::env::temp_dir();
        let trace_path = dir.join("lb_resume_trace_ckpt.trace.jsonl");
        let rotating = dir.join("lb_resume_trace_ckpt.snap.jsonl");

        // One recorded, checkpointed run: the trace and the snapshot come
        // from the same execution, so they embed the same scenario.
        let reference = Session::from_scenario(&scenario)
            .record(trace_path.clone())
            .checkpoint(rotating.clone(), 25)
            .run(|_| {})
            .unwrap();
        let mut early: Option<Snapshot> = None;
        // Re-harvest the round-25 snapshot from a second identical run (the
        // first one's rotating file now holds round 50).
        Session::from_scenario(&scenario)
            .checkpoint(rotating.clone(), 25)
            .run(|sample| {
                if sample.round == 40 && early.is_none() {
                    early = Some(snapshot::load(&rotating).unwrap());
                }
            })
            .unwrap();
        let snap25 = early.expect("round-25 snapshot harvested");
        assert_eq!(snap25.round, 25);

        // Full replay from the top: the pre-resume prefix is drained and
        // discarded.
        let source = TraceSource::open(&trace_path).unwrap();
        let resumed = Session::from_snapshot(snap25.clone())
            .stream(Box::new(source))
            .run(|_| {})
            .unwrap();
        assert_eq!(resumed.trajectory, reference.trajectory);

        // Checkpoint-composed replay: walk the source up to the resume
        // round, take its checkpoint, reopen there — the already-applied
        // records are never re-read, and the drained prefix rounds come
        // back empty. Byte-identical, at a different shard count.
        let mut walker = TraceSource::open(&trace_path).unwrap();
        let carried = walker.scenario().clone();
        let mut batch = RoundEvents::default();
        let boundary = loop {
            let at = walker.checkpoint();
            match walker.next_round(&mut batch).unwrap() {
                Some(round) if (round as usize) < snap25.round as usize => continue,
                _ => break at,
            }
        };
        let source = TraceSource::resume(
            &trace_path,
            carried,
            boundary,
            Duration::from_millis(2_000),
            DEFAULT_POLL_INTERVAL,
        )
        .unwrap();
        let resumed = Session::from_snapshot(snap25)
            .stream(Box::new(source))
            .shards(2)
            .run(|_| {})
            .unwrap();
        assert_eq!(
            resumed.to_json().render_pretty(),
            reference.to_json().render_pretty()
        );

        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&rotating).ok();
    }
}
