//! Scenario driver: binds a [`Scenario`] spec to a dynamic flow-imitation
//! engine and runs it, streaming per-round metric samples and producing a
//! fully deterministic JSON result document.
//!
//! Everything downstream of the spec is seeded: graph construction, speed
//! assignment, the initial distribution and the arrival stream all derive
//! sub-seeds from one master seed, so the same scenario file and seed produce
//! **bit-identical** result JSON across runs and machines (the document
//! contains no timings). `tests/dynamic_scenarios.rs` pins this.
//!
//! Events can reach the engine three ways, all bit-identical for the same
//! scenario and seed (`tests/ingest_equivalence.rs`):
//!
//! * **sync** ([`Producer::Scenario`]) — the driver materialises each
//!   round's batch inline from the scenario's event stream;
//! * **channel** ([`Producer::Channel`]) — a producer thread streams the
//!   same batches through the bounded SPSC channel of [`lb_core::ingest`];
//! * **trace replay** ([`replay_trace`]) — the batches come from a recorded
//!   trace file ([`lb_workloads::trace`]) through the channel.
//!
//! Any run can be recorded ([`RunOptions::record`]) and replayed later.

use lb_analysis::Json;
use lb_core::continuous::{Fos, Sos};
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::ingest::{self, IngestSession};
use lb_core::{metrics, CoreError, InitialLoad, ShardedExecutor, Speeds};
use lb_graph::{AlphaScheme, Graph};
use lb_workloads::{
    pad_for_min_load, AlgorithmSpec, ChurnKind, ModelSpec, PadSpec, Scenario, ScenarioEvents,
    Trace, TraceWriter,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::harness::GraphClass;

/// Diffusion matrix scheme used by every scenario engine (the harness
/// default).
const SCHEME: AlphaScheme = AlphaScheme::MaxDegreePlusOne;

/// Sub-seed offsets, so the master seed decorrelates its consumers.
const GRAPH_SEED_OFFSET: u64 = 0x6EA9;
const SPEEDS_SEED_OFFSET: u64 = 0x0059_EED5;
const INITIAL_SEED_OFFSET: u64 = 0x1417;

/// One sampled point of a scenario trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSample {
    /// Completed rounds when the sample was taken (0 = initial state).
    pub round: usize,
    /// Node count at sample time (changes across resize churn).
    pub nodes: usize,
    /// Max-min makespan discrepancy (dummy load included, as in the paper).
    pub max_min: f64,
    /// Max-avg makespan discrepancy.
    pub max_avg: f64,
    /// Total real (workload) task weight in the system.
    pub real_weight: f64,
    /// Total dummy load in circulation.
    pub dummy_load: u64,
    /// Cumulative weight arrived via dynamic events.
    pub arrived_weight: u64,
    /// Cumulative weight completed via dynamic events.
    pub completed_weight: u64,
}

impl RoundSample {
    /// JSON form used in trajectory arrays.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::from(self.round)),
            ("nodes", Json::from(self.nodes)),
            ("max_min", Json::from(self.max_min)),
            ("max_avg", Json::from(self.max_avg)),
            ("real_weight", Json::from(self.real_weight)),
            ("dummy_load", Json::from(self.dummy_load)),
            ("arrived_weight", Json::from(self.arrived_weight)),
            ("completed_weight", Json::from(self.completed_weight)),
        ])
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The effective scenario (with the resolved seed).
    pub scenario: Scenario,
    /// Engine name, e.g. `"alg1(fos)"`.
    pub engine: String,
    /// Sampled trajectory (round 0, every `sample_every` rounds, final round).
    pub trajectory: Vec<RoundSample>,
    /// Total dummy load drawn from the infinite source over the run.
    pub dummy_created: u64,
}

impl ScenarioOutcome {
    /// The final sample.
    pub fn last(&self) -> &RoundSample {
        self.trajectory.last().expect("trajectory is never empty")
    }

    /// Renders the deterministic result document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("engine", Json::from(self.engine.clone())),
            (
                "trajectory",
                Json::Arr(self.trajectory.iter().map(RoundSample::to_json).collect()),
            ),
            (
                "final",
                Json::obj([
                    ("sample", self.last().to_json()),
                    ("dummy_created", Json::from(self.dummy_created)),
                ]),
            ),
        ])
    }
}

/// Resolves a scenario `topology.family` string to a harness graph class.
///
/// # Errors
///
/// Returns a message listing the known families for unknown names.
pub fn family_class(family: &str) -> Result<GraphClass, String> {
    match family {
        "arbitrary" => Ok(GraphClass::Arbitrary),
        "expander" => Ok(GraphClass::Expander),
        "hypercube" => Ok(GraphClass::Hypercube),
        "torus" => Ok(GraphClass::Torus),
        "ring_of_cliques" => Ok(GraphClass::RingOfCliques),
        "cycle" => Ok(GraphClass::Cycle),
        other => Err(format!(
            "unknown topology family {other:?} \
             (want arbitrary|expander|hypercube|torus|ring_of_cliques|cycle)"
        )),
    }
}

/// The four concrete engines a scenario can request. The enum (rather than a
/// `Box<dyn DynamicBalancer>`) exists because topology churn must rebuild the
/// concrete continuous process type.
enum Engine {
    Alg1Fos(FlowImitation<Fos>),
    Alg1Sos(FlowImitation<Sos>),
    Alg2Fos(RandomizedImitation<Fos>),
    Alg2Sos(RandomizedImitation<Sos>),
}

/// Applies `$body` to the engine inside any variant.
macro_rules! with_engine {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            Engine::Alg1Fos($e) => $body,
            Engine::Alg1Sos($e) => $body,
            Engine::Alg2Fos($e) => $body,
            Engine::Alg2Sos($e) => $body,
        }
    };
}

impl Engine {
    fn build(
        scenario: &Scenario,
        graph: Arc<Graph>,
        speeds: &Speeds,
        initial: &InitialLoad,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(match (scenario.algorithm, scenario.model) {
            (AlgorithmSpec::Alg1, ModelSpec::Fos) => Engine::Alg1Fos(FlowImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg1, ModelSpec::Sos) => Engine::Alg1Sos(FlowImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Fos) => Engine::Alg2Fos(RandomizedImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Sos) => Engine::Alg2Sos(RandomizedImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
        })
    }

    fn name(&self) -> &str {
        with_engine!(self, e => e.name())
    }

    /// One round: sequential, or sharded across the executor's workers.
    /// Trajectories are bit-identical either way (the sharding contract).
    fn step(&mut self, exec: Option<&mut ShardedExecutor>) {
        match exec {
            Some(exec) => with_engine!(self, e => e.step_sharded(exec)),
            None => with_engine!(self, e => e.step()),
        }
    }

    fn apply_events(&mut self, events: &RoundEvents) -> Result<(), CoreError> {
        with_engine!(self, e => e.apply_events(events).map(|_| ()))
    }

    fn loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.loads())
    }

    fn real_loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.real_loads())
    }

    fn dummy_load(&self) -> u64 {
        with_engine!(self, e => e.dummy_load())
    }

    fn dummy_created(&self) -> u64 {
        with_engine!(self, e => e.dummy_created())
    }

    fn speeds(&self) -> &Speeds {
        with_engine!(self, e => e.speeds())
    }

    fn node_count(&self) -> usize {
        with_engine!(self, e => e.graph().node_count())
    }

    fn arrived_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::arrived_weight(e))
    }

    fn completed_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::completed_weight(e))
    }

    /// Rebuilds the continuous process on `graph` and swaps it in (topology
    /// churn). `speeds` must already follow the carry-over rule (truncate /
    /// pad with unit speeds), matching what `replace_topology` re-derives.
    fn replace_topology(&mut self, graph: Arc<Graph>, speeds: &Speeds) -> Result<(), CoreError> {
        match self {
            Engine::Alg1Fos(e) => e.replace_topology(Fos::new(graph, speeds, SCHEME)?),
            Engine::Alg1Sos(e) => {
                e.replace_topology(Sos::with_optimal_beta(graph, speeds, SCHEME)?)
            }
            Engine::Alg2Fos(e) => e.replace_topology(Fos::new(graph, speeds, SCHEME)?),
            Engine::Alg2Sos(e) => {
                e.replace_topology(Sos::with_optimal_beta(graph, speeds, SCHEME)?)
            }
        }
    }
}

/// Speeds after churn: entries carry over index-by-index, removed nodes drop
/// theirs, new nodes get the unit speed (the engine's carry-over rule).
fn carried_speeds(current: &Speeds, n: usize) -> Speeds {
    let mut values = current.as_slice().to_vec();
    values.resize(n, 1);
    Speeds::new(values).expect("carried speeds stay positive")
}

/// How a run's events reach the engine. Both modes apply the same batches at
/// the same round boundaries, so trajectories are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Producer {
    /// The synchronous path: the driver materialises each round's batch
    /// inline from the scenario's event stream (the default).
    #[default]
    Scenario,
    /// The async ingestion path: a producer thread generates the same
    /// stream and feeds it through a bounded SPSC channel
    /// ([`lb_core::ingest`]); the driver drains one round's batch between
    /// rounds.
    Channel {
        /// Maximum in-flight batches (how far the producer may run ahead).
        capacity: usize,
    },
}

/// Default channel capacity for [`Producer::Channel`] and [`replay_trace`].
pub const DEFAULT_CHANNEL_CAPACITY: usize = 32;

/// Options for [`run_scenario_with`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Replaces the spec's seed (the CLI's `--seed`); the effective value is
    /// recorded in the outcome.
    pub seed: Option<u64>,
    /// Replaces the spec's shard count (the CLI's `--shards` /
    /// `LB_BENCH_SHARDS`). Shard count never changes the result — only
    /// wall-clock time.
    pub shards: Option<usize>,
    /// How events reach the engine.
    pub producer: Producer,
    /// Record the applied event stream to this trace file
    /// ([`lb_workloads::trace`]); the trace embeds the effective scenario
    /// and replays bit-identically via [`replay_trace`]. Recording never
    /// perturbs the run itself.
    pub record: Option<PathBuf>,
}

/// Where the driver's per-round batches come from.
enum EventSource {
    /// Inline generation from the scenario stream.
    Sync(ScenarioEvents),
    /// A producer thread on the other end of the ingest channel.
    Channel {
        session: IngestSession,
        producer: Option<JoinHandle<()>>,
    },
}

impl EventSource {
    /// Fills `out` with the batch for `round` (empty when the round has no
    /// events).
    fn fill_round(&mut self, round: usize, out: &mut RoundEvents) -> Result<(), String> {
        match self {
            EventSource::Sync(stream) => {
                stream.fill_round(round, out);
                Ok(())
            }
            EventSource::Channel { session, .. } => session
                .fill_round(round as u64, out)
                .map_err(|err| err.to_string()),
        }
    }

    /// Propagates topology churn to the source. Only the inline stream needs
    /// telling — channel producers follow a precomputed speeds schedule.
    fn set_topology(&mut self, speeds: &Speeds) {
        if let EventSource::Sync(stream) = self {
            stream.set_topology(speeds);
        }
    }

    /// Tears the source down, joining the producer thread (its send fails as
    /// soon as the session drops, so this never blocks on a full queue).
    fn finish(self) -> Result<(), String> {
        if let EventSource::Channel { session, producer } = self {
            drop(session);
            if let Some(handle) = producer {
                handle
                    .join()
                    .map_err(|_| "ingest producer thread panicked".to_string())?;
            }
        }
        Ok(())
    }
}

/// The churn plan, precomputed once per run: for every churn event, the
/// rebuilt topology and the speeds the engine will carry on it. The driver
/// consumes the graphs — each churn graph is built exactly once, whichever
/// producer mode runs — and a channel producer follows the speeds without
/// hearing back from the engine thread. (Graph generators are seeded per
/// event, so building up front is bit-identical to building lazily.)
fn churn_schedule(
    class: GraphClass,
    scenario: &Scenario,
    initial: &Speeds,
) -> Result<Vec<(usize, Arc<Graph>, Speeds)>, String> {
    let mut schedule = Vec::with_capacity(scenario.churn.len());
    let mut current = initial.clone();
    for event in &scenario.churn {
        let (target_n, seed) = match event.kind {
            // Rewire keeps the current size; the speeds length tracks the
            // engine's node count exactly.
            ChurnKind::Rewire { seed } => (current.len(), seed),
            ChurnKind::Resize { target_n, seed } => (target_n, seed),
        };
        let graph: Arc<Graph> = class
            .build(target_n, seed)
            .map_err(|err| format!("churn at round {}: {err}", event.round))?
            .into();
        current = carried_speeds(&current, graph.node_count());
        schedule.push((event.round, graph, current.clone()));
    }
    Ok(schedule)
}

/// Spawns the producer thread for [`Producer::Channel`]: generates the
/// scenario's event stream round by round and sends each non-empty batch
/// through the channel, recycling drained buffers so steady-state production
/// allocates nothing.
fn spawn_scenario_producer(
    mut stream: ScenarioEvents,
    schedule: Vec<(usize, Speeds)>,
    rounds: usize,
    capacity: usize,
) -> (IngestSession, JoinHandle<()>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        let mut schedule = schedule.into_iter().peekable();
        let mut spare: Option<RoundEvents> = None;
        for round in 0..rounds {
            while schedule.peek().is_some_and(|(r, _)| *r == round) {
                let (_, speeds) = schedule.next().expect("peeked entry");
                stream.set_topology(&speeds);
            }
            let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
            stream.fill_round(round, &mut batch);
            if batch.is_empty() {
                spare = Some(batch);
            } else if tx.send(round as u64, batch).is_err() {
                return; // consumer hung up; the driver reports its own error
            }
        }
    });
    (IngestSession::new(rx), handle)
}

/// Spawns the producer thread for [`replay_trace`]: feeds the recorded round
/// batches through the channel in order.
fn spawn_trace_producer(
    rounds: Vec<lb_workloads::TraceRound>,
    capacity: usize,
) -> (IngestSession, JoinHandle<()>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        for record in rounds {
            let mut batch = tx.buffer();
            record.fill(&mut batch);
            if batch.is_empty() {
                continue; // writers skip empty batches, but tolerate them
            }
            if tx.send(record.round, batch).is_err() {
                return;
            }
        }
    });
    (IngestSession::new(rx), handle)
}

/// Runs `scenario`, calling `on_sample` for every recorded trajectory point
/// (round 0, every `sample_every` rounds, and the final round). Equivalent
/// to [`run_scenario_with`] with default [`RunOptions`] plus the given
/// overrides.
///
/// # Errors
///
/// Returns a message for invalid specs, unknown families, graph-construction
/// failures and engine errors (e.g. alg2 with weighted arrivals).
pub fn run_scenario(
    scenario: &Scenario,
    seed_override: Option<u64>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    run_scenario_with(
        scenario,
        &RunOptions {
            seed: seed_override,
            shards: shards_override,
            ..RunOptions::default()
        },
        on_sample,
    )
}

/// Runs `scenario` under `options`: seed/shard overrides, the sync or
/// channel event path, and optional trace recording. The effective scenario
/// (overrides applied) is recorded in the outcome, and — for the same
/// scenario and seed — the result document is bit-identical across machines,
/// shard counts and producer modes.
///
/// # Errors
///
/// Returns a message for invalid specs, unknown families,
/// graph-construction failures, engine errors and trace-file I/O failures.
pub fn run_scenario_with(
    scenario: &Scenario,
    options: &RunOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let mut scenario = scenario.clone();
    if let Some(seed) = options.seed {
        scenario.seed = seed;
    }
    if let Some(shards) = options.shards {
        scenario.shards = shards;
    }
    scenario.validate()?;
    execute(scenario, None, options, on_sample)
}

/// Replays a recorded trace through the async ingestion channel: the
/// embedded scenario rebuilds the graph, speeds and initial load, and the
/// recorded batches drive the engine instead of the scenario's generator.
/// For a trace recorded from the same scenario and seed, the result document
/// is byte-identical to the original run's.
///
/// `shards_override` replaces the embedded shard count (shard count never
/// changes the result). The trace pins the seed — there is deliberately no
/// seed override, since the recorded task ids and the initial load both
/// derive from it. The trace is consumed: its recorded rounds move to the
/// producer thread without copying (clone first to replay again).
///
/// # Errors
///
/// Returns a message for invalid embedded scenarios and engine errors.
pub fn replay_trace(
    trace: Trace,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let mut scenario = trace.scenario.clone();
    if let Some(shards) = shards_override {
        scenario.shards = shards;
    }
    scenario.validate()?;
    execute(scenario, Some(trace), &RunOptions::default(), on_sample)
}

/// The shared driver loop behind [`run_scenario_with`] and [`replay_trace`]:
/// `scenario` is already effective (overrides applied, validated); `replay`
/// selects trace batches over the scenario's own stream.
fn execute(
    scenario: Scenario,
    replay: Option<Trace>,
    options: &RunOptions,
    mut on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let seed = scenario.seed;

    let class = family_class(&scenario.topology.family)?;
    let graph: Arc<Graph> = class
        .build(
            scenario.topology.target_n,
            seed.wrapping_add(GRAPH_SEED_OFFSET),
        )
        .map_err(|err| format!("building {}: {err}", scenario.topology.family))?
        .into();
    let n = graph.node_count();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(SPEEDS_SEED_OFFSET));
    let speeds = scenario.speeds.to_model().generate(n, &mut rng);

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(INITIAL_SEED_OFFSET));
    let total_tokens = scenario.initial.tokens_per_node * n as u64;
    let unpadded = scenario
        .initial
        .distribution
        .generate(n, total_tokens, &mut rng);
    let pad = match scenario.initial.pad {
        PadSpec::Tokens(t) => t,
        PadSpec::Degree => {
            graph.max_degree() as u64 * unpadded.max_weight().max(scenario.arrivals.max_weight())
        }
    };
    let initial = pad_for_min_load(&unpadded, &speeds, pad);
    let first_task_id = initial.task_count() as u64;

    let mut engine = Engine::build(&scenario, Arc::clone(&graph), &speeds, &initial, seed)
        .map_err(|err| err.to_string())?;
    // One plan for every churn event, built up front: the driver swaps in
    // the prebuilt graphs, and a channel producer follows the speeds.
    let schedule = churn_schedule(class, &scenario, &speeds)?;
    let mut source = match replay {
        Some(trace) => {
            let (session, handle) = spawn_trace_producer(trace.rounds, DEFAULT_CHANNEL_CAPACITY);
            EventSource::Channel {
                session,
                producer: Some(handle),
            }
        }
        None => {
            let stream = ScenarioEvents::new(&scenario, &speeds, first_task_id);
            match options.producer {
                Producer::Scenario => EventSource::Sync(stream),
                Producer::Channel { capacity } => {
                    let speeds_schedule = schedule
                        .iter()
                        .map(|(round, _, speeds)| (*round, speeds.clone()))
                        .collect();
                    let (session, handle) =
                        spawn_scenario_producer(stream, speeds_schedule, scenario.rounds, capacity);
                    EventSource::Channel {
                        session,
                        producer: Some(handle),
                    }
                }
            }
        }
    };
    let mut writer = options
        .record
        .as_ref()
        .map(|path| TraceWriter::create(path, &scenario))
        .transpose()?;
    let mut events = RoundEvents::default();
    // One executor for the whole run; it rebinds itself across churn. A
    // single shard means plain sequential stepping, no worker threads.
    let mut executor = (scenario.shards > 1).then(|| ShardedExecutor::new(scenario.shards));

    let sample_of = |engine: &Engine, round: usize| -> RoundSample {
        let loads = engine.loads();
        let speeds = engine.speeds();
        RoundSample {
            round,
            nodes: engine.node_count(),
            max_min: metrics::max_min_discrepancy(&loads, speeds),
            max_avg: metrics::max_avg_discrepancy(&loads, speeds),
            real_weight: engine.real_loads().iter().sum(),
            dummy_load: engine.dummy_load(),
            arrived_weight: engine.arrived_weight(),
            completed_weight: engine.completed_weight(),
        }
    };

    let mut trajectory = Vec::new();
    let mut record = |engine: &Engine, round: usize, trajectory: &mut Vec<RoundSample>| {
        let sample = sample_of(engine, round);
        on_sample(&sample);
        trajectory.push(sample);
    };
    record(&engine, 0, &mut trajectory);

    let mut churn = schedule.into_iter().peekable();
    for round in 0..scenario.rounds {
        while churn.peek().is_some_and(|(r, _, _)| *r == round) {
            let (_, new_graph, new_speeds) = churn.next().expect("peeked entry");
            engine
                .replace_topology(new_graph, &new_speeds)
                .map_err(|err| format!("churn at round {round}: {err}"))?;
            source.set_topology(engine.speeds());
        }
        source.fill_round(round, &mut events)?;
        if let Some(writer) = writer.as_mut() {
            writer.record_round(round as u64, &events)?;
        }
        if !events.is_empty() {
            engine
                .apply_events(&events)
                .map_err(|err| format!("events at round {round}: {err}"))?;
        }
        engine.step(executor.as_mut());
        let done = round + 1;
        if done % scenario.sample_every == 0 || done == scenario.rounds {
            record(&engine, done, &mut trajectory);
        }
    }
    source.finish()?;
    if let Some(writer) = writer {
        writer.finish()?;
    }

    Ok(ScenarioOutcome {
        engine: engine.name().to_string(),
        scenario,
        trajectory,
        dummy_created: engine.dummy_created(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_workloads::{
        ArrivalSpec, ChurnEvent, InitialSpec, ServiceSpec, SpeedSpec, TokenDistribution,
        TopologySpec,
    };

    fn poisson_scenario() -> Scenario {
        Scenario {
            name: "driver_test".into(),
            seed: 5,
            rounds: 60,
            sample_every: 20,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 36,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 6,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
        }
    }

    #[test]
    fn trajectory_samples_first_and_last_rounds() {
        let outcome = run_scenario(&poisson_scenario(), None, None, |_| {}).unwrap();
        assert_eq!(outcome.trajectory[0].round, 0);
        assert_eq!(outcome.last().round, 60);
        // 0, 20, 40, 60.
        assert_eq!(outcome.trajectory.len(), 4);
        assert_eq!(outcome.engine, "alg1(fos)");
        assert!(outcome.last().arrived_weight > 0);
        assert!(outcome.last().completed_weight > 0);
    }

    #[test]
    fn same_seed_bit_identical_different_seed_differs() {
        let scenario = poisson_scenario();
        let a = run_scenario(&scenario, None, None, |_| {}).unwrap();
        let b = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.to_json().render_pretty(), b.to_json().render_pretty());
        let c = run_scenario(&scenario, Some(99), None, |_| {}).unwrap();
        assert_eq!(c.scenario.seed, 99);
        assert_ne!(a.trajectory, c.trajectory);
    }

    #[test]
    fn streaming_callback_sees_every_sample() {
        let mut streamed = Vec::new();
        let outcome = run_scenario(&poisson_scenario(), None, None, |s| {
            streamed.push(s.clone())
        })
        .unwrap();
        assert_eq!(streamed, outcome.trajectory);
    }

    #[test]
    fn churn_resize_changes_node_count_mid_run() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Resize {
                target_n: 16,
                seed: 3,
            },
        }];
        let outcome = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert_eq!(outcome.trajectory[1].nodes, 36, "before churn");
        assert_eq!(outcome.last().nodes, 16, "after churn");
    }

    #[test]
    fn shard_override_never_changes_the_trajectory() {
        // The driver-level face of the sharding contract: the same scenario
        // and seed produce identical trajectories for every shard count,
        // across all four engine combos (and churn), including via the
        // `--shards` override path.
        for (algorithm, model) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos),
            (AlgorithmSpec::Alg1, ModelSpec::Sos),
            (AlgorithmSpec::Alg2, ModelSpec::Fos),
            (AlgorithmSpec::Alg2, ModelSpec::Sos),
        ] {
            let mut scenario = poisson_scenario();
            scenario.algorithm = algorithm;
            scenario.model = model;
            scenario.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Rewire { seed: 9 },
            }];
            let sequential = run_scenario(&scenario, None, None, |_| {}).unwrap();
            for shards in [2, 5] {
                let sharded = run_scenario(&scenario, None, Some(shards), |_| {}).unwrap();
                assert_eq!(
                    sequential.trajectory, sharded.trajectory,
                    "{algorithm:?}/{model:?} shards={shards}"
                );
                assert_eq!(sharded.scenario.shards, shards, "override recorded");
            }
        }
    }

    #[test]
    fn zero_shard_override_is_rejected() {
        let err = run_scenario(&poisson_scenario(), None, Some(0), |_| {}).unwrap_err();
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn channel_producer_matches_sync_bit_for_bit() {
        // The ingestion contract at driver level: the same scenario and seed
        // produce byte-identical result JSON whether events are generated
        // inline or streamed through the SPSC channel — including across
        // churn, which the channel producer follows via its precomputed
        // speeds schedule.
        let mut scenario = poisson_scenario();
        scenario.churn = vec![
            ChurnEvent {
                round: 20,
                kind: ChurnKind::Rewire { seed: 9 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 3,
                },
            },
        ];
        let sync = run_scenario(&scenario, None, None, |_| {}).unwrap();
        for capacity in [1, 4] {
            let channel = run_scenario_with(
                &scenario,
                &RunOptions {
                    producer: Producer::Channel { capacity },
                    ..RunOptions::default()
                },
                |_| {},
            )
            .unwrap();
            assert_eq!(
                sync.to_json().render_pretty(),
                channel.to_json().render_pretty(),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn recorded_traces_replay_byte_identically() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 5 },
        }];
        let path = std::env::temp_dir().join("lb_dynamic_record_replay.trace.jsonl");
        let recorded = run_scenario_with(
            &scenario,
            &RunOptions {
                seed: Some(11),
                record: Some(path.clone()),
                ..RunOptions::default()
            },
            |_| {},
        )
        .unwrap();

        // Recording never perturbs the run.
        let plain = run_scenario(&scenario, Some(11), None, |_| {}).unwrap();
        assert_eq!(
            plain.to_json().render_pretty(),
            recorded.to_json().render_pretty()
        );

        // Replay reproduces the run byte for byte, and a shard override only
        // changes the recorded shard count, never the trajectory.
        let trace = lb_workloads::Trace::load(&path).unwrap();
        assert_eq!(trace.scenario.seed, 11, "header carries the effective seed");
        let replayed = replay_trace(trace.clone(), None, |_| {}).unwrap();
        assert_eq!(
            recorded.to_json().render_pretty(),
            replayed.to_json().render_pretty()
        );
        let sharded = replay_trace(trace, Some(3), |_| {}).unwrap();
        assert_eq!(sharded.scenario.shards, 3);
        assert_eq!(recorded.trajectory, sharded.trajectory);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_invalid_shard_overrides() {
        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_dynamic_replay_shards.trace.jsonl");
        run_scenario_with(
            &scenario,
            &RunOptions {
                record: Some(path.clone()),
                ..RunOptions::default()
            },
            |_| {},
        )
        .unwrap();
        let trace = lb_workloads::Trace::load(&path).unwrap();
        let err = replay_trace(trace, Some(0), |_| {}).unwrap_err();
        assert!(err.contains("shards"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alg2_sos_engine_runs() {
        let mut scenario = poisson_scenario();
        scenario.algorithm = AlgorithmSpec::Alg2;
        scenario.model = ModelSpec::Sos;
        let outcome = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert!(
            outcome.engine.starts_with("alg2(sos"),
            "engine was {}",
            outcome.engine
        );
    }

    #[test]
    fn unknown_family_is_reported() {
        let mut scenario = poisson_scenario();
        scenario.topology.family = "smallworld".into();
        let err = run_scenario(&scenario, None, None, |_| {}).unwrap_err();
        assert!(err.contains("smallworld"));
    }
}
