//! Scenario driver: binds a [`Scenario`] spec to a dynamic flow-imitation
//! engine and runs it, streaming per-round metric samples and producing a
//! fully deterministic JSON result document.
//!
//! Everything downstream of the spec is seeded: graph construction, speed
//! assignment, the initial distribution and the arrival stream all derive
//! sub-seeds from one master seed, so the same scenario file and seed produce
//! **bit-identical** result JSON across runs and machines (the document
//! contains no timings). `tests/dynamic_scenarios.rs` pins this.
//!
//! Events can reach the engine five ways, all bit-identical for the same
//! scenario and seed (`tests/ingest_equivalence.rs`,
//! `tests/merge_equivalence.rs`):
//!
//! * **sync** ([`Producer::Scenario`]) — the driver materialises each
//!   round's batch inline from the scenario's event stream;
//! * **channel** ([`Producer::Channel`]) — a producer thread streams the
//!   same batches through the bounded SPSC channel of [`lb_core::ingest`];
//! * **merge** ([`Producer::Merge`]) — N producer threads each stream a
//!   contiguous per-round slice of the same batches over their own channel,
//!   k-way merged back into round order by [`lb_core::ingest::merge`];
//! * **trace replay** ([`replay_trace`]) — the batches come from a recorded
//!   trace file ([`lb_workloads::trace`]) through the channel;
//! * **byte-stream replay** ([`replay_source`]) — the batches are parsed
//!   incrementally from a live byte stream ([`lb_workloads::source`]: a
//!   growing file tail or any pipe/socket reader) on the producer thread.
//!
//! Any run can be recorded ([`RunOptions::record`]) and replayed later.
//! Channel-fed runs additionally report backpressure metrics (blocked
//! sends/duration per feed, high-water depth) through
//! [`ScenarioOutcome::ingest`] — out of band, because those counters are
//! timing-dependent while the result document is pinned byte-identical.

use lb_analysis::Json;
use lb_core::continuous::{Fos, Sos};
use lb_core::discrete::{
    DiscreteBalancer, DynamicBalancer, FlowImitation, RandomizedImitation, RoundEvents, TaskPicker,
};
use lb_core::ingest::merge::MergeSession;
use lb_core::ingest::{self, ChannelMetrics, IngestSession};
use lb_core::{metrics, CoreError, InitialLoad, ShardedExecutor, Speeds};
use lb_graph::{AlphaScheme, Graph};
use lb_workloads::{
    pad_for_min_load, AlgorithmSpec, ChurnKind, ModelSpec, PadSpec, RoundSource, Scenario,
    ScenarioEvents, Trace, TraceWriter,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::harness::GraphClass;

/// Diffusion matrix scheme used by every scenario engine (the harness
/// default).
const SCHEME: AlphaScheme = AlphaScheme::MaxDegreePlusOne;

/// Sub-seed offsets, so the master seed decorrelates its consumers.
const GRAPH_SEED_OFFSET: u64 = 0x6EA9;
const SPEEDS_SEED_OFFSET: u64 = 0x0059_EED5;
const INITIAL_SEED_OFFSET: u64 = 0x1417;

/// One sampled point of a scenario trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSample {
    /// Completed rounds when the sample was taken (0 = initial state).
    pub round: usize,
    /// Node count at sample time (changes across resize churn).
    pub nodes: usize,
    /// Max-min makespan discrepancy (dummy load included, as in the paper).
    pub max_min: f64,
    /// Max-avg makespan discrepancy.
    pub max_avg: f64,
    /// Total real (workload) task weight in the system.
    pub real_weight: f64,
    /// Total dummy load in circulation.
    pub dummy_load: u64,
    /// Cumulative weight arrived via dynamic events.
    pub arrived_weight: u64,
    /// Cumulative weight completed via dynamic events.
    pub completed_weight: u64,
}

impl RoundSample {
    /// JSON form used in trajectory arrays.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("round", Json::from(self.round)),
            ("nodes", Json::from(self.nodes)),
            ("max_min", Json::from(self.max_min)),
            ("max_avg", Json::from(self.max_avg)),
            ("real_weight", Json::from(self.real_weight)),
            ("dummy_load", Json::from(self.dummy_load)),
            ("arrived_weight", Json::from(self.arrived_weight)),
            ("completed_weight", Json::from(self.completed_weight)),
        ])
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The effective scenario (with the resolved seed).
    pub scenario: Scenario,
    /// Engine name, e.g. `"alg1(fos)"`.
    pub engine: String,
    /// Sampled trajectory (round 0, every `sample_every` rounds, final round).
    pub trajectory: Vec<RoundSample>,
    /// Total dummy load drawn from the infinite source over the run.
    pub dummy_created: u64,
    /// Ingestion report for channel-fed runs (`None` on the sync path):
    /// per-feed batch/event totals and backpressure metrics. Deliberately
    /// **not** part of [`to_json`](ScenarioOutcome::to_json) — the counters
    /// are timing-dependent, while the result document is pinned
    /// byte-identical across producer modes; emit this out of band (stderr,
    /// `--ingest-stats`).
    pub ingest: Option<Json>,
}

impl ScenarioOutcome {
    /// The final sample.
    pub fn last(&self) -> &RoundSample {
        self.trajectory.last().expect("trajectory is never empty")
    }

    /// Renders the deterministic result document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("engine", Json::from(self.engine.clone())),
            (
                "trajectory",
                Json::Arr(self.trajectory.iter().map(RoundSample::to_json).collect()),
            ),
            (
                "final",
                Json::obj([
                    ("sample", self.last().to_json()),
                    ("dummy_created", Json::from(self.dummy_created)),
                ]),
            ),
        ])
    }
}

/// Resolves a scenario `topology.family` string to a harness graph class.
///
/// # Errors
///
/// Returns a message listing the known families for unknown names.
pub fn family_class(family: &str) -> Result<GraphClass, String> {
    match family {
        "arbitrary" => Ok(GraphClass::Arbitrary),
        "expander" => Ok(GraphClass::Expander),
        "hypercube" => Ok(GraphClass::Hypercube),
        "torus" => Ok(GraphClass::Torus),
        "ring_of_cliques" => Ok(GraphClass::RingOfCliques),
        "cycle" => Ok(GraphClass::Cycle),
        other => Err(format!(
            "unknown topology family {other:?} \
             (want arbitrary|expander|hypercube|torus|ring_of_cliques|cycle)"
        )),
    }
}

/// The four concrete engines a scenario can request. The enum (rather than a
/// `Box<dyn DynamicBalancer>`) exists because topology churn must rebuild the
/// concrete continuous process type.
enum Engine {
    Alg1Fos(FlowImitation<Fos>),
    Alg1Sos(FlowImitation<Sos>),
    Alg2Fos(RandomizedImitation<Fos>),
    Alg2Sos(RandomizedImitation<Sos>),
}

/// Applies `$body` to the engine inside any variant.
macro_rules! with_engine {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            Engine::Alg1Fos($e) => $body,
            Engine::Alg1Sos($e) => $body,
            Engine::Alg2Fos($e) => $body,
            Engine::Alg2Sos($e) => $body,
        }
    };
}

impl Engine {
    fn build(
        scenario: &Scenario,
        graph: Arc<Graph>,
        speeds: &Speeds,
        initial: &InitialLoad,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(match (scenario.algorithm, scenario.model) {
            (AlgorithmSpec::Alg1, ModelSpec::Fos) => Engine::Alg1Fos(FlowImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg1, ModelSpec::Sos) => Engine::Alg1Sos(FlowImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Fos) => Engine::Alg2Fos(RandomizedImitation::new(
                Fos::new(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
            (AlgorithmSpec::Alg2, ModelSpec::Sos) => Engine::Alg2Sos(RandomizedImitation::new(
                Sos::with_optimal_beta(graph, speeds, SCHEME)?,
                initial,
                speeds.clone(),
                seed,
            )?),
        })
    }

    fn name(&self) -> &str {
        with_engine!(self, e => e.name())
    }

    /// One round: sequential, or sharded across the executor's workers.
    /// Trajectories are bit-identical either way (the sharding contract).
    fn step(&mut self, exec: Option<&mut ShardedExecutor>) {
        match exec {
            Some(exec) => with_engine!(self, e => e.step_sharded(exec)),
            None => with_engine!(self, e => e.step()),
        }
    }

    fn apply_events(&mut self, events: &RoundEvents) -> Result<(), CoreError> {
        with_engine!(self, e => e.apply_events(events).map(|_| ()))
    }

    fn loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.loads())
    }

    fn real_loads(&self) -> Vec<f64> {
        with_engine!(self, e => e.real_loads())
    }

    fn dummy_load(&self) -> u64 {
        with_engine!(self, e => e.dummy_load())
    }

    fn dummy_created(&self) -> u64 {
        with_engine!(self, e => e.dummy_created())
    }

    fn speeds(&self) -> &Speeds {
        with_engine!(self, e => e.speeds())
    }

    fn node_count(&self) -> usize {
        with_engine!(self, e => e.graph().node_count())
    }

    fn arrived_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::arrived_weight(e))
    }

    fn completed_weight(&self) -> u64 {
        with_engine!(self, e => DynamicBalancer::completed_weight(e))
    }

    /// Rebuilds the continuous process on `graph` and swaps it in (topology
    /// churn). `speeds` must already follow the carry-over rule (truncate /
    /// pad with unit speeds), matching what `replace_topology` re-derives.
    fn replace_topology(&mut self, graph: Arc<Graph>, speeds: &Speeds) -> Result<(), CoreError> {
        match self {
            Engine::Alg1Fos(e) => e.replace_topology(Fos::new(graph, speeds, SCHEME)?),
            Engine::Alg1Sos(e) => {
                e.replace_topology(Sos::with_optimal_beta(graph, speeds, SCHEME)?)
            }
            Engine::Alg2Fos(e) => e.replace_topology(Fos::new(graph, speeds, SCHEME)?),
            Engine::Alg2Sos(e) => {
                e.replace_topology(Sos::with_optimal_beta(graph, speeds, SCHEME)?)
            }
        }
    }
}

/// Speeds after churn: entries carry over index-by-index, removed nodes drop
/// theirs, new nodes get the unit speed (the engine's carry-over rule).
fn carried_speeds(current: &Speeds, n: usize) -> Speeds {
    let mut values = current.as_slice().to_vec();
    values.resize(n, 1);
    Speeds::new(values).expect("carried speeds stay positive")
}

/// How a run's events reach the engine. Both modes apply the same batches at
/// the same round boundaries, so trajectories are bit-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Producer {
    /// The synchronous path: the driver materialises each round's batch
    /// inline from the scenario's event stream (the default).
    #[default]
    Scenario,
    /// The async ingestion path: a producer thread generates the same
    /// stream and feeds it through a bounded SPSC channel
    /// ([`lb_core::ingest`]); the driver drains one round's batch between
    /// rounds.
    Channel {
        /// Maximum in-flight batches (how far the producer may run ahead).
        capacity: usize,
    },
    /// The multi-producer path: `feeds` producer threads each generate the
    /// stream and send a contiguous per-round slice of every batch over
    /// their own bounded channel; the consumer side k-way merges the slices
    /// back into one round-ordered stream ([`lb_core::ingest::merge`]).
    /// Coalescing in feed index order reconstructs each batch exactly, so
    /// results stay byte-identical to the sync path.
    Merge {
        /// Number of producer feeds (1..=[`MAX_MERGE_FEEDS`]).
        feeds: usize,
        /// Per-feed channel capacity.
        capacity: usize,
    },
}

/// Default channel capacity for [`Producer::Channel`] and [`replay_trace`].
pub const DEFAULT_CHANNEL_CAPACITY: usize = 32;

/// Upper bound on [`Producer::Merge`] feeds: each feed is an OS thread, so
/// an absurd count must be a validation error, not a `thread::spawn` abort.
pub const MAX_MERGE_FEEDS: usize = 64;

/// Options for [`run_scenario_with`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Replaces the spec's seed (the CLI's `--seed`); the effective value is
    /// recorded in the outcome.
    pub seed: Option<u64>,
    /// Replaces the spec's shard count (the CLI's `--shards` /
    /// `LB_BENCH_SHARDS`). Shard count never changes the result — only
    /// wall-clock time.
    pub shards: Option<usize>,
    /// How events reach the engine.
    pub producer: Producer,
    /// Record the applied event stream to this trace file
    /// ([`lb_workloads::trace`]); the trace embeds the effective scenario
    /// and replays bit-identically via [`replay_trace`]. Recording never
    /// perturbs the run itself.
    pub record: Option<PathBuf>,
}

/// The JSON form of one feed's ingestion stats.
fn feed_stats_json(
    feed: usize,
    batches: u64,
    events: u64,
    drained: bool,
    channel: ChannelMetrics,
) -> Json {
    Json::obj([
        ("feed", Json::from(feed)),
        ("batches", Json::from(batches)),
        ("events", Json::from(events)),
        ("drained", Json::from(drained)),
        ("blocked_sends", Json::from(channel.blocked_sends)),
        ("blocked_nanos", Json::from(channel.blocked_nanos)),
        ("high_water", Json::from(channel.high_water)),
    ])
}

/// Where the driver's per-round batches come from.
enum EventSource {
    /// Inline generation from the scenario stream.
    Sync(ScenarioEvents),
    /// A producer thread on the other end of the ingest channel.
    Channel {
        session: IngestSession,
        producer: Option<JoinHandle<Result<(), String>>>,
    },
    /// N producer threads, k-way merged on the consumer side.
    Merge {
        session: MergeSession,
        producers: Vec<JoinHandle<Result<(), String>>>,
    },
}

impl EventSource {
    /// Fills `out` with the batch for `round` (empty when the round has no
    /// events).
    fn fill_round(&mut self, round: usize, out: &mut RoundEvents) -> Result<(), String> {
        match self {
            EventSource::Sync(stream) => {
                stream.fill_round(round, out);
                Ok(())
            }
            EventSource::Channel { session, .. } => session
                .fill_round(round as u64, out)
                .map_err(|err| err.to_string()),
            EventSource::Merge { session, .. } => session
                .fill_round(round as u64, out)
                .map_err(|err| err.to_string()),
        }
    }

    /// Propagates topology churn to the source. Only the inline stream needs
    /// telling — channel producers follow a precomputed speeds schedule.
    fn set_topology(&mut self, speeds: &Speeds) {
        if let EventSource::Sync(stream) = self {
            stream.set_topology(speeds);
        }
    }

    /// Joins one producer thread: a panic becomes a typed error (the panic
    /// already released the channel via `Drop`, so the run itself degraded
    /// to an event-free remainder instead of deadlocking), and a producer's
    /// own error — e.g. a torn trace tail — propagates verbatim.
    fn join_producer(handle: JoinHandle<Result<(), String>>) -> Result<(), String> {
        handle
            .join()
            .map_err(|_| "ingest producer thread panicked".to_string())?
    }

    /// Tears the source down: snapshots the ingestion stats, drops the
    /// consumer side (any still-blocked producer send fails immediately, so
    /// this never blocks on a full queue), then joins every producer thread
    /// and propagates the first failure.
    fn finish(self) -> Result<Option<Json>, String> {
        match self {
            EventSource::Sync(_) => Ok(None),
            EventSource::Channel { session, producer } => {
                let stats = Json::obj([
                    ("producer", Json::from("channel")),
                    (
                        "feeds",
                        Json::Arr(vec![feed_stats_json(
                            0,
                            session.batches(),
                            session.events(),
                            session.ended(),
                            session.metrics(),
                        )]),
                    ),
                ]);
                drop(session);
                producer.map(Self::join_producer).transpose()?;
                Ok(Some(stats))
            }
            EventSource::Merge { session, producers } => {
                let feeds = session
                    .feed_reports()
                    .into_iter()
                    .enumerate()
                    .map(|(feed, report)| {
                        feed_stats_json(
                            feed,
                            report.batches,
                            report.events,
                            report.drained,
                            report.channel,
                        )
                    })
                    .collect();
                let stats = Json::obj([
                    ("producer", Json::from("merge")),
                    ("feeds", Json::Arr(feeds)),
                ]);
                drop(session);
                let mut failure = None;
                for handle in producers {
                    if let Err(err) = Self::join_producer(handle) {
                        failure.get_or_insert(err);
                    }
                }
                match failure {
                    Some(err) => Err(err),
                    None => Ok(Some(stats)),
                }
            }
        }
    }
}

/// The churn plan, precomputed once per run: for every churn event, the
/// rebuilt topology and the speeds the engine will carry on it. The driver
/// consumes the graphs — each churn graph is built exactly once, whichever
/// producer mode runs — and a channel producer follows the speeds without
/// hearing back from the engine thread. (Graph generators are seeded per
/// event, so building up front is bit-identical to building lazily.)
fn churn_schedule(
    class: GraphClass,
    scenario: &Scenario,
    initial: &Speeds,
) -> Result<Vec<(usize, Arc<Graph>, Speeds)>, String> {
    let mut schedule = Vec::with_capacity(scenario.churn.len());
    let mut current = initial.clone();
    for event in &scenario.churn {
        let (target_n, seed) = match event.kind {
            // Rewire keeps the current size; the speeds length tracks the
            // engine's node count exactly.
            ChurnKind::Rewire { seed } => (current.len(), seed),
            ChurnKind::Resize { target_n, seed } => (target_n, seed),
        };
        let graph: Arc<Graph> = class
            .build(target_n, seed)
            .map_err(|err| format!("churn at round {}: {err}", event.round))?
            .into();
        current = carried_speeds(&current, graph.node_count());
        schedule.push((event.round, graph, current.clone()));
    }
    Ok(schedule)
}

/// Spawns the producer thread for [`Producer::Channel`]: generates the
/// scenario's event stream round by round and sends each non-empty batch
/// through the channel, recycling drained buffers so steady-state production
/// allocates nothing.
fn spawn_scenario_producer(
    mut stream: ScenarioEvents,
    schedule: Vec<(usize, Speeds)>,
    rounds: usize,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        let mut schedule = schedule.into_iter().peekable();
        let mut spare: Option<RoundEvents> = None;
        for round in 0..rounds {
            while schedule.peek().is_some_and(|(r, _)| *r == round) {
                let (_, speeds) = schedule.next().expect("peeked entry");
                stream.set_topology(&speeds);
            }
            let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
            stream.fill_round(round, &mut batch);
            if batch.is_empty() {
                spare = Some(batch);
            } else if tx.send(round as u64, batch).is_err() {
                return Ok(()); // consumer hung up; the driver reports its own error
            }
        }
        Ok(())
    });
    (IngestSession::new(rx), handle)
}

/// The contiguous slice of a `len`-element event list that feed `feed` of
/// `feeds` carries. Concatenating the slices in feed index order — exactly
/// what the merge stage's coalescing does — reconstructs the original list.
/// (`pub(crate)`: the hotpath merge benchmark partitions with the same
/// formula so it measures the production path's shape.)
pub(crate) fn feed_slice(len: usize, feed: usize, feeds: usize) -> std::ops::Range<usize> {
    (len * feed / feeds)..(len * (feed + 1) / feeds)
}

/// Spawns the producer threads for [`Producer::Merge`]: every feed runs the
/// full (deterministic) scenario stream and sends only its contiguous slice
/// of each round's batch over its own channel — no cross-thread coordination
/// on the producer side at all. Empty slices are skipped, so a feed can go
/// whole rounds without sending.
fn spawn_merge_producers(
    stream: ScenarioEvents,
    schedule: Vec<(usize, Speeds)>,
    rounds: usize,
    feeds: usize,
    capacity: usize,
) -> (MergeSession, Vec<JoinHandle<Result<(), String>>>) {
    let mut consumers = Vec::with_capacity(feeds);
    let mut handles = Vec::with_capacity(feeds);
    for feed in 0..feeds {
        let (mut tx, rx) = ingest::bounded(capacity);
        consumers.push(rx);
        let mut stream = stream.clone();
        let schedule = schedule.clone();
        handles.push(std::thread::spawn(move || {
            let mut schedule = schedule.into_iter().peekable();
            let mut full = RoundEvents::default();
            let mut spare: Option<RoundEvents> = None;
            for round in 0..rounds {
                while schedule.peek().is_some_and(|(r, _)| *r == round) {
                    let (_, speeds) = schedule.next().expect("peeked entry");
                    stream.set_topology(&speeds);
                }
                stream.fill_round(round, &mut full);
                let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
                batch.clear();
                batch.completions.extend_from_slice(
                    &full.completions[feed_slice(full.completions.len(), feed, feeds)],
                );
                batch.arrivals.extend_from_slice(
                    &full.arrivals[feed_slice(full.arrivals.len(), feed, feeds)],
                );
                if batch.is_empty() {
                    spare = Some(batch);
                } else if tx.send(round as u64, batch).is_err() {
                    return Ok(()); // consumer hung up; the driver reports it
                }
            }
            Ok(())
        }));
    }
    (MergeSession::new(consumers), handles)
}

/// Spawns the producer thread for [`replay_trace`]: feeds the recorded round
/// batches through the channel in order.
fn spawn_trace_producer(
    rounds: Vec<lb_workloads::TraceRound>,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        for record in rounds {
            let mut batch = tx.buffer();
            record.fill(&mut batch);
            if batch.is_empty() {
                continue; // writers skip empty batches, but tolerate them
            }
            if tx.send(record.round, batch).is_err() {
                return Ok(());
            }
        }
        Ok(())
    });
    (IngestSession::new(rx), handle)
}

/// Spawns the producer thread for [`replay_source`]: pulls round batches off
/// a live byte-stream source ([`lb_workloads::source`]) and feeds them
/// through the channel, recycling drained buffers. A source error — a torn
/// trace tail, a stalled writer, malformed records — ends production early
/// (the engine sees an event-free remainder and the run completes) and then
/// surfaces as the run's error when the driver joins the thread.
fn spawn_source_producer(
    mut source: Box<dyn RoundSource>,
    capacity: usize,
) -> (IngestSession, JoinHandle<Result<(), String>>) {
    let (mut tx, rx) = ingest::bounded(capacity);
    let handle = std::thread::spawn(move || {
        let mut spare: Option<RoundEvents> = None;
        loop {
            // Deliberately no `tx.is_disconnected()` fast-exit here: the
            // engine finishing first must not mask a source fault — a torn
            // tail discovered after the last consumed round still has to
            // surface as this run's error (tests/ingest_faults.rs), and the
            // source's own idle timeout already bounds how long a stalled
            // tail can hold the join.
            let mut batch = spare.take().unwrap_or_else(|| tx.buffer());
            match source.next_round(&mut batch)? {
                Some(round) => {
                    if batch.is_empty() {
                        spare = Some(batch); // recorded empty rounds are legal
                    } else if tx.send(round, batch).is_err() {
                        return Ok(());
                    }
                }
                None => return Ok(()),
            }
        }
    });
    (IngestSession::new(rx), handle)
}

/// Runs `scenario`, calling `on_sample` for every recorded trajectory point
/// (round 0, every `sample_every` rounds, and the final round). Equivalent
/// to [`run_scenario_with`] with default [`RunOptions`] plus the given
/// overrides.
///
/// # Errors
///
/// Returns a message for invalid specs, unknown families, graph-construction
/// failures and engine errors (e.g. alg2 with weighted arrivals).
pub fn run_scenario(
    scenario: &Scenario,
    seed_override: Option<u64>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    run_scenario_with(
        scenario,
        &RunOptions {
            seed: seed_override,
            shards: shards_override,
            ..RunOptions::default()
        },
        on_sample,
    )
}

/// Runs `scenario` under `options`: seed/shard overrides, the sync or
/// channel event path, and optional trace recording. The effective scenario
/// (overrides applied) is recorded in the outcome, and — for the same
/// scenario and seed — the result document is bit-identical across machines,
/// shard counts and producer modes.
///
/// # Errors
///
/// Returns a message for invalid specs, unknown families,
/// graph-construction failures, engine errors and trace-file I/O failures.
pub fn run_scenario_with(
    scenario: &Scenario,
    options: &RunOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let mut scenario = scenario.clone();
    if let Some(seed) = options.seed {
        scenario.seed = seed;
    }
    if let Some(shards) = options.shards {
        scenario.shards = shards;
    }
    scenario.validate()?;
    execute(scenario, Feed::Generate, options, on_sample)
}

/// Replays a recorded trace through the async ingestion channel: the
/// embedded scenario rebuilds the graph, speeds and initial load, and the
/// recorded batches drive the engine instead of the scenario's generator.
/// For a trace recorded from the same scenario and seed, the result document
/// is byte-identical to the original run's.
///
/// `shards_override` replaces the embedded shard count (shard count never
/// changes the result). The trace pins the seed — there is deliberately no
/// seed override, since the recorded task ids and the initial load both
/// derive from it. The trace is consumed: its recorded rounds move to the
/// producer thread without copying (clone first to replay again).
///
/// # Errors
///
/// Returns a message for invalid embedded scenarios and engine errors.
pub fn replay_trace(
    trace: Trace,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let mut scenario = trace.scenario.clone();
    if let Some(shards) = shards_override {
        scenario.shards = shards;
    }
    scenario.validate()?;
    execute(
        scenario,
        Feed::Trace(Box::new(trace)),
        &RunOptions::default(),
        on_sample,
    )
}

/// Replays a live byte stream through the async ingestion channel: the
/// source's header embeds the effective scenario, and its round records
/// drive the engine as they arrive — from a growing trace file
/// ([`lb_workloads::TraceSource`]) or any framed reader
/// ([`lb_workloads::ReadSource`]: pipes, sockets, stdin). For a stream
/// carrying a trace recorded from the same scenario and seed, the result
/// document is byte-identical to the recorded run's.
///
/// The source runs on the producer thread; a source failure (torn tail,
/// stalled writer, malformed record) ends production early — the engine
/// finishes the remaining rounds event-free — and surfaces as this
/// function's error, never as a deadlock.
///
/// # Errors
///
/// Returns a message for invalid embedded scenarios, engine errors and
/// source/stream failures.
pub fn replay_source(
    source: Box<dyn RoundSource>,
    shards_override: Option<usize>,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let mut scenario = source.scenario().clone();
    if let Some(shards) = shards_override {
        scenario.shards = shards;
    }
    scenario.validate()?;
    execute(
        scenario,
        Feed::Source(source),
        &RunOptions::default(),
        on_sample,
    )
}

/// What drives a run's event stream (internal face of the public entry
/// points).
enum Feed {
    /// The scenario's own generator, inline or behind channels per
    /// [`RunOptions::producer`].
    Generate,
    /// A fully parsed recorded trace (boxed: traces dwarf the other
    /// variants).
    Trace(Box<Trace>),
    /// A live byte-stream source, parsed on the producer thread.
    Source(Box<dyn RoundSource>),
}

/// The shared driver loop behind [`run_scenario_with`], [`replay_trace`]
/// and [`replay_source`]: `scenario` is already effective (overrides
/// applied, validated); `feed` selects where the per-round batches come
/// from.
fn execute(
    scenario: Scenario,
    feed: Feed,
    options: &RunOptions,
    mut on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, String> {
    let seed = scenario.seed;

    let class = family_class(&scenario.topology.family)?;
    let graph: Arc<Graph> = class
        .build(
            scenario.topology.target_n,
            seed.wrapping_add(GRAPH_SEED_OFFSET),
        )
        .map_err(|err| format!("building {}: {err}", scenario.topology.family))?
        .into();
    let n = graph.node_count();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(SPEEDS_SEED_OFFSET));
    let speeds = scenario.speeds.to_model().generate(n, &mut rng);

    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(INITIAL_SEED_OFFSET));
    let total_tokens = scenario.initial.tokens_per_node * n as u64;
    let unpadded = scenario
        .initial
        .distribution
        .generate(n, total_tokens, &mut rng);
    let pad = match scenario.initial.pad {
        PadSpec::Tokens(t) => t,
        PadSpec::Degree => {
            graph.max_degree() as u64 * unpadded.max_weight().max(scenario.arrivals.max_weight())
        }
    };
    let initial = pad_for_min_load(&unpadded, &speeds, pad);
    let first_task_id = initial.task_count() as u64;

    let mut engine = Engine::build(&scenario, Arc::clone(&graph), &speeds, &initial, seed)
        .map_err(|err| err.to_string())?;
    // One plan for every churn event, built up front: the driver swaps in
    // the prebuilt graphs, and a channel producer follows the speeds.
    let schedule = churn_schedule(class, &scenario, &speeds)?;
    let mut source = match feed {
        Feed::Trace(trace) => {
            let (session, handle) = spawn_trace_producer(trace.rounds, DEFAULT_CHANNEL_CAPACITY);
            EventSource::Channel {
                session,
                producer: Some(handle),
            }
        }
        Feed::Source(stream_source) => {
            let (session, handle) = spawn_source_producer(stream_source, DEFAULT_CHANNEL_CAPACITY);
            EventSource::Channel {
                session,
                producer: Some(handle),
            }
        }
        Feed::Generate => {
            let stream = ScenarioEvents::new(&scenario, &speeds, first_task_id);
            let speeds_schedule = || {
                schedule
                    .iter()
                    .map(|(round, _, speeds)| (*round, speeds.clone()))
                    .collect()
            };
            match options.producer {
                Producer::Scenario => EventSource::Sync(stream),
                Producer::Channel { capacity } => {
                    let (session, handle) = spawn_scenario_producer(
                        stream,
                        speeds_schedule(),
                        scenario.rounds,
                        capacity,
                    );
                    EventSource::Channel {
                        session,
                        producer: Some(handle),
                    }
                }
                Producer::Merge { feeds, capacity } => {
                    if feeds == 0 || feeds > MAX_MERGE_FEEDS {
                        return Err(format!(
                            "merge feeds must be in 1..={MAX_MERGE_FEEDS}, got {feeds}"
                        ));
                    }
                    let (session, producers) = spawn_merge_producers(
                        stream,
                        speeds_schedule(),
                        scenario.rounds,
                        feeds,
                        capacity,
                    );
                    EventSource::Merge { session, producers }
                }
            }
        }
    };
    let mut writer = options
        .record
        .as_ref()
        .map(|path| TraceWriter::create(path, &scenario))
        .transpose()?;
    let mut events = RoundEvents::default();
    // One executor for the whole run; it rebinds itself across churn. A
    // single shard means plain sequential stepping, no worker threads.
    let mut executor = (scenario.shards > 1).then(|| ShardedExecutor::new(scenario.shards));

    let sample_of = |engine: &Engine, round: usize| -> RoundSample {
        let loads = engine.loads();
        let speeds = engine.speeds();
        RoundSample {
            round,
            nodes: engine.node_count(),
            max_min: metrics::max_min_discrepancy(&loads, speeds),
            max_avg: metrics::max_avg_discrepancy(&loads, speeds),
            real_weight: engine.real_loads().iter().sum(),
            dummy_load: engine.dummy_load(),
            arrived_weight: engine.arrived_weight(),
            completed_weight: engine.completed_weight(),
        }
    };

    let mut trajectory = Vec::new();
    let mut record = |engine: &Engine, round: usize, trajectory: &mut Vec<RoundSample>| {
        let sample = sample_of(engine, round);
        on_sample(&sample);
        trajectory.push(sample);
    };
    record(&engine, 0, &mut trajectory);

    let mut churn = schedule.into_iter().peekable();
    for round in 0..scenario.rounds {
        while churn.peek().is_some_and(|(r, _, _)| *r == round) {
            let (_, new_graph, new_speeds) = churn.next().expect("peeked entry");
            engine
                .replace_topology(new_graph, &new_speeds)
                .map_err(|err| format!("churn at round {round}: {err}"))?;
            source.set_topology(engine.speeds());
        }
        source.fill_round(round, &mut events)?;
        if let Some(writer) = writer.as_mut() {
            writer.record_round(round as u64, &events)?;
        }
        if !events.is_empty() {
            engine
                .apply_events(&events)
                .map_err(|err| format!("events at round {round}: {err}"))?;
        }
        engine.step(executor.as_mut());
        let done = round + 1;
        if done % scenario.sample_every == 0 || done == scenario.rounds {
            record(&engine, done, &mut trajectory);
        }
    }
    let ingest = source.finish()?;
    if let Some(writer) = writer {
        writer.finish()?;
    }

    Ok(ScenarioOutcome {
        engine: engine.name().to_string(),
        scenario,
        trajectory,
        dummy_created: engine.dummy_created(),
        ingest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_workloads::{
        ArrivalSpec, ChurnEvent, InitialSpec, ServiceSpec, SpeedSpec, TokenDistribution,
        TopologySpec,
    };

    fn poisson_scenario() -> Scenario {
        Scenario {
            name: "driver_test".into(),
            seed: 5,
            rounds: 60,
            sample_every: 20,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 36,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 6,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
        }
    }

    #[test]
    fn trajectory_samples_first_and_last_rounds() {
        let outcome = run_scenario(&poisson_scenario(), None, None, |_| {}).unwrap();
        assert_eq!(outcome.trajectory[0].round, 0);
        assert_eq!(outcome.last().round, 60);
        // 0, 20, 40, 60.
        assert_eq!(outcome.trajectory.len(), 4);
        assert_eq!(outcome.engine, "alg1(fos)");
        assert!(outcome.last().arrived_weight > 0);
        assert!(outcome.last().completed_weight > 0);
    }

    #[test]
    fn same_seed_bit_identical_different_seed_differs() {
        let scenario = poisson_scenario();
        let a = run_scenario(&scenario, None, None, |_| {}).unwrap();
        let b = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.to_json().render_pretty(), b.to_json().render_pretty());
        let c = run_scenario(&scenario, Some(99), None, |_| {}).unwrap();
        assert_eq!(c.scenario.seed, 99);
        assert_ne!(a.trajectory, c.trajectory);
    }

    #[test]
    fn streaming_callback_sees_every_sample() {
        let mut streamed = Vec::new();
        let outcome = run_scenario(&poisson_scenario(), None, None, |s| {
            streamed.push(s.clone())
        })
        .unwrap();
        assert_eq!(streamed, outcome.trajectory);
    }

    #[test]
    fn churn_resize_changes_node_count_mid_run() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Resize {
                target_n: 16,
                seed: 3,
            },
        }];
        let outcome = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert_eq!(outcome.trajectory[1].nodes, 36, "before churn");
        assert_eq!(outcome.last().nodes, 16, "after churn");
    }

    #[test]
    fn shard_override_never_changes_the_trajectory() {
        // The driver-level face of the sharding contract: the same scenario
        // and seed produce identical trajectories for every shard count,
        // across all four engine combos (and churn), including via the
        // `--shards` override path.
        for (algorithm, model) in [
            (AlgorithmSpec::Alg1, ModelSpec::Fos),
            (AlgorithmSpec::Alg1, ModelSpec::Sos),
            (AlgorithmSpec::Alg2, ModelSpec::Fos),
            (AlgorithmSpec::Alg2, ModelSpec::Sos),
        ] {
            let mut scenario = poisson_scenario();
            scenario.algorithm = algorithm;
            scenario.model = model;
            scenario.churn = vec![ChurnEvent {
                round: 30,
                kind: ChurnKind::Rewire { seed: 9 },
            }];
            let sequential = run_scenario(&scenario, None, None, |_| {}).unwrap();
            for shards in [2, 5] {
                let sharded = run_scenario(&scenario, None, Some(shards), |_| {}).unwrap();
                assert_eq!(
                    sequential.trajectory, sharded.trajectory,
                    "{algorithm:?}/{model:?} shards={shards}"
                );
                assert_eq!(sharded.scenario.shards, shards, "override recorded");
            }
        }
    }

    #[test]
    fn zero_shard_override_is_rejected() {
        let err = run_scenario(&poisson_scenario(), None, Some(0), |_| {}).unwrap_err();
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn channel_producer_matches_sync_bit_for_bit() {
        // The ingestion contract at driver level: the same scenario and seed
        // produce byte-identical result JSON whether events are generated
        // inline or streamed through the SPSC channel — including across
        // churn, which the channel producer follows via its precomputed
        // speeds schedule.
        let mut scenario = poisson_scenario();
        scenario.churn = vec![
            ChurnEvent {
                round: 20,
                kind: ChurnKind::Rewire { seed: 9 },
            },
            ChurnEvent {
                round: 40,
                kind: ChurnKind::Resize {
                    target_n: 16,
                    seed: 3,
                },
            },
        ];
        let sync = run_scenario(&scenario, None, None, |_| {}).unwrap();
        for capacity in [1, 4] {
            let channel = run_scenario_with(
                &scenario,
                &RunOptions {
                    producer: Producer::Channel { capacity },
                    ..RunOptions::default()
                },
                |_| {},
            )
            .unwrap();
            assert_eq!(
                sync.to_json().render_pretty(),
                channel.to_json().render_pretty(),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn merge_producer_matches_sync_bit_for_bit() {
        // The multi-producer contract at driver level: N feeds each sending
        // a contiguous slice of every batch, k-way merged back, produce
        // byte-identical result JSON — including across churn.
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 9 },
        }];
        let sync = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert!(sync.ingest.is_none(), "sync runs carry no ingest report");
        for feeds in [1usize, 2, 4] {
            let merged = run_scenario_with(
                &scenario,
                &RunOptions {
                    producer: Producer::Merge { feeds, capacity: 2 },
                    ..RunOptions::default()
                },
                |_| {},
            )
            .unwrap();
            assert_eq!(
                sync.to_json().render_pretty(),
                merged.to_json().render_pretty(),
                "feeds {feeds}"
            );
            let stats = merged.ingest.expect("merged runs report ingest stats");
            assert_eq!(stats.get("producer").and_then(Json::as_str), Some("merge"));
            let reported = stats.get("feeds").and_then(Json::as_array).unwrap();
            assert_eq!(reported.len(), feeds);
            let events: u64 = reported
                .iter()
                .map(|f| f.get("events").and_then(Json::as_u64).unwrap())
                .sum();
            assert!(events > 0, "the feeds carried the stream");
        }
    }

    #[test]
    fn merge_rejects_out_of_range_feed_counts() {
        for feeds in [0usize, super::MAX_MERGE_FEEDS + 1] {
            let err = run_scenario_with(
                &poisson_scenario(),
                &RunOptions {
                    producer: Producer::Merge { feeds, capacity: 2 },
                    ..RunOptions::default()
                },
                |_| {},
            )
            .unwrap_err();
            assert!(err.contains("merge feeds"), "{err}");
        }
    }

    #[test]
    fn byte_stream_replay_is_byte_identical() {
        use lb_workloads::{ReadSource, TraceSource};

        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_dynamic_stream_replay.trace.jsonl");
        let recorded = run_scenario_with(
            &scenario,
            &RunOptions {
                record: Some(path.clone()),
                ..RunOptions::default()
            },
            |_| {},
        )
        .unwrap();
        let recorded_doc = recorded.to_json().render_pretty();

        // Framed reader over the raw bytes (the pipe/socket/stdin path).
        let bytes = std::fs::read(&path).unwrap();
        let source = ReadSource::new(std::io::Cursor::new(bytes)).unwrap();
        let streamed = replay_source(Box::new(source), None, |_| {}).unwrap();
        assert_eq!(recorded_doc, streamed.to_json().render_pretty());

        // File tail over the (already complete) trace file.
        let source = TraceSource::open(&path).unwrap();
        let tailed = replay_source(Box::new(source), None, |_| {}).unwrap();
        assert_eq!(recorded_doc, tailed.to_json().render_pretty());

        // Shard overrides replay bit-identically, like `replay_trace`.
        let source = TraceSource::open(&path).unwrap();
        let sharded = replay_source(Box::new(source), Some(3), |_| {}).unwrap();
        assert_eq!(sharded.scenario.shards, 3);
        assert_eq!(recorded.trajectory, sharded.trajectory);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recorded_traces_replay_byte_identically() {
        let mut scenario = poisson_scenario();
        scenario.churn = vec![ChurnEvent {
            round: 30,
            kind: ChurnKind::Rewire { seed: 5 },
        }];
        let path = std::env::temp_dir().join("lb_dynamic_record_replay.trace.jsonl");
        let recorded = run_scenario_with(
            &scenario,
            &RunOptions {
                seed: Some(11),
                record: Some(path.clone()),
                ..RunOptions::default()
            },
            |_| {},
        )
        .unwrap();

        // Recording never perturbs the run.
        let plain = run_scenario(&scenario, Some(11), None, |_| {}).unwrap();
        assert_eq!(
            plain.to_json().render_pretty(),
            recorded.to_json().render_pretty()
        );

        // Replay reproduces the run byte for byte, and a shard override only
        // changes the recorded shard count, never the trajectory.
        let trace = lb_workloads::Trace::load(&path).unwrap();
        assert_eq!(trace.scenario.seed, 11, "header carries the effective seed");
        let replayed = replay_trace(trace.clone(), None, |_| {}).unwrap();
        assert_eq!(
            recorded.to_json().render_pretty(),
            replayed.to_json().render_pretty()
        );
        let sharded = replay_trace(trace, Some(3), |_| {}).unwrap();
        assert_eq!(sharded.scenario.shards, 3);
        assert_eq!(recorded.trajectory, sharded.trajectory);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_rejects_invalid_shard_overrides() {
        let scenario = poisson_scenario();
        let path = std::env::temp_dir().join("lb_dynamic_replay_shards.trace.jsonl");
        run_scenario_with(
            &scenario,
            &RunOptions {
                record: Some(path.clone()),
                ..RunOptions::default()
            },
            |_| {},
        )
        .unwrap();
        let trace = lb_workloads::Trace::load(&path).unwrap();
        let err = replay_trace(trace, Some(0), |_| {}).unwrap_err();
        assert!(err.contains("shards"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alg2_sos_engine_runs() {
        let mut scenario = poisson_scenario();
        scenario.algorithm = AlgorithmSpec::Alg2;
        scenario.model = ModelSpec::Sos;
        let outcome = run_scenario(&scenario, None, None, |_| {}).unwrap();
        assert!(
            outcome.engine.starts_with("alg2(sos"),
            "engine was {}",
            outcome.engine
        );
    }

    #[test]
    fn unknown_family_is_reported() {
        let mut scenario = poisson_scenario();
        scenario.topology.family = "smallworld".into();
        let err = run_scenario(&scenario, None, None, |_| {}).unwrap_err();
        assert!(err.contains("smallworld"));
    }
}
