//! Experiment binary: regenerates the `fos_vs_sos` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::fos_vs_sos::run(quick).emit();
}
