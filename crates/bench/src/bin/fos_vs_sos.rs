//! Legacy shim: `fos_vs_sos` routes through the unified `lb` CLI dispatch.

fn main() {
    std::process::exit(lb_bench::cli::shim("fos_vs_sos"));
}
