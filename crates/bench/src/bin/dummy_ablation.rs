//! Experiment binary: regenerates the `dummy_ablation` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::dummy_ablation::run(quick).emit();
}
