//! Legacy shim: `dummy_ablation` routes through the unified `lb` CLI dispatch.

fn main() {
    std::process::exit(lb_bench::cli::shim("dummy_ablation"));
}
