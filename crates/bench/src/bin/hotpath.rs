//! Legacy shim: `hotpath` routes through the unified `lb` CLI dispatch.

fn main() {
    std::process::exit(lb_bench::cli::shim("hotpath"));
}
