//! Experiment binary: regenerates the `heterogeneous` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::heterogeneous::run(quick).emit();
}
