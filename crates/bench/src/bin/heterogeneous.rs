//! Legacy shim: `heterogeneous` routes through the unified `lb` CLI dispatch.

fn main() {
    std::process::exit(lb_bench::cli::shim("heterogeneous"));
}
