//! Experiment binary: regenerates the `table1` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::table1::run(quick).emit();
}
