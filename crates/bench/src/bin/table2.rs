//! Experiment binary: regenerates the `table2` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::table2::run(quick).emit();
}
