//! Experiment binary: regenerates the `theorem8` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::theorem8::run(quick).emit();
}
