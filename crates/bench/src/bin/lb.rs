//! The unified `lb` CLI: scenarios, experiments, benchmarks and the CI
//! perf-regression gate. See `lb help` or [`lb_bench::cli`].

fn main() {
    std::process::exit(lb_bench::cli::main());
}
