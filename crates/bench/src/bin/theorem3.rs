//! Legacy shim: `theorem3` routes through the unified `lb` CLI dispatch.

fn main() {
    std::process::exit(lb_bench::cli::shim("theorem3"));
}
