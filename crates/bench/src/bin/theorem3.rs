//! Experiment binary: regenerates the `theorem3` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::theorem3::run(quick).emit();
}
