//! Experiment binary: regenerates the `trajectory` artefact (see DESIGN.md).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    lb_bench::experiments::trajectory::run(quick).emit();
}
