//! Federated driver: one scenario partitioned across N OS processes on one
//! machine, exchanging boundary loads, crossing flows and cross-partition
//! deliveries over TCP each round — **byte-identical** to the sequential
//! driver for every process count and per-process shard count.
//!
//! The process topology is a star. The **coordinator** owns the scenario: it
//! admits one [`Join`](lb_proto::Record::Join) per rank, broadcasts the
//! effective scenario in [`Start`](lb_proto::Record::Start), then acts as a
//! pure message router for the round protocol — it never steps an engine.
//! Each **worker** derives the identical [`World`](crate::dynamic) from the
//! scenario document, builds the full-size engine, and steps only its
//! partition through [`lb_core::federate`], speaking the v2 records of
//! [`lb_proto`] over one line-delimited socket.
//!
//! Per round the coordinator relays three fixed barrier exchanges (loads,
//! flows, sends — always present, even when empty), mirrors the workers'
//! deterministic churn/sample/checkpoint schedule, and assembles global
//! state where needed:
//!
//! | phase          | worker → coordinator      | coordinator → workers    |
//! |----------------|---------------------------|--------------------------|
//! | barrier        |                           | `Round {round}`          |
//! | churn (if due) | `State` (pre-churn)       | `Restore` (assembled)    |
//! | twin loads     | `Loads {rank}`            | `Loads` (concatenated)   |
//! | twin flows     | `Flows {rank}`            | `Flows` (concatenated)   |
//! | deliveries     | `Sends {rank}`            | `Deliver` (all batches)  |
//! | sample (if due)| `Sample {rank}`           |                          |
//! | ckpt (if due)  | `State`                   |                          |
//! | shutdown       | `Done {rank}`             | `Finish`                 |
//!
//! Everything not exchanged is derived: workers compute the churn plan, the
//! sample cadence and the checkpoint cadence locally from the scenario, so
//! the coordinator never negotiates control flow mid-run.
//!
//! State assembly splices per-rank [`EngineState`]s along the partition
//! plan's node/edge ranges: owned vector entries replace the stale foreign
//! ones, counters (disjoint partials) are summed, the load watermark takes
//! the minimum, and globally agreed scalars (`wmax`, the rounding seed, β)
//! come from rank 0. The spliced state is exactly what the sequential
//! engine would capture, which is why a coordinator-written checkpoint
//! resumes under the plain sequential driver (`lb run --resume`).
//!
//! Any socket failure — a killed worker, a timeout, a malformed record —
//! surfaces as [`BenchError::Protocol`] (stable exit code), never a hang:
//! every read carries a timeout and a lost peer is an immediate EOF.

use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write as _};
use std::net::{TcpListener, TcpStream};
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lb_analysis::Json;
use lb_core::discrete::RoundEvents;
use lb_core::federate::FederateLink;
use lb_core::snapshot::{self, DiscreteState, EngineState, Snapshot};
use lb_core::{metrics, CoreError, FederatedExecutor, FederationPlan, Speeds, Task, TaskId};
use lb_graph::{EdgeId, Graph, NodeId};
use lb_proto::{Record, WireBatch, WireTask, PROTOCOL_V2};
use lb_workloads::{Scenario, ScenarioEvents};

use crate::dynamic::{
    build_world, churn_schedule, encode_driver, sample_of, Engine, RoundSample, RunOptions,
    ScenarioOutcome,
};
use crate::error::BenchError;

/// Backstop read timeout on every federation socket: a silent peer is a
/// protocol error, never a hang. Generous because a slow debug-build round
/// on a large scenario still has to fit.
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(60);

/// How long the coordinator waits for all ranks to join before giving up.
const JOIN_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a worker keeps retrying its connect (the coordinator binds
/// before spawning, so this only covers externally launched workers).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------------
// Wire: one line-delimited record socket with typed failures.
// ---------------------------------------------------------------------------

/// One federation socket: line-delimited [`Record`]s in both directions,
/// every failure mapped to [`BenchError::Protocol`] naming the peer.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
    /// Peer label for error messages ("coordinator", "federate rank 2").
    peer: String,
}

impl Wire {
    fn new(stream: TcpStream, peer: String) -> Result<Self, BenchError> {
        stream
            .set_read_timeout(Some(EXCHANGE_TIMEOUT))
            .map_err(|e| BenchError::protocol(format!("configuring the {peer} socket: {e}")))?;
        // The round barrier is a sequence of small request/response lines;
        // Nagle + delayed ACK would add ~40ms to every exchange.
        stream
            .set_nodelay(true)
            .map_err(|e| BenchError::protocol(format!("configuring the {peer} socket: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| BenchError::protocol(format!("cloning the {peer} socket: {e}")))?;
        Ok(Wire {
            reader: BufReader::new(stream),
            writer,
            line: String::new(),
            peer,
        })
    }

    fn send(&mut self, record: &Record) -> Result<(), BenchError> {
        let mut text = record.render();
        text.push('\n');
        self.writer
            .write_all(text.as_bytes())
            .map_err(|e| BenchError::protocol(format!("sending to the {}: {e}", self.peer)))
    }

    /// Receives one record. EOF, timeout and malformed lines are all
    /// protocol errors; a peer's [`Record::Abort`] is surfaced as its cause.
    fn recv(&mut self) -> Result<Record, BenchError> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line).map_err(|e| {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                BenchError::protocol(format!(
                    "the {} sent nothing for {}s: federation barrier timed out",
                    self.peer,
                    EXCHANGE_TIMEOUT.as_secs()
                ))
            } else {
                BenchError::protocol(format!("reading from the {}: {e}", self.peer))
            }
        })?;
        if n == 0 {
            return Err(BenchError::protocol(format!(
                "the {} disconnected mid-run",
                self.peer
            )));
        }
        let record = Record::parse(self.line.trim_end_matches(['\r', '\n']))
            .map_err(|e| BenchError::protocol(format!("from the {}: {e}", self.peer)))?;
        if let Record::Abort { error } = record {
            return Err(BenchError::protocol(format!(
                "the {} aborted: {error}",
                self.peer
            )));
        }
        Ok(record)
    }

    /// The error for a record that does not fit the protocol state.
    fn unexpected(&self, wanted: &str, got: &Record) -> BenchError {
        BenchError::protocol(format!(
            "expected {wanted} from the {}, got a {} record",
            self.peer,
            got.kind()
        ))
    }
}

// ---------------------------------------------------------------------------
// Roles.
// ---------------------------------------------------------------------------

/// Kills and reaps a spawned worker when the coordinator unwinds, so a
/// failed run never leaks orphan processes.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

enum Role {
    Coordinator {
        listener: TcpListener,
        children: Vec<ChildGuard>,
    },
    Worker {
        wire: Box<Wire>,
        rank: usize,
        checkpoint_every: Option<usize>,
    },
}

/// Which side of a federated run a [`Session`](crate::dynamic::Session)
/// plays, created by [`FederationRole::coordinator`] or by [`join`]. Opaque:
/// the protocol state it carries (sockets, admitted peers) has no meaningful
/// public surface.
pub struct FederationRole(Role);

impl fmt::Debug for FederationRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Role::Coordinator { children, .. } => f
                .debug_struct("FederationRole::Coordinator")
                .field("spawned", &children.len())
                .finish(),
            Role::Worker { rank, .. } => f
                .debug_struct("FederationRole::Worker")
                .field("rank", rank)
                .finish(),
        }
    }
}

impl FederationRole {
    /// The coordinator side: owns `listener` (already bound) and the worker
    /// processes spawned for this run (killed and reaped if the run fails).
    /// Pass an empty `children` when the workers are launched externally
    /// (`--no-spawn`, or in-process worker threads).
    pub fn coordinator(listener: TcpListener, children: Vec<Child>) -> Self {
        FederationRole(Role::Coordinator {
            listener,
            children: children.into_iter().map(ChildGuard).collect(),
        })
    }
}

/// Connects to a coordinator at `addr`, claims `rank` of `parts`, and
/// returns the worker-side [`FederationRole`] plus the effective scenario
/// the coordinator broadcast (seed, shard and federation overrides already
/// applied). Run it with
/// `Session::from_scenario(&scenario).federated(role, scenario.federation)`.
///
/// # Errors
///
/// [`BenchError::Protocol`] when the coordinator is unreachable, rejects
/// the join, or answers out of protocol; the broadcast scenario is validated
/// before it is returned.
pub fn join(
    addr: &str,
    rank: usize,
    parts: usize,
) -> Result<(FederationRole, Scenario), BenchError> {
    let stream = connect_retry(addr)?;
    let mut wire = Wire::new(stream, "coordinator".to_string())?;
    wire.send(&Record::Join {
        version: PROTOCOL_V2,
        rank: rank as u64,
        parts: parts as u64,
    })?;
    match wire.recv()? {
        Record::Start {
            scenario,
            parts: declared,
            shards,
            checkpoint_every,
        } => {
            let scenario = Scenario::from_json(&scenario)
                .map_err(|e| BenchError::protocol(format!("start scenario: {e}")))?;
            scenario.validate().map_err(BenchError::Protocol)?;
            if declared != parts as u64 || scenario.federation != parts {
                return Err(BenchError::protocol(format!(
                    "coordinator runs {declared} part(s) but this worker was launched for {parts}"
                )));
            }
            if shards != scenario.shards as u64 {
                return Err(BenchError::protocol(format!(
                    "start record declares {shards} shard(s) but the scenario carries {}",
                    scenario.shards
                )));
            }
            let checkpoint_every = checkpoint_every
                .map(|every| {
                    usize::try_from(every).map_err(|_| {
                        BenchError::protocol(format!("checkpoint cadence {every} overflows"))
                    })
                })
                .transpose()?;
            Ok((
                FederationRole(Role::Worker {
                    wire: Box::new(wire),
                    rank,
                    checkpoint_every,
                }),
                scenario,
            ))
        }
        Record::Reject { error, .. } => Err(BenchError::protocol(format!(
            "coordinator rejected the join: {error}"
        ))),
        other => Err(wire.unexpected("a start record", &other)),
    }
}

fn connect_retry(addr: &str) -> Result<TcpStream, BenchError> {
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(err) => {
                if Instant::now() >= deadline {
                    return Err(BenchError::protocol(format!(
                        "connecting to the coordinator at {addr}: {err}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Joins `addr` as `rank` of `parts` and runs the worker session to
/// completion. Shared by the `federate-worker` subcommand and the hotpath's
/// in-process worker threads.
///
/// # Errors
///
/// Propagates [`join`] and session failures.
pub(crate) fn worker_entry(addr: &str, rank: usize, parts: usize) -> Result<(), BenchError> {
    let (role, scenario) = join(addr, rank, parts)?;
    crate::dynamic::Session::from_scenario(&scenario)
        .federated(role, parts)
        .run(|_| {})
        .map(|_| ())
}

// ---------------------------------------------------------------------------
// Entry from Session::run.
// ---------------------------------------------------------------------------

/// Runs a federated session in its role. `scenario` is already effective
/// (overrides applied, `federation` set, validated).
pub(crate) fn run_federated(
    scenario: Scenario,
    role: FederationRole,
    options: &RunOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, BenchError> {
    match role.0 {
        Role::Coordinator { listener, children } => {
            run_coordinator(scenario, listener, children, options, on_sample)
        }
        Role::Worker {
            wire,
            rank,
            checkpoint_every,
        } => {
            if options.checkpoint.is_some() || options.checkpoint_every.is_some() {
                return Err(BenchError::usage(
                    "checkpointing a federated run is coordinator-driven; the worker role \
                     takes its cadence from the start record",
                ));
            }
            run_worker(scenario, *wire, rank, checkpoint_every)
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------------

fn run_coordinator(
    scenario: Scenario,
    listener: TcpListener,
    children: Vec<ChildGuard>,
    options: &RunOptions,
    mut on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, BenchError> {
    let parts = scenario.federation;
    let checkpoint = match (&options.checkpoint, options.checkpoint_every) {
        (Some(path), Some(every)) => {
            if every == 0 {
                return Err(BenchError::usage(
                    "the checkpoint cadence must be at least one round",
                ));
            }
            Some((path.clone(), every))
        }
        (Some(_), None) => {
            return Err(BenchError::usage(
                "a checkpoint path requires a checkpoint cadence (checkpoint-every)",
            ))
        }
        (None, Some(_)) => {
            return Err(BenchError::usage(
                "a checkpoint cadence requires a checkpoint path",
            ));
        }
        (None, None) => None,
    };

    let world = build_world(&scenario)?;
    let schedule = churn_schedule(world.class, &scenario, &world.graph, &world.speeds)
        .map_err(BenchError::Run)?;
    // A never-stepped local engine supplies the round-0 sample and the
    // engine identity — the same construction path every worker runs.
    let mut engine = Engine::build(
        &scenario,
        Arc::clone(&world.graph),
        &world.speeds,
        &world.initial,
        scenario.seed,
    )?;
    let mut wires = accept_workers(&listener, parts)?;
    let start = Record::Start {
        scenario: scenario.to_json(),
        parts: parts as u64,
        shards: scenario.shards as u64,
        checkpoint_every: checkpoint.as_ref().map(|&(_, every)| every as u64),
    };
    broadcast(&mut wires, &start)?;

    let mut graph = Arc::clone(&world.graph);
    let mut speeds = world.speeds.clone();
    let mut trajectory = Vec::new();
    let sample0 = sample_of(&engine, 0);
    on_sample(&sample0);
    trajectory.push(sample0);

    let mut churn = schedule.into_iter().peekable();
    for round in 0..scenario.rounds {
        broadcast(
            &mut wires,
            &Record::Round {
                round: round as u64,
            },
        )?;
        let mut reassembled = false;
        while churn.peek().is_some_and(|step| step.round == round) {
            if !reassembled {
                // Workers splice-restore the assembled pre-churn state, so
                // every rank re-partitions from identical global state.
                let assembled = gather_state(&mut wires, round, &graph)?;
                let text = snapshot::render(&Snapshot {
                    scenario: scenario.to_json(),
                    driver: Json::Null,
                    round: round as u64,
                    engine: assembled,
                });
                broadcast(
                    &mut wires,
                    &Record::Restore {
                        round: round as u64,
                        snapshot: text,
                    },
                )?;
                reassembled = true;
            }
            // lint: allow(R03, the peek in the loop condition proves Some)
            let step = churn.next().expect("peeked entry");
            // The never-stepped local engine follows the churn too: its
            // identity (e.g. the SOS optimal beta) depends on the live
            // topology, and the checkpoint driver + final document must
            // carry the same name the sequential run would record. Steps
            // apply in sequence here, so the delta path is valid.
            engine
                .replace_topology(Arc::clone(&step.graph), &step.speeds, step.delta.as_ref())
                .map_err(|err| BenchError::run(format!("churn at round {round}: {err}")))?;
            graph = step.graph;
            speeds = step.speeds;
        }
        relay_loads(&mut wires)?;
        relay_flows(&mut wires)?;
        relay_sends(&mut wires)?;
        let done = round + 1;
        if done % scenario.sample_every == 0 || done == scenario.rounds {
            let sample = gather_sample(&mut wires, done, &graph, &speeds)?;
            on_sample(&sample);
            trajectory.push(sample);
        }
        if let Some((path, every)) = &checkpoint {
            if done % every == 0 {
                let assembled = gather_state(&mut wires, done, &graph)?;
                let state = Snapshot {
                    scenario: scenario.to_json(),
                    driver: encode_driver(engine.name(), &trajectory),
                    round: done as u64,
                    engine: assembled,
                };
                snapshot::write_atomic(path, &state)
                    .map_err(|err| BenchError::run(format!("checkpoint at round {done}: {err}")))?;
            }
        }
    }

    broadcast(&mut wires, &Record::Finish)?;
    let name = engine.name().to_string();
    let mut dummy_created = 0u64;
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::Done {
                rank: r,
                dummy_created: d,
                engine,
            } if r == rank as u64 => {
                if engine != name {
                    return Err(BenchError::protocol(format!(
                        "federate rank {rank} ran engine {engine:?}, coordinator expected \
                         {name:?}"
                    )));
                }
                dummy_created += d;
            }
            other => return Err(wire.unexpected("a done record", &other)),
        }
    }
    drop(children); // clean exit: reap the (already finished) workers

    Ok(ScenarioOutcome {
        scenario,
        engine: name,
        trajectory,
        dummy_created,
        ingest: None,
    })
}

/// Accepts and admits exactly one worker per rank, in any arrival order.
fn accept_workers(listener: &TcpListener, parts: usize) -> Result<Vec<Wire>, BenchError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| BenchError::protocol(format!("configuring the listener: {e}")))?;
    let deadline = Instant::now() + JOIN_TIMEOUT;
    let mut slots: Vec<Option<Wire>> = (0..parts).map(|_| None).collect();
    let mut admitted = 0usize;
    while admitted < parts {
        if Instant::now() >= deadline {
            return Err(BenchError::protocol(format!(
                "only {admitted} of {parts} federate(s) joined within {}s",
                JOIN_TIMEOUT.as_secs()
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| BenchError::protocol(format!("configuring a federate: {e}")))?;
                let mut wire = Wire::new(stream, "joining federate".to_string())?;
                let record = wire.recv()?;
                let Record::Join {
                    version,
                    rank,
                    parts: declared,
                } = record
                else {
                    let err = wire.unexpected("a join record", &record);
                    reject(&mut wire, &err);
                    return Err(err);
                };
                let admit = || -> Result<usize, String> {
                    if version != PROTOCOL_V2 {
                        return Err(format!(
                            "federation speaks protocol v{PROTOCOL_V2}, the worker sent v{version}"
                        ));
                    }
                    if declared != parts as u64 {
                        return Err(format!(
                            "worker was launched for {declared} part(s), this run has {parts}"
                        ));
                    }
                    let rank =
                        usize::try_from(rank).map_err(|_| format!("rank {rank} overflows"))?;
                    if rank >= parts {
                        return Err(format!("rank {rank} is out of range for {parts} part(s)"));
                    }
                    Ok(rank)
                };
                match admit() {
                    Ok(rank) if slots[rank].is_none() => {
                        wire.peer = format!("federate rank {rank}");
                        slots[rank] = Some(wire);
                        admitted += 1;
                    }
                    Ok(rank) => {
                        let err = BenchError::protocol(format!("rank {rank} joined twice"));
                        reject(&mut wire, &err);
                        return Err(err);
                    }
                    Err(reason) => {
                        let err = BenchError::protocol(reason);
                        reject(&mut wire, &err);
                        return Err(err);
                    }
                }
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => {
                return Err(BenchError::protocol(format!("accepting federates: {err}")));
            }
        }
    }
    Ok(slots.into_iter().flatten().collect())
}

/// Best-effort refusal before dropping a mis-joining connection.
fn reject(wire: &mut Wire, err: &BenchError) {
    let _ = wire.send(&Record::Reject {
        version: PROTOCOL_V2,
        error: err.to_string(),
    });
}

fn broadcast(wires: &mut [Wire], record: &Record) -> Result<(), BenchError> {
    for wire in wires.iter_mut() {
        wire.send(record)?;
    }
    Ok(())
}

/// Gathers the rank-tagged boundary loads and broadcasts the rank-order
/// concatenation every worker's [`FederateLink::exchange_loads`] awaits.
fn relay_loads(wires: &mut [Wire]) -> Result<(), BenchError> {
    let mut combined: Vec<(u64, u64)> = Vec::new();
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::Loads {
                rank: Some(r),
                entries,
            } if r == rank as u64 => combined.extend(entries),
            other => return Err(wire.unexpected("rank-tagged loads", &other)),
        }
    }
    broadcast(
        wires,
        &Record::Loads {
            rank: None,
            entries: combined,
        },
    )
}

/// Same relay for crossing-edge flows.
fn relay_flows(wires: &mut [Wire]) -> Result<(), BenchError> {
    let mut combined: Vec<(u64, u64, u64)> = Vec::new();
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::Flows {
                rank: Some(r),
                entries,
            } if r == rank as u64 => combined.extend(entries),
            other => return Err(wire.unexpected("rank-tagged flows", &other)),
        }
    }
    broadcast(
        wires,
        &Record::Flows {
            rank: None,
            entries: combined,
        },
    )
}

/// Gathers every rank's send batch and broadcasts the full delivery set.
fn relay_sends(wires: &mut [Wire]) -> Result<(), BenchError> {
    let mut batches: Vec<(u64, WireBatch)> = Vec::with_capacity(wires.len());
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::Sends { rank: r, batch } if r == rank as u64 => batches.push((r, batch)),
            other => return Err(wire.unexpected("a send batch", &other)),
        }
    }
    broadcast(wires, &Record::Deliver { batches })
}

/// Gathers the per-rank sample slices into the round's trajectory point:
/// load vectors concatenate in rank order (= node order), counters sum, and
/// the discrepancy metrics are evaluated exactly as the sequential sampler
/// does.
fn gather_sample(
    wires: &mut [Wire],
    done: usize,
    graph: &Graph,
    speeds: &Speeds,
) -> Result<RoundSample, BenchError> {
    let n = graph.node_count();
    let mut loads: Vec<f64> = Vec::with_capacity(n);
    let mut real: Vec<f64> = Vec::with_capacity(n);
    let mut dummy_load = 0u64;
    let mut arrived = 0u64;
    let mut completed = 0u64;
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::Sample {
                rank: r,
                round,
                loads: l,
                real: rl,
                dummy_load: d,
                arrived: a,
                completed: c,
            } if r == rank as u64 && round == done as u64 => {
                loads.extend(l.iter().copied().map(f64::from_bits));
                real.extend(rl.iter().copied().map(f64::from_bits));
                dummy_load += d;
                arrived += a;
                completed += c;
            }
            other => return Err(wire.unexpected("a sample record", &other)),
        }
    }
    if loads.len() != n || real.len() != n {
        return Err(BenchError::protocol(format!(
            "sample slices cover {} of {n} node(s) at round {done}",
            loads.len()
        )));
    }
    Ok(RoundSample {
        round: done,
        nodes: n,
        max_min: metrics::max_min_discrepancy(&loads, speeds),
        max_avg: metrics::max_avg_discrepancy(&loads, speeds),
        real_weight: real.iter().sum(),
        dummy_load,
        arrived_weight: arrived,
        completed_weight: completed,
    })
}

/// Gathers one [`Record::State`] per rank and splices them into the global
/// engine state along the current partition plan.
fn gather_state(
    wires: &mut [Wire],
    round: usize,
    graph: &Graph,
) -> Result<EngineState, BenchError> {
    let parts = wires.len();
    let plan = FederationPlan::new(graph, 0, parts)?;
    let mut states = Vec::with_capacity(parts);
    for (rank, wire) in wires.iter_mut().enumerate() {
        match wire.recv()? {
            Record::State {
                rank: r,
                round: rr,
                snapshot,
            } if r == rank as u64 && rr == round as u64 => {
                let snap = snapshot::parse(&snapshot).map_err(|e| {
                    BenchError::protocol(format!("state of federate rank {rank}: {e}"))
                })?;
                states.push(snap.engine);
            }
            other => return Err(wire.unexpected("a state record", &other)),
        }
    }
    splice_states(states, &plan, graph)
}

/// Splices per-rank engine states into the one the sequential engine would
/// capture: owned node/edge entries replace the stale foreign ones, counters
/// (disjoint partials) sum, the load watermark folds by minimum, and the
/// globally agreed scalars come from rank 0's base.
fn splice_states(
    states: Vec<EngineState>,
    plan: &FederationPlan,
    graph: &Graph,
) -> Result<EngineState, BenchError> {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut parts = states.into_iter();
    let Some(mut base) = parts.next() else {
        return Err(BenchError::protocol("no federate states to splice"));
    };
    check_state_shape(&base, 0, n, m)?;
    for (p, part) in parts.enumerate() {
        let p = p + 1;
        check_state_shape(&part, p, n, m)?;
        if part.round != base.round || part.twin.round != base.twin.round {
            return Err(BenchError::protocol(format!(
                "federate rank {p} is at engine round {}, rank 0 at {}",
                part.round, base.round
            )));
        }
        let nr = plan.node_range_of(p);
        let er = plan.edge_range_of(p);
        base.twin.loads[nr.clone()].copy_from_slice(&part.twin.loads[nr.clone()]);
        base.twin.cumulative_flow[er.clone()]
            .copy_from_slice(&part.twin.cumulative_flow[er.clone()]);
        base.twin.min_load_seen = base.twin.min_load_seen.min(part.twin.min_load_seen);
        match (&mut base.twin.history, &part.twin.history) {
            (Some(bh), Some(ph)) => {
                bh.previous[er.clone()].copy_from_slice(&ph.previous[er.clone()]);
            }
            (None, None) => {}
            _ => {
                return Err(BenchError::protocol(format!(
                    "federate rank {p} disagrees with rank 0 on the continuous model"
                )))
            }
        }
        match (&mut base.discrete, &part.discrete) {
            (DiscreteState::Alg1(b), DiscreteState::Alg1(q)) => {
                b.queues[nr.clone()].clone_from_slice(&q.queues[nr.clone()]);
                b.dummy[nr.clone()].copy_from_slice(&q.dummy[nr.clone()]);
                b.discrete_flow[er.clone()].copy_from_slice(&q.discrete_flow[er.clone()]);
                b.dummy_created += q.dummy_created;
                b.items_sent += q.items_sent;
                b.arrived_weight += q.arrived_weight;
                b.completed_weight += q.completed_weight;
            }
            (DiscreteState::Alg2(b), DiscreteState::Alg2(q)) => {
                b.tokens[nr.clone()].copy_from_slice(&q.tokens[nr.clone()]);
                b.dummy[nr.clone()].copy_from_slice(&q.dummy[nr.clone()]);
                b.discrete_flow[er.clone()].copy_from_slice(&q.discrete_flow[er.clone()]);
                b.dummy_created += q.dummy_created;
                b.arrived_weight += q.arrived_weight;
                b.completed_weight += q.completed_weight;
            }
            _ => {
                return Err(BenchError::protocol(format!(
                    "federate rank {p} disagrees with rank 0 on the algorithm"
                )))
            }
        }
    }
    Ok(base)
}

/// Rejects a state whose vectors do not fit the coordinator's topology.
fn check_state_shape(
    state: &EngineState,
    rank: usize,
    n: usize,
    m: usize,
) -> Result<(), BenchError> {
    let (nodes, edges) = match &state.discrete {
        DiscreteState::Alg1(s) => (s.queues.len(), s.discrete_flow.len()),
        DiscreteState::Alg2(s) => (s.tokens.len(), s.discrete_flow.len()),
    };
    let twin_ok = state.twin.loads.len() == n
        && state.twin.cumulative_flow.len() == m
        && state
            .twin
            .history
            .as_ref()
            .is_none_or(|h| h.previous.len() == m);
    if !twin_ok || nodes != n || edges != m {
        return Err(BenchError::protocol(format!(
            "state of federate rank {rank} does not fit the topology \
             ({n} node(s), {m} edge(s))"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

/// The worker's socket as the engine sees it: a [`FederateLink`] whose three
/// exchanges each send one rank-tagged record and await the coordinator's
/// combined broadcast.
struct WorkerLink {
    wire: Wire,
    rank: usize,
    parts: usize,
}

impl WorkerLink {
    fn send(&mut self, record: &Record) -> Result<(), CoreError> {
        self.wire
            .send(record)
            .map_err(|e| CoreError::federation(e.to_string()))
    }

    fn recv(&mut self) -> Result<Record, CoreError> {
        self.wire
            .recv()
            .map_err(|e| CoreError::federation(e.to_string()))
    }
}

fn node_id(value: u64) -> Result<NodeId, CoreError> {
    usize::try_from(value).map_err(|_| CoreError::federation(format!("node id {value} overflows")))
}

fn edge_id(value: u64) -> Result<EdgeId, CoreError> {
    usize::try_from(value).map_err(|_| CoreError::federation(format!("edge id {value} overflows")))
}

impl FederateLink for WorkerLink {
    fn exchange_loads(&mut self, own: &[(NodeId, u64)]) -> Result<Vec<(NodeId, u64)>, CoreError> {
        let entries = own
            .iter()
            .map(|&(node, bits)| (node as u64, bits))
            .collect();
        self.send(&Record::Loads {
            rank: Some(self.rank as u64),
            entries,
        })?;
        match self.recv()? {
            Record::Loads {
                rank: None,
                entries,
            } => entries
                .into_iter()
                .map(|(node, bits)| Ok((node_id(node)?, bits)))
                .collect(),
            other => Err(CoreError::federation(format!(
                "expected the combined loads broadcast, got a {} record",
                other.kind()
            ))),
        }
    }

    fn exchange_flows(
        &mut self,
        own: &[(EdgeId, u64, u64)],
    ) -> Result<Vec<(EdgeId, u64, u64)>, CoreError> {
        let entries = own
            .iter()
            .map(|&(edge, forward, backward)| (edge as u64, forward, backward))
            .collect();
        self.send(&Record::Flows {
            rank: Some(self.rank as u64),
            entries,
        })?;
        match self.recv()? {
            Record::Flows {
                rank: None,
                entries,
            } => entries
                .into_iter()
                .map(|(edge, forward, backward)| Ok((edge_id(edge)?, forward, backward)))
                .collect(),
            other => Err(CoreError::federation(format!(
                "expected the combined flows broadcast, got a {} record",
                other.kind()
            ))),
        }
    }

    fn exchange_sends(
        &mut self,
        own: &lb_core::SendBatch,
    ) -> Result<Vec<lb_core::SendBatch>, CoreError> {
        self.send(&Record::Sends {
            rank: self.rank as u64,
            batch: wire_batch(own),
        })?;
        match self.recv()? {
            Record::Deliver { batches } => {
                if batches.len() != self.parts {
                    return Err(CoreError::federation(format!(
                        "delivery carries {} batch(es) for {} part(s)",
                        batches.len(),
                        self.parts
                    )));
                }
                batches
                    .into_iter()
                    .enumerate()
                    .map(|(i, (rank, batch))| {
                        if rank != i as u64 {
                            return Err(CoreError::federation(format!(
                                "delivery batch {i} is tagged rank {rank}"
                            )));
                        }
                        core_batch(batch)
                    })
                    .collect()
            }
            other => Err(CoreError::federation(format!(
                "expected the delivery broadcast, got a {} record",
                other.kind()
            ))),
        }
    }
}

/// [`lb_core::SendBatch`] → wire form (global ids widen losslessly).
fn wire_batch(batch: &lb_core::SendBatch) -> WireBatch {
    WireBatch {
        tasks: batch
            .tasks
            .iter()
            .map(|&(edge, node, task)| WireTask {
                edge: edge as u64,
                node: node as u64,
                id: task.id().0,
                weight: task.weight(),
                dummy: task.is_dummy(),
            })
            .collect(),
        dummy: batch
            .dummy
            .iter()
            .map(|&(n, amt)| (n as u64, amt))
            .collect(),
        tokens: batch
            .tokens
            .iter()
            .map(|&(n, real, dummy)| (n as u64, real, dummy))
            .collect(),
        deltas: batch.deltas.iter().map(|&(e, d)| (e as u64, d)).collect(),
    }
}

/// Wire form → [`lb_core::SendBatch`], validating what [`Task`]'s
/// constructors would otherwise panic on (the same admission rules the
/// snapshot parser applies).
fn core_batch(batch: WireBatch) -> Result<lb_core::SendBatch, CoreError> {
    let mut out = lb_core::SendBatch::default();
    for t in batch.tasks {
        let task = if t.dummy {
            if t.weight != 1 {
                return Err(CoreError::federation(format!(
                    "delivered dummy task {} must have unit weight, got {}",
                    t.id, t.weight
                )));
            }
            Task::dummy(TaskId(t.id))
        } else {
            if t.weight == 0 {
                return Err(CoreError::federation(format!(
                    "delivered task {} must have positive weight",
                    t.id
                )));
            }
            Task::new(TaskId(t.id), t.weight)
        };
        out.tasks.push((edge_id(t.edge)?, node_id(t.node)?, task));
    }
    for (node, amount) in batch.dummy {
        out.dummy.push((node_id(node)?, amount));
    }
    for (node, real, dummy) in batch.tokens {
        out.tokens.push((node_id(node)?, real, dummy));
    }
    for (edge, delta) in batch.deltas {
        out.deltas.push((edge_id(edge)?, delta));
    }
    Ok(out)
}

fn run_worker(
    scenario: Scenario,
    wire: Wire,
    rank: usize,
    checkpoint_every: Option<usize>,
) -> Result<ScenarioOutcome, BenchError> {
    let parts = scenario.federation;
    let mut link = WorkerLink { wire, rank, parts };
    match worker_loop(&scenario, &mut link, checkpoint_every) {
        Ok(outcome) => Ok(outcome),
        Err(err) => {
            // Best effort: name the cause on the coordinator's side instead
            // of leaving it a bare EOF.
            let _ = link.wire.send(&Record::Abort {
                error: err.to_string(),
            });
            Err(err)
        }
    }
}

fn worker_loop(
    scenario: &Scenario,
    link: &mut WorkerLink,
    checkpoint_every: Option<usize>,
) -> Result<ScenarioOutcome, BenchError> {
    let rank = link.rank;
    let world = build_world(scenario)?;
    let schedule = churn_schedule(world.class, scenario, &world.graph, &world.speeds)
        .map_err(BenchError::Run)?;
    let mut engine = Engine::build(
        scenario,
        Arc::clone(&world.graph),
        &world.speeds,
        &world.initial,
        scenario.seed,
    )?;
    let mut fed = FederatedExecutor::new(rank, link.parts, scenario.shards)?;
    let mut stream = ScenarioEvents::new(scenario, &world.speeds, world.first_task_id);
    let mut events = RoundEvents::default();
    let mut churn = schedule.into_iter().peekable();

    for round in 0..scenario.rounds {
        match link.wire.recv()? {
            Record::Round { round: r } if r == round as u64 => {}
            other => return Err(link.wire.unexpected(&format!("round {round}"), &other)),
        }
        let mut reassembled = false;
        while churn.peek().is_some_and(|step| step.round == round) {
            if !reassembled {
                sync_state(scenario, link, &mut engine, round)?;
                reassembled = true;
            }
            // lint: allow(R03, the peek in the loop condition proves Some)
            let step = churn.next().expect("peeked entry");
            engine
                .replace_topology(step.graph, &step.speeds, step.delta.as_ref())
                .map_err(|err| BenchError::run(format!("churn at round {round}: {err}")))?;
            stream.set_topology(engine.speeds());
        }
        stream.fill_round(round, &mut events);
        if !events.is_empty() {
            engine
                .apply_events_federated(&events, &mut fed)
                .map_err(|err| BenchError::run(format!("events at round {round}: {err}")))?;
        }
        engine
            .step_federated(&mut fed, link)
            .map_err(|err| BenchError::run(format!("federated round {round}: {err}")))?;
        let done = round + 1;
        if done % scenario.sample_every == 0 || done == scenario.rounds {
            send_sample(link, &engine, &fed, done)?;
        }
        if let Some(every) = checkpoint_every {
            if every > 0 && done % every == 0 {
                let text = snapshot::render(&Snapshot {
                    scenario: scenario.to_json(),
                    driver: Json::Null,
                    round: done as u64,
                    engine: engine.capture(),
                });
                link.wire.send(&Record::State {
                    rank: rank as u64,
                    round: done as u64,
                    snapshot: text,
                })?;
            }
        }
    }

    match link.wire.recv()? {
        Record::Finish => {}
        other => return Err(link.wire.unexpected("the finish record", &other)),
    }
    link.wire.send(&Record::Done {
        rank: rank as u64,
        dummy_created: engine.dummy_created(),
        engine: engine.name().to_string(),
    })?;
    Ok(ScenarioOutcome {
        scenario: scenario.clone(),
        engine: engine.name().to_string(),
        // The assembled document lives on the coordinator; a worker outcome
        // deliberately carries no trajectory.
        trajectory: Vec::new(),
        dummy_created: engine.dummy_created(),
        ingest: None,
    })
}

/// The pre-churn barrier: publish this rank's full state, receive the
/// assembled global state, and restore it so every rank re-partitions the
/// new topology from identical ground truth. Ranks other than 0 zero their
/// counter partials first — the assembled totals live on rank 0, keeping the
/// per-rank partials disjoint.
fn sync_state(
    scenario: &Scenario,
    link: &mut WorkerLink,
    engine: &mut Engine,
    round: usize,
) -> Result<(), BenchError> {
    let text = snapshot::render(&Snapshot {
        scenario: scenario.to_json(),
        driver: Json::Null,
        round: round as u64,
        engine: engine.capture(),
    });
    link.wire.send(&Record::State {
        rank: link.rank as u64,
        round: round as u64,
        snapshot: text,
    })?;
    match link.wire.recv()? {
        Record::Restore {
            round: r,
            snapshot: text,
        } if r == round as u64 => {
            let snap = snapshot::parse(&text)
                .map_err(|e| BenchError::protocol(format!("assembled state: {e}")))?;
            let mut state = snap.engine;
            if link.rank != 0 {
                zero_counters(&mut state);
            }
            engine.restore(&state)?;
            Ok(())
        }
        other => Err(link.wire.unexpected("the assembled restore", &other)),
    }
}

/// Zeroes the counter partials of an assembled state before a non-zero rank
/// restores it (the totals are carried forward by rank 0 alone).
fn zero_counters(state: &mut EngineState) {
    match &mut state.discrete {
        DiscreteState::Alg1(s) => {
            s.dummy_created = 0;
            s.items_sent = 0;
            s.arrived_weight = 0;
            s.completed_weight = 0;
        }
        DiscreteState::Alg2(s) => {
            s.dummy_created = 0;
            s.arrived_weight = 0;
            s.completed_weight = 0;
        }
    }
}

/// Publishes this rank's sample slice: owned load/real-load entries as
/// IEEE-754 bits plus its counter partials.
fn send_sample(
    link: &mut WorkerLink,
    engine: &Engine,
    fed: &FederatedExecutor,
    done: usize,
) -> Result<(), BenchError> {
    let range = fed.plan().node_range();
    let loads = engine.loads();
    let real = engine.real_loads();
    link.wire.send(&Record::Sample {
        rank: link.rank as u64,
        round: done as u64,
        loads: loads[range.clone()].iter().map(|x| x.to_bits()).collect(),
        real: real[range.clone()].iter().map(|x| x.to_bits()).collect(),
        dummy_load: engine.dummy_holdings()[range].iter().sum(),
        arrived: engine.arrived_weight(),
        completed: engine.completed_weight(),
    })
}
