//! Hot-path benchmark: measures the per-round cost of the optimised engine
//! (buffer-reuse flow kernel + `TaskQueue` storage + shared graphs) against a
//! faithful reimplementation of the seed engine's per-round semantics
//! (per-round `Vec` allocations, `Vec<Task>` storage with O(k) scans and
//! O(k) removals, cloned cumulative-flow snapshots), and writes the numbers
//! to `BENCH_hotpath.json` so the performance trajectory is tracked — and
//! CI-gated via `lb bench-check` — from this change onward.
//!
//! Run with: `lb hotpath [--quick]` (or the legacy
//! `cargo run --release -p lb-bench --bin hotpath [-- --quick]` shim).

use crate::harness::{standard_initial_load, GraphClass};
use crate::parallel::worker_threads;
use lb_analysis::Json;
use lb_core::continuous::{ContinuousProcess, Fos};
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RoundEvents, TaskPicker};
use lb_core::ingest::merge::MergeSession;
use lb_core::snapshot::{self, Snapshot};
use lb_core::{ingest, InitialLoad, ShardedExecutor, Speeds, Task, TaskId};
use lb_graph::{AlphaScheme, Graph};
use std::sync::Arc;
use std::time::Instant;

/// A faithful reimplementation of the seed engine's Algorithm 1 round:
/// the continuous twin allocates a fresh flow vector per round (the
/// allocating `compute_flows` path), the cumulative flows are snapshotted
/// with `to_vec`, per-node storage is a `Vec<Task>` with an O(k) pick scan
/// and an O(k) `remove`, and the edge list is collected into a fresh `Vec`
/// each round — exactly the allocations and scans the optimised engine
/// removed.
///
/// This is the **single** seed-semantics reference: the benchmark below
/// times it, and `tests/engine_equivalence.rs` pins the optimised engine's
/// trajectories against it bit for bit. Keep any semantic change in sync
/// with both consumers.
pub struct SeedAlg1<A: ContinuousProcess> {
    process: A,
    graph: Graph, // deep clone, as the seed constructor made
    twin_loads: Vec<f64>,
    cumulative_flow: Vec<f64>,
    tasks: Vec<Vec<Task>>,
    dummy: Vec<u64>,
    discrete_flow: Vec<i64>,
    wmax: u64,
    picker: TaskPicker,
    round: usize,
    dummy_created: u64,
    items_sent: u64,
}

impl<A: ContinuousProcess> SeedAlg1<A> {
    /// Builds the reference discretization of `process` starting from
    /// `initial` (panics on dimension mismatch, unlike the checked optimised
    /// constructor — this is test/bench scaffolding).
    pub fn new(process: A, initial: &InitialLoad, picker: TaskPicker) -> Self {
        let graph = process.graph().clone();
        let m = graph.edge_count();
        let n = graph.node_count();
        SeedAlg1 {
            twin_loads: initial.load_vector_f64(),
            cumulative_flow: vec![0.0; m],
            tasks: initial.clone().into_tasks(),
            dummy: vec![0; n],
            discrete_flow: vec![0; m],
            wmax: initial.max_weight(),
            picker,
            round: 0,
            dummy_created: 0,
            items_sent: 0,
            process,
            graph,
        }
    }

    /// Executes one seed-semantics round.
    pub fn step(&mut self) {
        // Twin advance through the allocating kernel wrapper.
        let flows = self.process.compute_flows(self.round, &self.twin_loads);
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let net = flows[e].net();
            self.twin_loads[u] -= net;
            self.twin_loads[v] += net;
            self.cumulative_flow[e] += net;
        }

        let continuous_flow = self.cumulative_flow.to_vec();
        let mut deliveries: Vec<(usize, Task)> = Vec::new();
        let mut dummy_deliveries: Vec<u64> = vec![0; self.graph.node_count()];
        let edges: Vec<(usize, usize, usize)> = self
            .graph
            .edges()
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e, u, v))
            .collect();
        for (e, u, v) in edges {
            let deficit = continuous_flow[e] - self.discrete_flow[e] as f64;
            let (sender, receiver, magnitude, sign) = if deficit >= 0.0 {
                (u, v, deficit, 1i64)
            } else {
                (v, u, -deficit, -1i64)
            };
            let mut moved: u64 = 0;
            while magnitude - moved as f64 >= self.wmax as f64 {
                if let Some(idx) = self.picker.pick_reference(&self.tasks[sender]) {
                    let task = self.tasks[sender].remove(idx);
                    moved += task.weight();
                    deliveries.push((receiver, task));
                } else {
                    if self.dummy[sender] > 0 {
                        self.dummy[sender] -= 1;
                    } else {
                        self.dummy_created += 1;
                    }
                    moved += 1;
                    dummy_deliveries[receiver] += 1;
                }
                self.items_sent += 1;
            }
            self.discrete_flow[e] += sign * moved as i64;
        }
        for (receiver, task) in deliveries {
            self.tasks[receiver].push(task);
        }
        for (node, amount) in dummy_deliveries.into_iter().enumerate() {
            self.dummy[node] += amount;
        }
        self.round += 1;
    }

    /// Per-node loads including dummy load.
    pub fn loads(&self) -> Vec<f64> {
        self.tasks
            .iter()
            .zip(&self.dummy)
            .map(|(tasks, &d)| (tasks.iter().map(|t| t.weight()).sum::<u64>() + d) as f64)
            .collect()
    }

    /// Per-node loads excluding dummy load.
    pub fn real_loads(&self) -> Vec<f64> {
        self.tasks
            .iter()
            .map(|tasks| tasks.iter().map(|t| t.weight()).sum::<u64>() as f64)
            .collect()
    }

    /// Cumulative net continuous flow per canonical edge.
    pub fn cumulative_flows(&self) -> &[f64] {
        &self.cumulative_flow
    }

    /// Total dummy load created from the infinite source.
    pub fn dummy_created(&self) -> u64 {
        self.dummy_created
    }

    /// Total items moved over edges.
    pub fn items_sent(&self) -> u64 {
        self.items_sent
    }
}

struct EngineResult {
    rounds: usize,
    elapsed_secs: f64,
    items_sent: u64,
    final_loads: Vec<f64>,
}

impl EngineResult {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.elapsed_secs
    }

    fn ns_per_task_send(&self) -> f64 {
        if self.items_sent == 0 {
            return 0.0;
        }
        self.elapsed_secs * 1e9 / self.items_sent as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("rounds", Json::from(self.rounds)),
            ("elapsed_secs", Json::from(self.elapsed_secs)),
            ("items_sent", Json::from(self.items_sent)),
            ("rounds_per_sec", Json::from(self.rounds_per_sec())),
            ("ns_per_task_send", Json::from(self.ns_per_task_send())),
        ])
    }
}

fn run_optimized(
    graph: &Arc<Graph>,
    speeds: &Speeds,
    initial: &InitialLoad,
    rounds: usize,
) -> EngineResult {
    let fos =
        Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let start = Instant::now();
    alg1.run(rounds);
    let elapsed_secs = start.elapsed().as_secs_f64();
    EngineResult {
        rounds,
        elapsed_secs,
        items_sent: alg1.items_sent(),
        final_loads: alg1.loads(),
    }
}

/// Times the same engine stepping through a [`ShardedExecutor`] with
/// `shards` shards. The executor's worker threads and shard plan are built
/// before the clock starts (a long-running simulation amortises them); the
/// per-shard task outboxes warm up during the first timed rounds, exactly
/// as the sequential engine's delivery scratch does — both measurements
/// include the same class of first-round growth.
fn run_sharded(
    graph: &Arc<Graph>,
    speeds: &Speeds,
    initial: &InitialLoad,
    rounds: usize,
    shards: usize,
) -> EngineResult {
    let fos =
        Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let mut exec = ShardedExecutor::new(shards);
    exec.bind(graph);
    let start = Instant::now();
    for _ in 0..rounds {
        alg1.step_sharded(&mut exec);
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    EngineResult {
        rounds,
        elapsed_secs,
        items_sent: alg1.items_sent(),
        final_loads: alg1.loads(),
    }
}

fn run_baseline(
    graph: &Arc<Graph>,
    speeds: &Speeds,
    initial: &InitialLoad,
    rounds: usize,
) -> EngineResult {
    let fos =
        Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut alg1 = SeedAlg1::new(fos, initial, TaskPicker::Fifo);
    let start = Instant::now();
    for _ in 0..rounds {
        alg1.step();
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    EngineResult {
        rounds,
        elapsed_secs,
        items_sent: alg1.items_sent(),
        final_loads: alg1.loads(),
    }
}

/// Events per batch in the ingestion benchmark (half completions, half
/// arrivals — the shape of a sustained-load round).
const INGEST_BATCH: usize = 128;

/// Channel capacity of the ingestion benchmark (how far the producer may run
/// ahead of the consumer).
const INGEST_CAPACITY: usize = 64;

/// Fills `out` with round `round`'s deterministic benchmark batch.
fn fill_ingest_batch(out: &mut RoundEvents, round: usize, n: usize, next_id: &mut u64) {
    out.clear();
    for k in 0..INGEST_BATCH / 2 {
        out.completions.push(((round + 7 * k) % n, 1));
    }
    for k in 0..INGEST_BATCH / 2 {
        let task = Task::new(TaskId(*next_id), 1 + (k as u64 & 1));
        *next_id += 1;
        out.arrivals.push(((round + 13 * k) % n, task));
    }
}

/// Folds a batch into a checksum, standing in for event application — keeps
/// the comparison about delivery cost, and defeats dead-code elimination.
fn consume_ingest_batch(events: &RoundEvents) -> u64 {
    let mut sum = 0u64;
    for &(node, weight) in &events.completions {
        sum += node as u64 + weight;
    }
    for &(node, task) in &events.arrivals {
        sum += node as u64 + task.weight();
    }
    sum
}

struct IngestResult {
    elapsed_secs: f64,
    events: u64,
    checksum: u64,
}

impl IngestResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed_secs
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::from(self.events)),
            ("elapsed_secs", Json::from(self.elapsed_secs)),
            ("events_per_sec", Json::from(self.events_per_sec())),
        ])
    }
}

/// The synchronous reference: generate and consume each batch inline, the
/// way the sync scenario driver feeds the engine.
fn run_ingest_sync(rounds: usize, n: usize) -> IngestResult {
    let mut events = RoundEvents::default();
    let mut next_id = 0u64;
    let mut checksum = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        fill_ingest_batch(&mut events, round, n, &mut next_id);
        checksum = checksum.wrapping_add(consume_ingest_batch(&events));
    }
    IngestResult {
        elapsed_secs: start.elapsed().as_secs_f64(),
        events: (rounds * INGEST_BATCH) as u64,
        checksum,
    }
}

/// Feeds in the merge-stage benchmark entry.
const MERGE_FEEDS: usize = 2;

/// The merge path: [`MERGE_FEEDS`] producer threads each generate the full
/// deterministic batch and send their contiguous slice of it over their own
/// channel; the consumer k-way merges the slices back into whole batches.
/// Coalescing in feed order reconstructs each batch exactly, so the checksum
/// must match the sync path's.
fn run_ingest_merge(rounds: usize, n: usize) -> IngestResult {
    let start = Instant::now();
    let mut consumers = Vec::with_capacity(MERGE_FEEDS);
    let mut producers = Vec::with_capacity(MERGE_FEEDS);
    for feed in 0..MERGE_FEEDS {
        let (mut tx, rx) = ingest::bounded(INGEST_CAPACITY);
        consumers.push(rx);
        producers.push(std::thread::spawn(move || {
            let mut next_id = 0u64;
            let mut full = RoundEvents::default();
            for round in 0..rounds {
                fill_ingest_batch(&mut full, round, n, &mut next_id);
                let mut batch = tx.buffer();
                batch.completions.extend_from_slice(
                    &full.completions
                        [crate::dynamic::feed_slice(full.completions.len(), feed, MERGE_FEEDS)],
                );
                batch.arrivals.extend_from_slice(
                    &full.arrivals
                        [crate::dynamic::feed_slice(full.arrivals.len(), feed, MERGE_FEEDS)],
                );
                if tx.send(round as u64, batch).is_err() {
                    return;
                }
            }
        }));
    }
    let mut session = MergeSession::new(consumers);
    let mut merged = RoundEvents::default();
    let mut checksum = 0u64;
    for round in 0..rounds {
        session
            .fill_round(round as u64, &mut merged)
            .expect("merge bench batches stay in order");
        checksum = checksum.wrapping_add(consume_ingest_batch(&merged));
    }
    drop(session);
    for producer in producers {
        producer.join().expect("merge bench producer finishes");
    }
    IngestResult {
        elapsed_secs: start.elapsed().as_secs_f64(),
        events: (rounds * INGEST_BATCH) as u64,
        checksum,
    }
}

/// The channel path: a producer thread generates the same batches and sends
/// them through the bounded SPSC channel; the consumer drains and recycles.
/// The timed window covers producer spawn through join — the full cost of
/// standing up and draining the ingestion pipeline.
fn run_ingest_channel(rounds: usize, n: usize) -> IngestResult {
    let start = Instant::now();
    let (mut tx, mut rx) = ingest::bounded(INGEST_CAPACITY);
    let producer = std::thread::spawn(move || {
        let mut next_id = 0u64;
        for round in 0..rounds {
            let mut batch = tx.buffer();
            fill_ingest_batch(&mut batch, round, n, &mut next_id);
            if tx.send(round as u64, batch).is_err() {
                return;
            }
        }
    });
    let mut checksum = 0u64;
    while let Some((_, events)) = rx.recv() {
        checksum = checksum.wrapping_add(consume_ingest_batch(&events));
        rx.recycle(events);
    }
    producer.join().expect("ingest producer finishes");
    IngestResult {
        elapsed_secs: start.elapsed().as_secs_f64(),
        events: (rounds * INGEST_BATCH) as u64,
        checksum,
    }
}

/// Benchmarks event throughput through the async ingestion channel against
/// inline generation, returning the `ingest` entry of `BENCH_hotpath.json`.
/// The channel entry is gated by `lb bench-check` when the committed
/// baseline carries an `ingest.channel.events_per_sec` floor.
fn run_ingest_bench(quick: bool) -> Json {
    let rounds = if quick { 5_000 } else { 40_000 };
    let trials = if quick { 2 } else { 3 };
    // `n` is node-index space only — no engine in the loop. Trials
    // interleave the two paths so machine-load drift biases neither.
    let n = 8_192;
    let mut sync_trials = Vec::new();
    let mut channel_trials = Vec::new();
    let mut merge_trials = Vec::new();
    for _ in 0..trials {
        sync_trials.push(run_ingest_sync(rounds, n));
        channel_trials.push(run_ingest_channel(rounds, n));
        merge_trials.push(run_ingest_merge(rounds, n));
    }
    assert!(
        sync_trials
            .iter()
            .chain(&channel_trials)
            .chain(&merge_trials)
            .all(|r| r.checksum == sync_trials[0].checksum),
        "ingestion paths consumed different event streams"
    );
    let sync = sync_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    let channel = channel_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    let merge = merge_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    eprintln!(
        "ingest: sync {:.0} events/sec, channel {:.0} events/sec ({:.2}x channel \
         overhead), merge({MERGE_FEEDS}) {:.0} events/sec",
        sync.events_per_sec(),
        channel.events_per_sec(),
        sync.events_per_sec() / channel.events_per_sec(),
        merge.events_per_sec(),
    );
    Json::obj([
        (
            "config",
            Json::obj([
                ("batch", Json::from(INGEST_BATCH)),
                ("rounds", Json::from(rounds)),
                ("capacity", Json::from(INGEST_CAPACITY)),
                ("merge_feeds", Json::from(MERGE_FEEDS)),
            ]),
        ),
        ("sync", sync.to_json()),
        ("channel", channel.to_json()),
        ("merge", merge.to_json()),
        (
            "overhead_ratio",
            Json::from(sync.events_per_sec() / channel.events_per_sec()),
        ),
    ])
}

/// Benchmarks the checkpoint path on the large-instance engine state:
/// capture + render + atomic write (the per-cadence cost of
/// `--checkpoint-every`) and load + parse + restore (the `--resume` startup
/// cost), both expressed as MB/sec over the on-disk snapshot size. The
/// restored engine is stepped once against the original to prove the
/// round-trip is exact. Gated by `lb bench-check` when the committed
/// baseline carries `snapshot.capture_write.mb_per_sec` /
/// `snapshot.read_restore.mb_per_sec` floors.
fn run_snapshot_bench(
    graph: &Arc<Graph>,
    speeds: &Speeds,
    initial: &InitialLoad,
    quick: bool,
) -> Json {
    let fos =
        Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    // A few warm rounds so queues, flow ledgers and the twin carry the mixed
    // state a mid-run checkpoint serializes.
    let warm = if quick { 2 } else { 4 };
    alg1.run(warm);
    let trials = if quick { 2 } else { 3 };
    let path =
        std::env::temp_dir().join(format!("lb_hotpath_snapshot_{}.jsonl", std::process::id()));
    let header = Json::obj([("name", Json::from("hotpath_snapshot"))]);

    let mut write_secs = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        let snap = Snapshot {
            scenario: header.clone(),
            driver: Json::Null,
            round: warm as u64,
            engine: alg1.capture(),
        };
        snapshot::write_atomic(&path, &snap).expect("snapshot writes");
        write_secs = write_secs.min(start.elapsed().as_secs_f64());
    }
    let bytes = std::fs::metadata(&path).expect("snapshot on disk").len();

    let fos =
        Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut restored = FlowImitation::new(fos, initial, speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    let mut read_secs = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        let snap = snapshot::load(&path).expect("snapshot loads");
        restored.restore(&snap.engine).expect("snapshot restores");
        read_secs = read_secs.min(start.elapsed().as_secs_f64());
    }
    std::fs::remove_file(&path).ok();

    // The round-trip must be exact: both engines take the same next step.
    alg1.step();
    restored.step();
    assert_eq!(
        alg1.loads(),
        restored.loads(),
        "restored engine diverged from the captured one"
    );

    let mb = bytes as f64 / 1e6;
    eprintln!(
        "snapshot: {bytes} bytes on disk, capture+write {:.1} MB/sec, \
         read+restore {:.1} MB/sec",
        mb / write_secs,
        mb / read_secs,
    );
    Json::obj([
        (
            "config",
            Json::obj([
                ("graph", Json::from(graph.name())),
                ("nodes", Json::from(graph.node_count())),
                ("tasks", Json::from(initial.task_count())),
                ("bytes", Json::from(bytes)),
            ]),
        ),
        (
            "capture_write",
            Json::obj([
                ("elapsed_secs", Json::from(write_secs)),
                ("mb_per_sec", Json::from(mb / write_secs)),
            ]),
        ),
        (
            "read_restore",
            Json::obj([
                ("elapsed_secs", Json::from(read_secs)),
                ("mb_per_sec", Json::from(mb / read_secs)),
            ]),
        ),
    ])
}

/// Benchmarks the federated driver: the scenario below partitioned across
/// two worker threads speaking the real TCP round protocol to a coordinator
/// [`crate::dynamic::Session`] on localhost — the per-round cost of the
/// three barrier relays plus partitioned stepping, expressed as rounds/sec.
/// The federated result document is asserted byte-identical to the
/// sequential run's before the numbers are reported. Gated by
/// `lb bench-check` when the committed baseline carries a
/// `federate.rounds_per_sec` floor.
fn run_federate_bench(quick: bool) -> Json {
    use lb_workloads::Scenario;
    let parts = 2usize;
    let rounds: usize = if quick { 100 } else { 400 };
    let text = format!(
        r#"{{
  "name": "hotpath_federate",
  "seed": 7,
  "rounds": {rounds},
  "sample_every": {rounds},
  "federation": {parts},
  "algorithm": "alg1",
  "model": "fos",
  "topology": {{"family": "hypercube", "target_n": 4096}},
  "initial": {{
    "distribution": {{"model": "single_source", "source": 0}},
    "tokens_per_node": 4,
    "pad": "degree"
  }},
  "arrivals": {{"model": "poisson", "rate_per_node": 0.25, "max_weight": 1}},
  "completions": {{"model": "uniform", "weight_per_speed": 1}}
}}"#
    );
    let scenario = Scenario::parse(&text).expect("federate bench scenario parses");

    let sequential = crate::dynamic::Session::from_scenario(&scenario)
        .run(|_| {})
        .expect("federate bench sequential run");

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("federate bench bind");
    let addr = listener
        .local_addr()
        .expect("federate bench bound address")
        .to_string();
    let workers: Vec<_> = (0..parts)
        .map(|rank| {
            let addr = addr.clone();
            std::thread::spawn(move || crate::federate::worker_entry(&addr, rank, parts))
        })
        .collect();
    // The timed window covers worker admission through the final round
    // barrier — the full cost of standing up and driving the federation.
    let start = Instant::now();
    let role = crate::federate::FederationRole::coordinator(listener, Vec::new());
    let federated = crate::dynamic::Session::from_scenario(&scenario)
        .federated(role, parts)
        .run(|_| {})
        .expect("federate bench coordinator run");
    let elapsed_secs = start.elapsed().as_secs_f64();
    for worker in workers {
        worker
            .join()
            .expect("federate bench worker thread")
            .expect("federate bench worker run");
    }
    assert_eq!(
        federated.to_json().render(),
        sequential.to_json().render(),
        "federated driver diverged from the sequential driver"
    );

    let rounds_per_sec = rounds as f64 / elapsed_secs;
    eprintln!("federate ({parts} processes): {rounds_per_sec:.1} rounds/sec");
    Json::obj([
        (
            "config",
            Json::obj([
                ("parts", Json::from(parts)),
                ("nodes", Json::from(4096usize)),
                ("rounds", Json::from(rounds)),
            ]),
        ),
        ("elapsed_secs", Json::from(elapsed_secs)),
        ("rounds_per_sec", Json::from(rounds_per_sec)),
    ])
}

/// Edges added (and, separately, removed) per churn round in the churn
/// benchmark — the fixed `Δ` of the delta-rewire path.
const CHURN_DELTA_EDGES: usize = 16;

/// A deterministic `Δ`-edge rewire of the `dim`-dimensional hypercube:
/// removes the dimension-0 edge at every 8th node and adds the (two-bit,
/// hence non-hypercube) `i ↔ i^3` chord there instead. Every endpoint is
/// distinct, so the delta touches exactly `4·Δ` node slots.
fn churn_delta(n: usize) -> lb_graph::GraphDelta {
    assert!(8 * CHURN_DELTA_EDGES <= n, "graph too small for churn delta");
    let removed = (0..CHURN_DELTA_EDGES).map(|j| (8 * j, 8 * j ^ 1));
    let added = (0..CHURN_DELTA_EDGES).map(|j| (8 * j, 8 * j ^ 3));
    lb_graph::GraphDelta::new(n, added, removed).expect("churn delta is canonical")
}

/// Inverts a delta: applying `invert(d)` after `d` restores the graph.
fn invert_delta(delta: &lb_graph::GraphDelta) -> lb_graph::GraphDelta {
    lb_graph::GraphDelta {
        removed: delta.added.clone(),
        added: delta.removed.clone(),
    }
}

/// Benchmarks the delta-churn path: a rewire-heavy loop on the n = 8192
/// hypercube where **every** round patches the topology through
/// [`Fos::patched`] + `replace_topology` (a fixed Δ = [`CHURN_DELTA_EDGES`]
/// alternating with its inverse) and then steps the engine once. The
/// patched trajectory is asserted bit-identical to the same loop run
/// through full `Fos::new` rebuilds before the numbers are reported.
/// `churn.rounds_per_sec` is gated by `lb bench-check` when the committed
/// baseline carries a floor; the `delta_scaling` block reports the patch
/// cost at fixed Δ on two graph sizes next to the full-rebuild cost — the
/// evidence that rewire cost tracks Δ, not m.
fn run_churn_bench(quick: bool) -> Json {
    let dim = 13u32; // 8192 nodes
    let (load_per_node, rounds, trials) = if quick { (2, 30, 2) } else { (2, 120, 3) };

    let run_loop = |patch: bool, rounds: usize| -> EngineResult {
        let graph: Arc<Graph> = lb_graph::generators::hypercube(dim).expect("hypercube builds").into();
        let n = graph.node_count();
        let d = graph.max_degree() as u64;
        let speeds = Speeds::uniform(n);
        let initial = standard_initial_load(n, load_per_node, d);
        let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
            .expect("FOS constructs");
        let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
            .expect("dimensions agree");
        let forward = churn_delta(n);
        let backward = invert_delta(&forward);
        let mut current = graph;
        let start = Instant::now();
        for round in 0..rounds {
            let delta = if round % 2 == 0 { &forward } else { &backward };
            let next: Arc<Graph> = current.apply_delta(delta).expect("delta applies").into();
            let process = if patch {
                alg1.continuous()
                    .process()
                    .patched(Arc::clone(&next), delta)
                    .expect("FOS patches")
            } else {
                Fos::new(Arc::clone(&next), &speeds, AlphaScheme::MaxDegreePlusOne)
                    .expect("FOS constructs")
            };
            alg1.replace_topology(process).expect("topology replaces");
            current = next;
            alg1.step();
        }
        EngineResult {
            rounds,
            elapsed_secs: start.elapsed().as_secs_f64(),
            items_sent: alg1.items_sent(),
            final_loads: alg1.loads(),
        }
    };

    // Trials interleave the patched and rebuild loops so machine-load drift
    // biases neither; the fastest trial of each is kept.
    let mut patched_trials = Vec::new();
    let mut rebuild_trials = Vec::new();
    for _ in 0..trials {
        patched_trials.push(run_loop(true, rounds));
        rebuild_trials.push(run_loop(false, rounds));
    }
    let patched = patched_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    let rebuild = rebuild_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    // The delta path must be a pure optimisation: same trajectory, bit for
    // bit, as rebuilding the process from scratch every churn.
    assert_eq!(
        patched.final_loads, rebuild.final_loads,
        "delta-patched churn diverged from the full-rebuild path"
    );
    eprintln!(
        "churn (Δ = {CHURN_DELTA_EDGES} edges/round): patched {:.1} rounds/sec, \
         full-rebuild {:.1} rounds/sec",
        patched.rounds_per_sec(),
        rebuild.rounds_per_sec(),
    );

    // Δ-vs-m evidence: the same fixed-Δ patch timed on two graph sizes,
    // next to the full rebuild it replaces. Patch cost is a copy walk plus
    // O(Δ·d) recompute; rebuild cost is the full O(m) alpha derivation.
    let scale = |dim: u32| -> Json {
        let graph: Arc<Graph> = lb_graph::generators::hypercube(dim).expect("hypercube builds").into();
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let fos = Fos::new(Arc::clone(&graph), &speeds, AlphaScheme::MaxDegreePlusOne)
            .expect("FOS constructs");
        let delta = churn_delta(n);
        let next: Arc<Graph> = graph.apply_delta(&delta).expect("delta applies").into();
        let reps = if quick { 10 } else { 40 };
        let mut patch_secs = f64::INFINITY;
        let mut rebuild_secs = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            let patched = fos
                .patched(Arc::clone(&next), &delta)
                .expect("FOS patches");
            patch_secs = patch_secs.min(start.elapsed().as_secs_f64());
            drop(patched);
            let start = Instant::now();
            let fresh = Fos::new(Arc::clone(&next), &speeds, AlphaScheme::MaxDegreePlusOne)
                .expect("FOS constructs");
            rebuild_secs = rebuild_secs.min(start.elapsed().as_secs_f64());
            drop(fresh);
        }
        eprintln!(
            "churn scaling: n = {n}, m = {}: patch {:.1} µs, rebuild {:.1} µs",
            graph.edge_count(),
            patch_secs * 1e6,
            rebuild_secs * 1e6,
        );
        Json::obj([
            ("nodes", Json::from(n)),
            ("edges", Json::from(graph.edge_count())),
            ("patch_secs", Json::from(patch_secs)),
            ("rebuild_secs", Json::from(rebuild_secs)),
        ])
    };
    let small = scale(dim);
    let large = scale(dim + 2);

    Json::obj([
        (
            "config",
            Json::obj([
                ("nodes", Json::from(1usize << dim)),
                ("delta_edges", Json::from(CHURN_DELTA_EDGES)),
                ("rounds", Json::from(rounds)),
            ]),
        ),
        ("rounds_per_sec", Json::from(patched.rounds_per_sec())),
        ("elapsed_secs", Json::from(patched.elapsed_secs)),
        (
            "full_rebuild",
            Json::obj([("rounds_per_sec", Json::from(rebuild.rounds_per_sec()))]),
        ),
        (
            "delta_scaling",
            Json::obj([("small", small), ("large", large)]),
        ),
    ])
}

/// Peak resident set size of this process in kilobytes (Linux `VmHWM`),
/// or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Runs the hot-path benchmark and writes `BENCH_hotpath.json`.
///
/// `shards` sets the shard count of the sharded large-instance entry;
/// explicit values are used verbatim (the CLI range-checks them), and the
/// default is `min(cores, 8)` with a floor of 2 so the sharded path is
/// always exercised even on a single-core host.
///
/// # Panics
///
/// Panics if the optimised engine's trajectory diverges from the seed
/// semantics, if the sharded engine diverges from the sequential one, or if
/// the artefact cannot be written.
pub fn run(quick: bool, shards: Option<usize>) {
    // The acceptance configuration: the ~10k-node hypercube (rounded to the
    // nearest power of two, 8192), single-source workload, FIFO picking.
    let target_n = 10_000;
    let (load_per_node, rounds, trials) = if quick { (2, 5, 1) } else { (4, 12, 3) };

    let graph: Arc<Graph> = GraphClass::Hypercube
        .build(target_n, 0)
        .expect("hypercube builds")
        .into();
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let speeds = Speeds::uniform(n);
    let initial = standard_initial_load(n, load_per_node, d);

    eprintln!(
        "hotpath: {} (n = {n}, m = {}), {} tasks, {rounds} rounds, {trials} trial(s), {} worker thread(s)",
        graph.name(),
        graph.edge_count(),
        initial.task_count(),
        worker_threads(),
    );

    // Both engines are timed under the same policy — trials run one at a
    // time, so neither side's min-of-trials is depressed by co-running
    // trials contending for memory bandwidth. Keep the fastest trial of
    // each engine. (The `lb bench-check` CI gate compares rounds/sec across
    // runs, so the timing policy must stay contention-free and symmetric.)
    let optimized = (0..trials)
        .map(|_| run_optimized(&graph, &speeds, &initial, rounds))
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    eprintln!(
        "optimized: {:.1} rounds/sec, {:.0} ns/task-send",
        optimized.rounds_per_sec(),
        optimized.ns_per_task_send()
    );

    let baseline = (0..trials.min(2))
        .map(|_| run_baseline(&graph, &speeds, &initial, rounds))
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    eprintln!(
        "baseline (seed semantics): {:.2} rounds/sec, {:.0} ns/task-send",
        baseline.rounds_per_sec(),
        baseline.ns_per_task_send()
    );

    // Both engines implement the same algorithm; their trajectories must
    // agree exactly (FIFO picking is deterministic).
    assert_eq!(
        baseline.final_loads, optimized.final_loads,
        "optimised engine diverged from seed semantics"
    );

    let speedup = optimized.rounds_per_sec() / baseline.rounds_per_sec();
    eprintln!("speedup: {speedup:.1}x rounds/sec");

    // The sharded large-instance entry: a hypercube with n ≥ 10⁵ nodes —
    // the regime where a single instance's serial O(m) round is the wall —
    // stepped sequentially and through a ShardedExecutor. Trajectories must
    // agree bit for bit; the throughput ratio is the intra-instance scaling
    // headline that `lb bench-check` gates. An explicit `--shards` /
    // `LB_BENCH_SHARDS` value is honoured verbatim (the CLI validates the
    // range); only the default is derived from the core count.
    let shards = shards.unwrap_or_else(|| worker_threads().clamp(2, 8));
    let large_graph: Arc<Graph> = GraphClass::Hypercube
        .build(100_000, 0)
        .expect("large hypercube builds")
        .into();
    let large_n = large_graph.node_count();
    let large_d = large_graph.max_degree() as u64;
    let large_speeds = Speeds::uniform(large_n);
    let large_initial = standard_initial_load(large_n, if quick { 1 } else { 2 }, large_d);
    let large_rounds = if quick { 3 } else { 8 };
    eprintln!(
        "large: {} (n = {large_n}, m = {}), {} tasks, {large_rounds} rounds, {shards} shard(s)",
        large_graph.name(),
        large_graph.edge_count(),
        large_initial.task_count(),
    );

    // Trials interleave the two engines so slow drift in machine load or
    // clock frequency biases neither side; the fastest trial of each is kept.
    let mut sequential_trials = Vec::new();
    let mut sharded_trials = Vec::new();
    for _ in 0..trials.max(2) {
        sequential_trials.push(run_optimized(
            &large_graph,
            &large_speeds,
            &large_initial,
            large_rounds,
        ));
        sharded_trials.push(run_sharded(
            &large_graph,
            &large_speeds,
            &large_initial,
            large_rounds,
            shards,
        ));
    }
    let sequential_large = sequential_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    eprintln!(
        "large sequential: {:.1} rounds/sec",
        sequential_large.rounds_per_sec()
    );
    let sharded_large = sharded_trials
        .into_iter()
        .min_by(|a, b| a.elapsed_secs.total_cmp(&b.elapsed_secs))
        .expect("at least one trial");
    eprintln!(
        "large sharded ({shards} shards): {:.1} rounds/sec",
        sharded_large.rounds_per_sec()
    );
    assert_eq!(
        sequential_large.final_loads, sharded_large.final_loads,
        "sharded engine diverged from the sequential engine"
    );
    let sharded_speedup = sharded_large.rounds_per_sec() / sequential_large.rounds_per_sec();
    eprintln!("large sharded speedup: {sharded_speedup:.2}x rounds/sec");

    // The ingestion entry: event throughput through the async SPSC channel
    // vs inline generation (no engine in the loop — this isolates delivery).
    let ingest = run_ingest_bench(quick);

    // The snapshot entry: checkpoint capture+write and resume read+restore
    // throughput on the large-instance engine state.
    let snapshot_entry = run_snapshot_bench(&large_graph, &large_speeds, &large_initial, quick);

    // The federation entry: the two-process round protocol over localhost
    // TCP, asserted byte-identical to the sequential driver first.
    let federate_entry = run_federate_bench(quick);

    // The churn entry: per-round topology rewires through the delta-patch
    // path, asserted bit-identical to full rebuilds first.
    let churn_entry = run_churn_bench(quick);

    let report = Json::obj([
        ("benchmark", Json::from("hotpath_alg1_fifo")),
        (
            "config",
            Json::obj([
                ("graph", Json::from(graph.name())),
                ("nodes", Json::from(n)),
                ("edges", Json::from(graph.edge_count())),
                ("max_degree", Json::from(d)),
                ("tasks", Json::from(initial.task_count())),
                ("rounds", Json::from(rounds)),
                ("picker", Json::from("fifo")),
                ("quick", Json::from(quick)),
                ("worker_threads", Json::from(worker_threads())),
            ]),
        ),
        ("baseline_seed_semantics", baseline.to_json()),
        ("optimized", optimized.to_json()),
        ("speedup_rounds_per_sec", Json::from(speedup)),
        (
            "large",
            Json::obj([
                (
                    "config",
                    Json::obj([
                        ("graph", Json::from(large_graph.name())),
                        ("nodes", Json::from(large_n)),
                        ("edges", Json::from(large_graph.edge_count())),
                        ("tasks", Json::from(large_initial.task_count())),
                        ("rounds", Json::from(large_rounds)),
                        ("shards", Json::from(shards)),
                    ]),
                ),
                ("sequential", sequential_large.to_json()),
                ("sharded", sharded_large.to_json()),
                ("speedup_rounds_per_sec", Json::from(sharded_speedup)),
            ]),
        ),
        ("ingest", ingest),
        ("snapshot", snapshot_entry),
        ("federate", federate_entry),
        ("churn", churn_entry),
        ("peak_rss_kb", Json::from(peak_rss_kb())),
    ]);
    let path = "BENCH_hotpath.json";
    lb_analysis::write_bytes_atomic(
        std::path::Path::new(path),
        report.render_pretty().as_bytes(),
    )
    .expect("write BENCH_hotpath.json");
    println!("{}", report.render_pretty());
    eprintln!("(written to {path})");
}
