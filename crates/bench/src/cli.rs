//! The unified `lb` command-line interface.
//!
//! One binary fronts every experiment and tool in the harness:
//!
//! ```text
//! lb run <scenario.json> [--seed N] [--shards N] [--producer MODE]
//!        [--record PATH] [--checkpoint PATH --checkpoint-every N]
//!        [--ingest-stats PATH] [--out PATH] [--quiet]
//! lb run --resume <snapshot.jsonl> [--shards N] [--producer MODE] [...]
//! lb replay <trace.jsonl | -> [--follow] [--idle-timeout-ms N] [--shards N]
//!        [--ingest-stats PATH] [--out PATH] [--quiet]
//! lb serve-trace <trace.jsonl> [--out PATH] [--delay-ms N]
//! lb federate <scenario.json> [--parts N] [--shards N] [--seed N]
//!        [--checkpoint PATH --checkpoint-every N] [--listen ADDR]
//!        [--listen-info PATH] [--no-spawn] [--out PATH] [--quiet]
//! lb federate-worker --connect ADDR --rank R --parts N
//! lb table1|table2|theorem3|theorem8|trajectory|heterogeneous|
//!    dummy_ablation|fos_vs_sos|dynamic_arrivals [--quick]
//! lb hotpath [--quick] [--shards N]
//! lb bench-check [--baseline PATH] [--current PATH] [--max-regression PCT]
//! lb lint [--format human|json] [--root PATH] [PATHS…]
//! lb help
//! ```
//!
//! `LB_BENCH_SHARDS` is the environment fallback for `--shards` on `run`,
//! `replay` and `hotpath`.
//!
//! Argument parsing is strict: unknown subcommands, unknown options and
//! malformed values exit with status 2 and the usage message — a typo like
//! `--shard 4` fails loudly instead of silently running sequentially.
//!
//! The legacy per-experiment binaries (`table1`, `hotpath`, …) are thin
//! shims over [`shim`], so one dispatch table owns all argument parsing.
//!
//! Failures exit with the typed codes of
//! [`BenchError`]: 2 for usage errors, 3 for
//! protocol/handshake violations, 4 for I/O failures, 1 for everything
//! else.

use crate::dynamic::{
    Producer, RoundSample, ScenarioOutcome, Session, DEFAULT_CHANNEL_CAPACITY, MAX_MERGE_FEEDS,
};
use crate::error::BenchError;
use crate::serve::{push_trace, serve, PushOptions, ServeOptions};
use lb_analysis::Json;
use lb_core::snapshot::write_bytes_atomic;
use lb_workloads::{ReadSource, Scenario, Trace, TraceSource};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Usage text printed by `lb help` and on argument errors.
const USAGE: &str = "\
lb — load-balancing experiment harness (PODC'12 flow imitation)

USAGE:
    lb <COMMAND> [OPTIONS]

COMMANDS:
    run <scenario.json>   Run a dynamic-workload scenario (see ROADMAP.md
                          'Scenario spec'); prints the deterministic result
                          JSON to stdout and streams samples to stderr.
        --seed N          Override the scenario's seed.
        --shards N        Override the scenario's shard count (intra-instance
                          parallelism; results are bit-identical for every N).
                          Env fallback: LB_BENCH_SHARDS.
        --producer MODE   How events reach the engine: 'scenario' (inline,
                          the default), 'channel' (async ingestion — a
                          producer thread streams batches through the bounded
                          SPSC channel) or 'merge:N' (N producer threads,
                          k-way merged back into round order). Results are
                          bit-identical in every mode.
        --record PATH     Record the applied event stream as a replayable
                          line-delimited JSON trace (see ROADMAP.md 'Async
                          ingestion'). Recording never perturbs the run.
        --checkpoint PATH Write a rotating full-state snapshot to PATH
                          (atomic temp+fsync+rename; the newest complete
                          checkpoint always survives a crash) every
                          --checkpoint-every rounds. Resume with
                          'lb run --resume PATH'. Checkpointing never
                          perturbs the run.
        --checkpoint-every N
                          Checkpoint cadence in rounds; required alongside
                          --checkpoint.
        --resume SNAPSHOT Resume from a checkpoint instead of a scenario
                          file: the snapshot embeds the scenario and pins
                          the seed (--seed is rejected, as is a scenario
                          positional). The resumed run's result JSON is
                          byte-identical to the uninterrupted run's — at
                          any --shards override and in every --producer
                          mode; --record still writes the complete trace.
        --ingest-stats PATH
                          Write the ingestion report (per-feed batch/event
                          totals, blocked sends/nanos, high-water depth) as
                          JSON to PATH. Kept out of the result document
                          because the counters are timing-dependent.
        --out PATH        Also write the result JSON to PATH.
        --quiet           Suppress the per-sample stream on stderr.
    replay <trace.jsonl | ->
                          Replay a recorded trace through the async ingestion
                          channel; emits result JSON byte-identical to the
                          recorded run's (the trace pins the seed). '-' reads
                          a framed trace stream from stdin (pipe a
                          'lb serve-trace' into it for end-to-end testing).
        --follow          Tail the trace file as it grows instead of loading
                          it up front; only the 'end' record ends the run
                          cleanly (see --idle-timeout-ms).
        --idle-timeout-ms N
                          With --follow: how long the tail may see no growth
                          before the trace is declared stalled/truncated
                          [default: 10000].
        --shards N        Override the recorded shard count (results are
                          bit-identical for every N). Env: LB_BENCH_SHARDS.
        --ingest-stats PATH
                          Write the ingestion report as JSON to PATH.
        --out PATH        Also write the result JSON to PATH.
        --quiet           Suppress the per-sample stream on stderr.
    serve <scenario.json> Run the scenario as a socket service: accept
                          trace-streaming producer connections, authenticate
                          each handshake against the effective scenario, and
                          feed the engine from their merged streams. Result
                          JSON is byte-identical to the sync run when the
                          clients together carry the matching trace. See
                          ROADMAP.md 'Socket service'.
        --listen ADDR     TCP host:port (port 0 picks a free port) or
                          unix:/path [default: 127.0.0.1:0].
        --clients N       Handshakes to await before the engine starts
                          [default: 1]. Later connections still join live.
        --reconnect-timeout-ms N
                          How long a dropped connection's feed waits for a
                          reconnect before the run degrades without it
                          [default: 5000].
        --listen-info PATH
                          Write the bound address as one-line JSON once
                          listening (for scripts racing the bind).
        --seed N          Override the scenario's seed (clients must carry
                          a trace recorded at the effective seed).
        --shards N        Override the shard count (exempt from handshake
                          authentication; results are bit-identical).
        --record PATH     Record the merged applied event stream.
        --ingest-stats PATH
                          Write the per-connection ingestion report.
        --out PATH        Also write the result JSON to PATH.
        --quiet           Suppress the per-sample stream on stderr.
    serve-trace <trace.jsonl>
                          Drip a recorded trace's lines to stdout (or --out),
                          flushing per line — a test traffic source for
                          'lb replay -' pipes and 'lb replay --follow' tails.
                          Lines are served verbatim, without validation, so
                          fault cases can be staged deliberately. With
                          --connect, stream the trace's rounds to a running
                          'lb serve' instead (handshake + framed records).
        --out PATH        Append-serve into PATH (created/truncated first)
                          instead of stdout.
        --delay-ms N      Sleep N milliseconds between lines (never after
                          the last one) [default: 0].
        --connect ADDR    Push to the 'lb serve' at ADDR (TCP or unix:/path)
                          instead of dripping lines.
        --feed NAME       Feed name for --connect [default: feed0]. One live
                          connection per name; reconnecting under the same
                          name resumes after the server's last admitted
                          round.
        --stride N:I      With --connect: carry only round records with
                          index % N == I [default: 1:0]. Clients 0..N
                          together carry the whole trace without sharing a
                          round — the partition that keeps the served run
                          byte-identical.
        --abort-after-records N
                          With --connect: drop the connection (no end
                          record) after N round records — a deterministic
                          stand-in for a crashed client.
    federate <scenario.json>
                          Run the scenario partitioned across N OS processes
                          on this machine: this coordinator spawns one
                          'federate-worker' per rank, relays the per-round
                          boundary exchanges over the line-delimited wire
                          protocol, and assembles the result JSON —
                          byte-identical to 'lb run' of the same scenario,
                          for every partition and shard count. See
                          ROADMAP.md 'Federation'.
        --parts N         Override the scenario's 'federation' partition
                          count (1..=64).
        --shards N        Per-process intra-partition shard count override
                          (results are bit-identical for every N). Env
                          fallback: LB_BENCH_SHARDS.
        --seed N          Override the scenario's seed.
        --checkpoint PATH Coordinator-driven rotating snapshot of the
                          assembled global state every --checkpoint-every
                          rounds; resume it with the sequential
                          'lb run --resume PATH'.
        --checkpoint-every N
                          Checkpoint cadence in rounds; required alongside
                          --checkpoint.
        --listen ADDR     TCP host:port the workers connect to (port 0
                          picks a free port) [default: 127.0.0.1:0].
        --listen-info PATH
                          Write the bound address as one-line JSON once
                          listening (for externally launched workers).
        --no-spawn        Do not spawn workers; wait for N external
                          'lb federate-worker' processes to join instead.
        --out PATH        Also write the result JSON to PATH.
        --quiet           Suppress the per-sample stream on stderr.
    federate-worker --connect ADDR --rank R --parts N
                          One federated partition process: joins the
                          coordinator at ADDR as rank R of N, receives the
                          effective scenario over the wire, and steps its
                          own node range. Normally spawned by
                          'lb federate'; run it manually against
                          'lb federate --no-spawn' for custom process
                          supervision.
    table1, table2, theorem3, theorem8, trajectory, heterogeneous,
    dummy_ablation, fos_vs_sos, dynamic_arrivals
                          Regenerate one experiment artefact.
        --quick           Reduced sizes/repeats (the CI configuration).
    hotpath [--quick]     Hot-path benchmark; writes BENCH_hotpath.json.
        --shards N        Shard count for the sharded large-instance entry
                          [default: min(cores, 8), at least 2; env
                          LB_BENCH_SHARDS]. Explicit values are used verbatim.
    bench-check           Compare BENCH_hotpath.json against the committed
                          baseline; non-zero exit on regression.
        --baseline PATH   Baseline file [default: BENCH_baseline.json].
        --current PATH    Current file [default: BENCH_hotpath.json].
        --max-regression PCT
                          Allowed throughput drop in percent [default:
                          25, or env LB_BENCH_MAX_REGRESSION].
    lint [PATHS...]       Static analysis enforcing the repo contracts at
                          the source level: nondeterminism (R01), truncating
                          casts (R02), panics in library code (R03),
                          non-atomic artefact writes (R04), allocation in
                          'zero-alloc'-annotated hot paths (R05), deprecated
                          driver calls (R06). Walks the workspace (scoped by
                          lint.toml) or just PATHS when given. Suppress a
                          finding with '// lint: allow(RXX, reason)' on the
                          same or previous line; a suppression without a
                          reason is itself a finding. Exits 0 when clean,
                          1 with findings. See ROADMAP.md 'Static analysis'.
        --format FMT      'human' (default) or 'json' (one machine-readable
                          report document on stdout).
        --root PATH       Workspace root holding lint.toml [default: .].
    help                  Print this message.

Unknown commands, unknown options and malformed values exit with status 2;
stream/handshake protocol violations exit 3; file and socket I/O failures
exit 4; other runtime failures exit 1.
";

/// Entry point for the `lb` binary: dispatches `std::env::args`, returning
/// the process exit code.
pub fn main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    dispatch(&args)
}

/// Entry point for the legacy single-experiment binaries: runs `lb <name>`
/// with the binary's own CLI arguments appended, so `table1 --quick`
/// behaves exactly like `lb table1 --quick`.
pub fn shim(name: &str) -> i32 {
    let mut args = vec![name.to_string()];
    args.extend(std::env::args().skip(1));
    dispatch(&args)
}

/// Prints a usage error and returns the usage exit code (2).
fn usage_error(msg: &str) -> i32 {
    eprintln!("error: {msg}\n");
    eprint!("{USAGE}");
    2
}

/// Prints a typed runtime failure and returns its class's exit code
/// (see [`BenchError::exit_code`]).
fn fail(err: BenchError) -> i32 {
    eprintln!("error: {err}");
    err.exit_code()
}

/// Strictly parsed arguments of one subcommand: every option must be
/// declared, every value present, and at most `max_positionals` positional
/// arguments are accepted.
struct Parsed<'a> {
    values: Vec<(&'static str, &'a str)>,
    flags: Vec<&'static str>,
    positionals: Vec<&'a str>,
}

impl<'a> Parsed<'a> {
    /// The last value given for `flag`, if any.
    fn value(&self, flag: &str) -> Option<&'a str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .map(|&(_, v)| v)
    }

    /// Whether the boolean `flag` was given.
    fn has(&self, flag: &str) -> bool {
        self.flags.contains(&flag)
    }
}

/// Parses `args` against the declared option lists. Unknown options,
/// missing option values and surplus positionals are errors — the strict
/// core behind every subcommand, so typos fail with a usage message instead
/// of being silently ignored.
fn parse_args<'a>(
    args: &'a [String],
    value_flags: &'static [&'static str],
    bool_flags: &'static [&'static str],
    max_positionals: usize,
) -> Result<Parsed<'a>, String> {
    let mut parsed = Parsed {
        values: Vec::new(),
        flags: Vec::new(),
        positionals: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(&flag) = value_flags.iter().find(|&&f| f == arg) {
            let value = iter
                .next()
                .ok_or_else(|| format!("{flag} requires a value"))?;
            parsed.values.push((flag, value));
        } else if let Some(&flag) = bool_flags.iter().find(|&&f| f == arg) {
            if !parsed.flags.contains(&flag) {
                parsed.flags.push(flag);
            }
        } else if arg.starts_with('-') && arg.len() > 1 {
            return Err(format!("unknown option {arg:?}"));
        } else if parsed.positionals.len() == max_positionals {
            return Err(format!("unexpected argument {arg:?}"));
        } else {
            parsed.positionals.push(arg);
        }
    }
    Ok(parsed)
}

/// Dispatches one parsed command line (without the program name). Returns
/// the process exit code: 0 on success, 1 on runtime failure, 2 on usage
/// errors.
pub fn dispatch(args: &[String]) -> i32 {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "replay" => cmd_replay(rest),
        "serve" => cmd_serve(rest),
        "serve-trace" | "serve_trace" => cmd_serve_trace(rest),
        "federate" => cmd_federate(rest),
        "federate-worker" | "federate_worker" => cmd_federate_worker(rest),
        "hotpath" => {
            let parsed = match parse_args(rest, &["--shards"], &["--quick"], 0) {
                Ok(parsed) => parsed,
                Err(err) => return usage_error(&err),
            };
            match shards_option(parsed.value("--shards")) {
                Ok(shards) => {
                    crate::hotpath::run(parsed.has("--quick"), shards);
                    0
                }
                Err(err) => usage_error(&err),
            }
        }
        "bench-check" => cmd_bench_check(rest),
        "lint" => cmd_lint(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            0
        }
        name => match experiment_by_name(name) {
            Some(run) => {
                let parsed = match parse_args(rest, &[], &["--quick"], 0) {
                    Ok(parsed) => parsed,
                    Err(err) => return usage_error(&err),
                };
                run(parsed.has("--quick")).emit();
                0
            }
            None => usage_error(&format!("unknown command {name:?}")),
        },
    }
}

/// The experiment registry: canonical names (and their hyphenated aliases)
/// to `run(quick)` entry points.
fn experiment_by_name(name: &str) -> Option<fn(bool) -> crate::experiments::ExperimentReport> {
    use crate::experiments as e;
    Some(match name.replace('-', "_").as_str() {
        "table1" => e::table1::run,
        "table2" => e::table2::run,
        "theorem3" => e::theorem3::run,
        "theorem8" => e::theorem8::run,
        "trajectory" => e::trajectory::run,
        "heterogeneous" => e::heterogeneous::run,
        "dummy_ablation" => e::dummy_ablation::run,
        "fos_vs_sos" => e::fos_vs_sos::run,
        "dynamic_arrivals" => e::dynamic_arrivals::run,
        _ => return None,
    })
}

/// Resolves the shard count from an explicit `--shards` value, falling back
/// to the `LB_BENCH_SHARDS` environment variable; `None` when neither is
/// set. Values are range-checked here so every consumer fails fast with a
/// clear message instead of silently adjusting or aborting in
/// `thread::spawn`.
fn shards_option(explicit: Option<&str>) -> Result<Option<usize>, String> {
    let parse = |source: &str, v: &str| -> Result<usize, String> {
        let shards: usize = v.parse().map_err(|e| format!("{source}: {e}"))?;
        if shards == 0 || shards > lb_workloads::MAX_SHARDS {
            return Err(format!(
                "{source}: shard count must be in 1..={}, got {shards}",
                lb_workloads::MAX_SHARDS
            ));
        }
        Ok(shards)
    };
    if let Some(v) = explicit {
        return parse("--shards", v).map(Some);
    }
    match std::env::var("LB_BENCH_SHARDS") {
        Ok(v) => parse("LB_BENCH_SHARDS", &v).map(Some),
        Err(_) => Ok(None),
    }
}

/// The per-sample stderr stream shared by `run` and `replay`.
fn stream_sample(sample: &RoundSample) {
    eprintln!(
        "round {:>6}: n = {}, max_min = {:.2}, max_avg = {:.2}, real = {}, \
         dummy = {}, arrived = {}, completed = {}",
        sample.round,
        sample.nodes,
        sample.max_min,
        sample.max_avg,
        sample.real_weight,
        sample.dummy_load,
        sample.arrived_weight,
        sample.completed_weight,
    );
}

/// Prints (and optionally writes) the deterministic result document. The
/// file write is atomic (temp + fsync + rename): a crash mid-emit never
/// leaves a torn artefact at `--out`.
fn emit_outcome(outcome: &ScenarioOutcome, out: Option<&str>) -> Result<(), String> {
    let rendered = outcome.to_json().render_pretty();
    if let Some(out) = out {
        write_bytes_atomic(Path::new(out), rendered.as_bytes())
            .map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("(result written to {out})");
    }
    println!("{rendered}");
    Ok(())
}

/// Writes the ingestion report (`--ingest-stats`) atomically. Sync runs
/// produce an empty report so the artefact shape is uniform across producer
/// modes.
fn emit_ingest_stats(outcome: &ScenarioOutcome, path: &str) -> Result<(), String> {
    let stats = outcome.ingest.clone().unwrap_or_else(|| {
        Json::obj([
            ("producer", Json::from("scenario")),
            ("feeds", Json::Arr(Vec::new())),
        ])
    });
    write_bytes_atomic(Path::new(path), stats.render_pretty().as_bytes())
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("(ingest stats written to {path})");
    Ok(())
}

/// Parses a `--producer` mode: `scenario`, `channel`, or `merge:<feeds>`.
fn producer_option(value: Option<&str>) -> Result<Producer, String> {
    match value {
        None | Some("scenario") => Ok(Producer::Scenario),
        Some("channel") => Ok(Producer::Channel {
            capacity: DEFAULT_CHANNEL_CAPACITY,
        }),
        Some(mode) => {
            if let Some(feeds) = mode.strip_prefix("merge:") {
                let feeds: usize = feeds
                    .parse()
                    .map_err(|e| format!("--producer merge: {e}"))?;
                if feeds == 0 || feeds > MAX_MERGE_FEEDS {
                    return Err(format!(
                        "--producer merge: feed count must be in 1..={MAX_MERGE_FEEDS}, \
                         got {feeds}"
                    ));
                }
                Ok(Producer::Merge {
                    feeds,
                    capacity: DEFAULT_CHANNEL_CAPACITY,
                })
            } else {
                Err(format!(
                    "--producer: unknown mode {mode:?} (want scenario|channel|merge:<feeds>)"
                ))
            }
        }
    }
}

fn cmd_run(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &[
            "--seed",
            "--shards",
            "--out",
            "--record",
            "--producer",
            "--ingest-stats",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
        ],
        &["--quiet"],
        1,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let resume = parsed.value("--resume");
    let path = parsed.positionals.first().copied();
    // --resume replays the snapshot's embedded scenario with its pinned
    // seed: a scenario positional or a --seed override would contradict
    // the snapshot, so both are rejected before any I/O happens.
    if resume.is_some() && path.is_some() {
        return usage_error(
            "--resume uses the snapshot's embedded scenario; drop the scenario file argument",
        );
    }
    if resume.is_some() && parsed.value("--seed").is_some() {
        return usage_error("--resume cannot override the seed: the snapshot pins it");
    }
    if resume.is_none() && path.is_none() {
        return usage_error(
            "run requires a scenario file (lb run <scenario.json>) or --resume <snapshot>",
        );
    }
    let seed = match parsed
        .value("--seed")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
        .transpose()
    {
        Ok(seed) => seed,
        Err(err) => return usage_error(&err),
    };
    let shards = match shards_option(parsed.value("--shards")) {
        Ok(shards) => shards,
        Err(err) => return usage_error(&err),
    };
    let producer = match producer_option(parsed.value("--producer")) {
        Ok(producer) => producer,
        Err(err) => return usage_error(&err),
    };
    let checkpoint_every = match parsed
        .value("--checkpoint-every")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--checkpoint-every: {e}"))
        })
        .transpose()
    {
        Ok(every) => every,
        Err(err) => return usage_error(&err),
    };
    let checkpoint = parsed.value("--checkpoint").map(PathBuf::from);
    match (&checkpoint, checkpoint_every) {
        (Some(_), None) => return usage_error("--checkpoint requires --checkpoint-every N"),
        (None, Some(_)) => return usage_error("--checkpoint-every requires --checkpoint PATH"),
        (Some(_), Some(0)) => {
            return usage_error("--checkpoint-every: the cadence must be at least one round");
        }
        _ => {}
    }
    let record = parsed.value("--record").map(PathBuf::from);
    let quiet = parsed.has("--quiet");

    let result = (|| -> Result<(), BenchError> {
        let on_sample = |sample: &RoundSample| {
            if !quiet {
                stream_sample(sample);
            }
        };
        let outcome = match resume {
            Some(snapshot_path) => {
                let snapshot = lb_core::snapshot::load(snapshot_path)
                    .map_err(|e| BenchError::run(format!("{snapshot_path}: {e}")))?;
                Session::from_snapshot(snapshot)
                    .shards(shards)
                    .producer(producer)
                    .record(record.clone())
                    .checkpoint(checkpoint.clone(), checkpoint_every)
                    .run(on_sample)?
            }
            None => {
                // lint: allow(R03, the arg validation above guarantees a path)
                let path = path.expect("validated: a scenario path or --resume is present");
                let text = fs::read_to_string(path)
                    .map_err(|e| BenchError::io(format!("reading {path}: {e}")))?;
                let scenario = Scenario::parse(&text)
                    .map_err(|e| BenchError::usage(format!("{path}: {e}")))?;
                Session::from_scenario(&scenario)
                    .seed(seed)
                    .shards(shards)
                    .producer(producer)
                    .record(record.clone())
                    .checkpoint(checkpoint.clone(), checkpoint_every)
                    .run(on_sample)?
            }
        };
        if let Some(trace) = &record {
            eprintln!("(event trace recorded to {})", trace.display());
        }
        if let Some(stats_path) = parsed.value("--ingest-stats") {
            emit_ingest_stats(&outcome, stats_path).map_err(BenchError::Io)?;
        }
        emit_outcome(&outcome, parsed.value("--out")).map_err(BenchError::Io)
    })();
    match result {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

/// Runs a scenario partitioned across N OS processes (see
/// [`crate::federate`]): binds the coordinator socket, spawns (or awaits)
/// one `federate-worker` per rank, and drives the round-synchronized
/// exchange protocol to a result document byte-identical to `lb run`'s.
fn cmd_federate(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &[
            "--parts",
            "--shards",
            "--seed",
            "--checkpoint",
            "--checkpoint-every",
            "--listen",
            "--listen-info",
            "--out",
        ],
        &["--quiet", "--no-spawn"],
        1,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let Some(path) = parsed.positionals.first().copied() else {
        return usage_error("federate requires a scenario file (lb federate <scenario.json>)");
    };
    let parts_override = match parsed
        .value("--parts")
        .map(|v| -> Result<usize, String> {
            let parts: usize = v.parse().map_err(|e| format!("--parts: {e}"))?;
            if parts == 0 || parts > lb_workloads::MAX_FEDERATION {
                return Err(format!(
                    "--parts: the partition count must be in 1..={}, got {parts}",
                    lb_workloads::MAX_FEDERATION
                ));
            }
            Ok(parts)
        })
        .transpose()
    {
        Ok(parts) => parts,
        Err(err) => return usage_error(&err),
    };
    let seed = match parsed
        .value("--seed")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
        .transpose()
    {
        Ok(seed) => seed,
        Err(err) => return usage_error(&err),
    };
    let shards = match shards_option(parsed.value("--shards")) {
        Ok(shards) => shards,
        Err(err) => return usage_error(&err),
    };
    let checkpoint_every = match parsed
        .value("--checkpoint-every")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--checkpoint-every: {e}"))
        })
        .transpose()
    {
        Ok(every) => every,
        Err(err) => return usage_error(&err),
    };
    let checkpoint = parsed.value("--checkpoint").map(PathBuf::from);
    match (&checkpoint, checkpoint_every) {
        (Some(_), None) => return usage_error("--checkpoint requires --checkpoint-every N"),
        (None, Some(_)) => return usage_error("--checkpoint-every requires --checkpoint PATH"),
        (Some(_), Some(0)) => {
            return usage_error("--checkpoint-every: the cadence must be at least one round");
        }
        _ => {}
    }
    let listen = parsed.value("--listen").unwrap_or("127.0.0.1:0");
    let no_spawn = parsed.has("--no-spawn");
    let quiet = parsed.has("--quiet");

    let result = (|| -> Result<(), BenchError> {
        let text =
            fs::read_to_string(path).map_err(|e| BenchError::io(format!("reading {path}: {e}")))?;
        let scenario =
            Scenario::parse(&text).map_err(|e| BenchError::usage(format!("{path}: {e}")))?;
        let parts = parts_override.unwrap_or(scenario.federation);
        let listener = std::net::TcpListener::bind(listen)
            .map_err(|e| BenchError::io(format!("binding {listen}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| BenchError::io(format!("reading the bound address: {e}")))?
            .to_string();
        if let Some(info_path) = parsed.value("--listen-info") {
            let info = Json::obj([("addr", Json::from(addr.as_str()))]);
            write_bytes_atomic(
                Path::new(info_path),
                format!("{}\n", info.render()).as_bytes(),
            )
            .map_err(|e| BenchError::io(format!("writing {info_path}: {e}")))?;
        }
        let children = if no_spawn {
            Vec::new()
        } else {
            let exe = std::env::current_exe()
                .map_err(|e| BenchError::run(format!("locating the lb binary: {e}")))?;
            let mut children = Vec::with_capacity(parts);
            for rank in 0..parts {
                let child = std::process::Command::new(&exe)
                    .args([
                        "federate-worker",
                        "--connect",
                        &addr,
                        "--rank",
                        &rank.to_string(),
                        "--parts",
                        &parts.to_string(),
                    ])
                    .spawn()
                    .map_err(|e| {
                        BenchError::run(format!("spawning federate-worker rank {rank}: {e}"))
                    })?;
                children.push(child);
            }
            children
        };
        let role = crate::federate::FederationRole::coordinator(listener, children);
        let outcome = Session::from_scenario(&scenario)
            .seed(seed)
            .shards(shards)
            .checkpoint(checkpoint.clone(), checkpoint_every)
            .federated(role, parts)
            .run(|sample| {
                if !quiet {
                    stream_sample(sample);
                }
            })?;
        emit_outcome(&outcome, parsed.value("--out")).map_err(BenchError::Io)
    })();
    match result {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

/// One federated partition process: joins the coordinator, receives the
/// effective scenario over the wire, and runs its node range to completion.
/// Normally spawned by `cmd_federate`; exposed for `--no-spawn` topologies.
fn cmd_federate_worker(args: &[String]) -> i32 {
    let parsed = match parse_args(args, &["--connect", "--rank", "--parts"], &[], 0) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let Some(addr) = parsed.value("--connect") else {
        return usage_error("federate-worker requires --connect ADDR");
    };
    let parse_count = |flag: &str| -> Result<usize, String> {
        let value = parsed
            .value(flag)
            .ok_or_else(|| format!("federate-worker requires {flag} N"))?;
        value.parse::<usize>().map_err(|e| format!("{flag}: {e}"))
    };
    let (rank, parts) = match (parse_count("--rank"), parse_count("--parts")) {
        (Ok(rank), Ok(parts)) => (rank, parts),
        (Err(err), _) | (_, Err(err)) => return usage_error(&err),
    };
    if parts == 0 || parts > lb_workloads::MAX_FEDERATION {
        return usage_error(&format!(
            "--parts: the partition count must be in 1..={}, got {parts}",
            lb_workloads::MAX_FEDERATION
        ));
    }
    if rank >= parts {
        return usage_error(&format!(
            "--rank: rank {rank} is out of range for {parts} parts"
        ));
    }
    match crate::federate::worker_entry(addr, rank, parts) {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &["--shards", "--out", "--ingest-stats", "--idle-timeout-ms"],
        &["--quiet", "--follow"],
        1,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let Some(path) = parsed.positionals.first().copied() else {
        return usage_error("replay requires a trace file (lb replay <trace.jsonl | ->)");
    };
    let shards = match shards_option(parsed.value("--shards")) {
        Ok(shards) => shards,
        Err(err) => return usage_error(&err),
    };
    let follow = parsed.has("--follow");
    let idle_timeout = match parsed.value("--idle-timeout-ms") {
        Some(_) if !follow => {
            return usage_error("--idle-timeout-ms only applies with --follow");
        }
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(e) => return usage_error(&format!("--idle-timeout-ms: {e}")),
        },
        None => Duration::from_millis(10_000),
    };
    if follow && path == "-" {
        return usage_error("--follow tails a file; it cannot follow stdin ('-')");
    }
    let quiet = parsed.has("--quiet");

    let result = (|| -> Result<(), BenchError> {
        let on_sample = |sample: &RoundSample| {
            if !quiet {
                stream_sample(sample);
            }
        };
        let outcome = if path == "-" {
            // A framed byte stream on stdin (e.g. `lb serve-trace | lb
            // replay -`): records are parsed incrementally as they arrive.
            let source = ReadSource::new(std::io::stdin()).map_err(BenchError::from_source)?;
            Session::from_stream(Box::new(source))
                .shards(shards)
                .run(on_sample)?
        } else if follow {
            // Tail the file as it grows; the end record is the clean exit.
            let source = TraceSource::open_with(
                path,
                idle_timeout,
                lb_workloads::source::DEFAULT_POLL_INTERVAL,
            )
            .map_err(BenchError::from_source)?;
            Session::from_stream(Box::new(source))
                .shards(shards)
                .run(on_sample)?
        } else {
            let trace = Trace::load(path).map_err(BenchError::from_source)?;
            let (recorded_rounds, recorded_events) = (trace.rounds.len(), trace.event_count());
            let outcome = Session::from_trace(trace).shards(shards).run(on_sample)?;
            eprintln!("(replayed {recorded_rounds} recorded round(s), {recorded_events} event(s))");
            outcome
        };
        if let Some(stats_path) = parsed.value("--ingest-stats") {
            emit_ingest_stats(&outcome, stats_path).map_err(BenchError::Io)?;
        }
        emit_outcome(&outcome, parsed.value("--out")).map_err(BenchError::Io)
    })();
    match result {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

/// Runs a scenario as a socket service (see [`crate::serve`]): accepts
/// authenticated trace-streaming connections and feeds the engine from
/// their merged streams.
fn cmd_serve(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &[
            "--listen",
            "--clients",
            "--reconnect-timeout-ms",
            "--listen-info",
            "--seed",
            "--shards",
            "--record",
            "--ingest-stats",
            "--out",
        ],
        &["--quiet"],
        1,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let Some(path) = parsed.positionals.first().copied() else {
        return usage_error("serve requires a scenario file (lb serve <scenario.json>)");
    };
    let seed = match parsed
        .value("--seed")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
        .transpose()
    {
        Ok(seed) => seed,
        Err(err) => return usage_error(&err),
    };
    let shards = match shards_option(parsed.value("--shards")) {
        Ok(shards) => shards,
        Err(err) => return usage_error(&err),
    };
    let clients = match parsed.value("--clients") {
        Some(v) => match v.parse::<usize>() {
            Ok(0) => return usage_error("--clients must be at least 1"),
            Ok(n) => n,
            Err(e) => return usage_error(&format!("--clients: {e}")),
        },
        None => 1,
    };
    let reconnect_timeout = match parsed.value("--reconnect-timeout-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(e) => return usage_error(&format!("--reconnect-timeout-ms: {e}")),
        },
        None => Duration::from_millis(5_000),
    };
    let options = ServeOptions {
        listen: parsed
            .value("--listen")
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        clients,
        seed,
        shards,
        reconnect_timeout,
        record: parsed.value("--record").map(PathBuf::from),
        listen_info: parsed.value("--listen-info").map(PathBuf::from),
    };
    let quiet = parsed.has("--quiet");

    let result = (|| -> Result<(), BenchError> {
        let text =
            fs::read_to_string(path).map_err(|e| BenchError::io(format!("reading {path}: {e}")))?;
        let scenario =
            Scenario::parse(&text).map_err(|e| BenchError::usage(format!("{path}: {e}")))?;
        let outcome = serve(&scenario, &options, |sample| {
            if !quiet {
                stream_sample(sample);
            }
        })?;
        if let Some(trace) = &options.record {
            eprintln!("(event trace recorded to {})", trace.display());
        }
        if let Some(stats_path) = parsed.value("--ingest-stats") {
            emit_ingest_stats(&outcome, stats_path).map_err(BenchError::Io)?;
        }
        emit_outcome(&outcome, parsed.value("--out")).map_err(BenchError::Io)
    })();
    match result {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

/// Parses a `--stride N:I` partition spec.
fn stride_option(value: Option<&str>) -> Result<(usize, usize), String> {
    let Some(value) = value else {
        return Ok((1, 0));
    };
    let (n, i) = value
        .split_once(':')
        .ok_or_else(|| format!("--stride: want N:I, got {value:?}"))?;
    let n: usize = n.parse().map_err(|e| format!("--stride: {e}"))?;
    let i: usize = i.parse().map_err(|e| format!("--stride: {e}"))?;
    if n == 0 || i >= n {
        return Err(format!("--stride: need I < N with N >= 1, got {n}:{i}"));
    }
    Ok((n, i))
}

/// Drips a recorded trace's lines to stdout or a file, flushing per line —
/// the test traffic source behind the `merge-ingestion` CI job's pipe and
/// file-tail runs. Lines are served verbatim (no validation) so fault cases
/// can be staged deliberately. With `--connect`, streams the trace's round
/// records to a running `lb serve` instead ([`push_trace`]).
fn cmd_serve_trace(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &[
            "--out",
            "--delay-ms",
            "--connect",
            "--feed",
            "--stride",
            "--abort-after-records",
        ],
        &[],
        1,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let Some(path) = parsed.positionals.first().copied() else {
        return usage_error("serve-trace requires a trace file (lb serve-trace <trace.jsonl>)");
    };
    let delay = match parsed.value("--delay-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(e) => return usage_error(&format!("--delay-ms: {e}")),
        },
        None => Duration::ZERO,
    };
    let connect = parsed.value("--connect");
    if connect.is_none() {
        for flag in ["--feed", "--stride", "--abort-after-records"] {
            if parsed.value(flag).is_some() {
                return usage_error(&format!("{flag} only applies with --connect"));
            }
        }
        return serve_trace_lines(path, parsed.value("--out"), delay);
    }
    // lint: allow(R03, the is_none branch above returned already)
    let addr = connect.expect("checked above");
    if parsed.value("--out").is_some() {
        return usage_error("--out only applies without --connect (lines mode)");
    }
    let stride = match stride_option(parsed.value("--stride")) {
        Ok(stride) => stride,
        Err(err) => return usage_error(&err),
    };
    let abort_after = match parsed
        .value("--abort-after-records")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("--abort-after-records: {e}"))
        })
        .transpose()
    {
        Ok(cap) => cap,
        Err(err) => return usage_error(&err),
    };
    let options = PushOptions {
        feed: parsed.value("--feed").unwrap_or("feed0").to_string(),
        stride,
        delay: (!delay.is_zero()).then_some(delay),
        abort_after,
    };

    let result = (|| -> Result<(), BenchError> {
        let trace = Trace::load(path).map_err(BenchError::from_source)?;
        let report = push_trace(addr, &trace, &options)?;
        if let Some(round) = report.resumed_after {
            eprintln!("(resumed feed {:?} after round {round})", options.feed);
        }
        eprintln!(
            "(pushed {} round record(s) as feed {:?}{})",
            report.rounds_sent,
            options.feed,
            if report.aborted {
                ", then aborted without the end record"
            } else {
                ""
            }
        );
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(err) => fail(err),
    }
}

/// The original serve-trace mode: drip the file's lines verbatim.
fn serve_trace_lines(path: &str, out: Option<&str>, delay: Duration) -> i32 {
    let result = (|| -> Result<usize, BenchError> {
        // Stream line by line: serving a multi-gigabyte trace must not
        // stage the whole file in memory first.
        let file =
            fs::File::open(path).map_err(|e| BenchError::io(format!("reading {path}: {e}")))?;
        let reader = std::io::BufReader::new(file);
        let mut out: Box<dyn Write> = match out {
            Some(target) => Box::new(
                // lint: allow(R04, serve-trace drips lines incrementally by design)
                fs::File::create(target)
                    .map_err(|e| BenchError::io(format!("creating {target}: {e}")))?,
            ),
            None => Box::new(std::io::stdout()),
        };
        let mut served = 0usize;
        for line in std::io::BufRead::lines(reader) {
            let line = line.map_err(|e| BenchError::io(format!("reading {path}: {e}")))?;
            // Pace *between* lines: a consumer of the final line (usually
            // the end record) must not wait out one more delay before the
            // stream closes.
            if served > 0 && !delay.is_zero() {
                std::thread::sleep(delay);
            }
            writeln!(out, "{line}").map_err(|e| BenchError::io(format!("serving trace: {e}")))?;
            out.flush()
                .map_err(|e| BenchError::io(format!("serving trace: {e}")))?;
            served += 1;
        }
        Ok(served)
    })();
    match result {
        Ok(served) => {
            eprintln!("(served {served} line(s))");
            0
        }
        Err(err) => fail(err),
    }
}

/// Recursively collects every gated throughput leaf of a baseline document
/// as `(dotted path, value)` pairs. A leaf is gated when its key ends in
/// `_per_sec` — configuration numbers (`nodes`, `max_regression_percent`,
/// …) never do — and `config` subtrees (benchmark parameters recorded next
/// to a metric) are skipped wholesale.
fn gated_metrics(doc: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    if let Json::Obj(pairs) = doc {
        for (key, value) in pairs {
            if key == "config" {
                continue;
            }
            let path = if prefix.is_empty() {
                key.clone()
            } else {
                format!("{prefix}.{key}")
            };
            match value {
                Json::Obj(_) => gated_metrics(value, &path, out),
                _ if key.ends_with("_per_sec") => {
                    if let Some(v) = value.as_f64() {
                        out.push((path, v));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Looks up a dotted metric path in a measured document. The main-entry
/// `rounds_per_sec` may live under `optimized` in `BENCH_hotpath.json` (the
/// full report shape) or at the top level (the trimmed baseline shape);
/// every other path matches literally.
fn metric_at(doc: &Json, path: &str) -> Option<f64> {
    if path == "rounds_per_sec" {
        return doc
            .get("optimized")
            .and_then(|o| o.get("rounds_per_sec"))
            .or_else(|| doc.get("rounds_per_sec"))
            .and_then(Json::as_f64);
    }
    let mut node = doc;
    for seg in path.split('.') {
        node = node.get(seg)?;
    }
    node.as_f64()
}

/// Short display label for a gated metric path (the historical entry names
/// where one exists; the dotted path otherwise).
fn gate_label(path: &str) -> &str {
    match path {
        "rounds_per_sec" => "hotpath",
        "large.sharded.rounds_per_sec" => "sharded",
        "ingest.channel.events_per_sec" => "ingest",
        "ingest.merge.events_per_sec" => "merge",
        "snapshot.capture_write.mb_per_sec" => "snapshot-write",
        "snapshot.read_restore.mb_per_sec" => "snapshot-read",
        "federate.rounds_per_sec" => "federate",
        "churn.rounds_per_sec" => "churn",
        other => other,
    }
}

/// Display unit for a gated metric path, from the leaf-name convention.
fn gate_unit(path: &str) -> &'static str {
    if path.ends_with("events_per_sec") {
        "events/sec"
    } else if path.ends_with("mb_per_sec") {
        "MB/sec"
    } else {
        "rounds/sec"
    }
}

/// The perf-regression gate: compares the current hot-path throughput
/// against the committed baseline and fails on a drop beyond the allowance.
fn cmd_bench_check(args: &[String]) -> i32 {
    let parsed = match parse_args(
        args,
        &["--baseline", "--current", "--max-regression"],
        &[],
        0,
    ) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let verdict = (|| -> Result<bool, String> {
        let baseline_path = parsed.value("--baseline").unwrap_or("BENCH_baseline.json");
        let current_path = parsed.value("--current").unwrap_or("BENCH_hotpath.json");
        let max_regression: f64 = match parsed.value("--max-regression") {
            Some(v) => v.parse().map_err(|e| format!("--max-regression: {e}"))?,
            None => match std::env::var("LB_BENCH_MAX_REGRESSION") {
                Ok(v) => v
                    .parse()
                    .map_err(|e| format!("LB_BENCH_MAX_REGRESSION: {e}"))?,
                Err(_) => 25.0,
            },
        };
        if !(0.0..100.0).contains(&max_regression) {
            return Err(format!(
                "--max-regression must be in [0, 100), got {max_regression}"
            ));
        }

        let read = |path: &str| -> Result<Json, String> {
            let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Json::parse(&text).map_err(|e| format!("{path}: {e}"))
        };
        let baseline_doc = read(baseline_path)?;
        let current_doc = read(current_path)?;
        let mut gated = Vec::new();
        gated_metrics(&baseline_doc, "", &mut gated);
        if !gated.iter().any(|(path, _)| path == "rounds_per_sec") {
            return Err(format!("{baseline_path}: no rounds_per_sec field"));
        }

        let gate = |label: &str, unit: &str, baseline: f64, current: f64| -> bool {
            let floor = baseline * (1.0 - max_regression / 100.0);
            let change = (current / baseline - 1.0) * 100.0;
            println!(
                "bench-check [{label}]: baseline {baseline:.1} {unit}, current \
                 {current:.1} {unit} ({change:+.1}%), allowed regression \
                 {max_regression}% (floor {floor:.1})"
            );
            if current < floor {
                println!(
                    "bench-check [{label}]: FAIL — {unit} regressed more than \
                     {max_regression}% below the committed baseline"
                );
                false
            } else {
                println!("bench-check [{label}]: OK");
                true
            }
        };

        // Every `_per_sec` leaf the committed baseline carries is gated
        // (re-baseline deliberately to change the set). A gated key that the
        // measured file no longer reports — a renamed or dropped entry — is a
        // hard failure, not a silent pass: the gate would otherwise go dark
        // exactly when the benchmark it guards disappears.
        let mut ok = true;
        for (path, baseline) in &gated {
            let label = gate_label(path);
            if *baseline <= 0.0 {
                if path == "rounds_per_sec" {
                    return Err(format!("{baseline_path}: rounds_per_sec must be positive"));
                }
                println!("bench-check [{label}]: non-positive baseline entry, skipped");
                continue;
            }
            let current = metric_at(&current_doc, path).ok_or_else(|| {
                format!(
                    "{current_path}: missing gated metric {path} (present in \
                     {baseline_path}; re-baseline if the entry was renamed or retired)"
                )
            })?;
            ok &= gate(label, gate_unit(path), *baseline, current);
        }
        Ok(ok)
    })();
    match verdict {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(err) => fail(BenchError::run(err)),
    }
}

/// `lb lint [--format human|json] [--root PATH] [PATHS…]`: the repo-native
/// static analysis pass (see [`lb_lint`]). Exit codes: 0 clean, 1 findings,
/// 2 usage (including a malformed `lint.toml`), 4 I/O failure.
fn cmd_lint(args: &[String]) -> i32 {
    let parsed = match parse_args(args, &["--format", "--root"], &[], usize::MAX) {
        Ok(parsed) => parsed,
        Err(err) => return usage_error(&err),
    };
    let format = parsed.value("--format").unwrap_or("human");
    if format != "human" && format != "json" {
        return usage_error(&format!(
            "--format must be 'human' or 'json', got {format:?}"
        ));
    }
    let root = PathBuf::from(parsed.value("--root").unwrap_or("."));
    let to_bench_error = |e: lb_lint::LintError| match e {
        lb_lint::LintError::Io { .. } => BenchError::io(e.to_string()),
        lb_lint::LintError::Config { .. } | lb_lint::LintError::BadPath { .. } => {
            BenchError::usage(e.to_string())
        }
    };
    let linter = match lb_lint::Linter::load(&root) {
        Ok(linter) => linter,
        Err(e) => return fail(to_bench_error(e)),
    };
    let findings = if parsed.positionals.is_empty() {
        linter.lint_workspace()
    } else {
        let paths: Vec<PathBuf> = parsed.positionals.iter().map(PathBuf::from).collect();
        linter.lint_paths(&paths)
    };
    let findings = match findings {
        Ok(findings) => findings,
        Err(e) => return fail(to_bench_error(e)),
    };
    match format {
        "json" => println!("{}", lb_lint::report_json(&findings).render()),
        _ => {
            for finding in &findings {
                println!("{}", finding.human());
            }
            let label = if findings.len() == 1 {
                "finding"
            } else {
                "findings"
            };
            eprintln!("lint: {} {label}", findings.len());
        }
    }
    if findings.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_commands_and_empty_args_are_usage_errors() {
        assert_eq!(dispatch(&args(&["no_such_command"])), 2);
        assert_eq!(dispatch(&[]), 2);
        assert_eq!(dispatch(&args(&["help"])), 0);
    }

    #[test]
    fn unknown_options_are_usage_errors() {
        // The motivating bug: `--shard` (typo for `--shards`) used to be
        // silently ignored, running sequentially. Every subcommand must
        // reject unknown options with exit code 2.
        assert_eq!(dispatch(&args(&["run", "s.json", "--shard", "4"])), 2);
        assert_eq!(dispatch(&args(&["run", "s.json", "--sharded"])), 2);
        assert_eq!(dispatch(&args(&["replay", "t.jsonl", "--sed", "1"])), 2);
        assert_eq!(dispatch(&args(&["hotpath", "--fast"])), 2);
        assert_eq!(dispatch(&args(&["table1", "--quik"])), 2);
        assert_eq!(dispatch(&args(&["bench-check", "--basline", "x"])), 2);
        // Surplus positionals are rejected too.
        assert_eq!(dispatch(&args(&["run", "a.json", "b.json"])), 2);
        assert_eq!(dispatch(&args(&["table1", "extra"])), 2);
        // Value options require a value.
        assert_eq!(dispatch(&args(&["run", "s.json", "--seed"])), 2);
    }

    #[test]
    fn experiment_registry_knows_every_experiment() {
        for name in [
            "table1",
            "table2",
            "theorem3",
            "theorem8",
            "trajectory",
            "heterogeneous",
            "dummy_ablation",
            "dummy-ablation",
            "fos_vs_sos",
            "fos-vs-sos",
            "dynamic_arrivals",
        ] {
            assert!(experiment_by_name(name).is_some(), "{name} missing");
        }
        assert!(experiment_by_name("run").is_none());
        assert!(experiment_by_name("replay").is_none());
        assert!(experiment_by_name("hotpath").is_none());
    }

    #[test]
    fn run_and_replay_require_their_input_file() {
        // A missing positional is a usage error (2); an unreadable file is
        // an I/O error (4).
        assert_eq!(dispatch(&args(&["run"])), 2);
        assert_eq!(dispatch(&args(&["run", "/no/such/file.json"])), 4);
        assert_eq!(dispatch(&args(&["replay"])), 2);
        assert_eq!(dispatch(&args(&["replay", "/no/such/trace.jsonl"])), 4);
    }

    #[test]
    fn bad_option_values_are_usage_errors() {
        assert_eq!(dispatch(&args(&["run", "s.json", "--seed", "abc"])), 2);
        assert_eq!(dispatch(&args(&["run", "s.json", "--shards", "0"])), 2);
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--producer", "satellite"])),
            2
        );
        assert_eq!(dispatch(&args(&["replay", "t.jsonl", "--shards", "x"])), 2);
    }

    #[test]
    fn producer_option_parses_merge_specs() {
        assert_eq!(producer_option(None).unwrap(), Producer::Scenario);
        assert_eq!(
            producer_option(Some("scenario")).unwrap(),
            Producer::Scenario
        );
        assert!(matches!(
            producer_option(Some("channel")).unwrap(),
            Producer::Channel { .. }
        ));
        assert_eq!(
            producer_option(Some("merge:3")).unwrap(),
            Producer::Merge {
                feeds: 3,
                capacity: DEFAULT_CHANNEL_CAPACITY
            }
        );
        assert!(producer_option(Some("merge:0")).is_err());
        assert!(producer_option(Some("merge:65")).is_err());
        assert!(producer_option(Some("merge:lots")).is_err());
        assert!(producer_option(Some("merge")).is_err());
        // And through the dispatch layer they are usage errors.
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--producer", "merge:0"])),
            2
        );
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--producer", "merge:x"])),
            2
        );
    }

    #[test]
    fn replay_stream_flags_are_validated() {
        // --idle-timeout-ms without --follow, --follow on stdin, and a bad
        // timeout value are all usage errors before any I/O happens.
        assert_eq!(
            dispatch(&args(&["replay", "t.jsonl", "--idle-timeout-ms", "50"])),
            2
        );
        assert_eq!(dispatch(&args(&["replay", "-", "--follow"])), 2);
        assert_eq!(
            dispatch(&args(&[
                "replay",
                "t.jsonl",
                "--follow",
                "--idle-timeout-ms",
                "soon"
            ])),
            2
        );
        // Unknown options stay rejected on the grown surface.
        assert_eq!(dispatch(&args(&["replay", "t.jsonl", "--tail"])), 2);
    }

    #[test]
    fn serve_trace_requires_its_input() {
        assert_eq!(dispatch(&args(&["serve-trace"])), 2);
        assert_eq!(dispatch(&args(&["serve-trace", "/no/such.jsonl"])), 4);
        assert_eq!(dispatch(&args(&["serve-trace", "a", "b"])), 2);
        assert_eq!(
            dispatch(&args(&["serve-trace", "t.jsonl", "--delay-ms", "soon"])),
            2
        );
    }

    #[test]
    fn serve_trace_drips_lines_verbatim() {
        let dir = std::env::temp_dir().join("lb_serve_trace_test");
        fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let out = dir.join("served.jsonl");
        fs::write(&trace, "{\"kind\":\"header\"}\nnot json at all\n").unwrap();
        let code = dispatch(&args(&[
            "serve-trace",
            trace.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        assert_eq!(
            fs::read_to_string(&out).unwrap(),
            "{\"kind\":\"header\"}\nnot json at all\n",
            "lines are served verbatim, without validation"
        );
    }

    #[test]
    fn shards_option_rejects_out_of_range_values() {
        assert_eq!(
            shards_option(Some("4")).unwrap(),
            Some(4),
            "in-range value honoured verbatim"
        );
        assert!(shards_option(Some("0")).is_err());
        assert!(shards_option(Some("1000000")).is_err());
        assert!(shards_option(Some("many")).is_err());
        assert_eq!(
            shards_option(Some("1")).unwrap(),
            Some(1),
            "1 is valid: it measures the sequential path through the executor"
        );
    }

    #[test]
    fn parse_args_handles_values_flags_and_positionals() {
        let a = args(&["--seed", "42", "scenario.json", "--quiet"]);
        let parsed = parse_args(&a, &["--seed", "--out"], &["--quiet"], 1).unwrap();
        assert_eq!(parsed.value("--seed"), Some("42"));
        assert_eq!(parsed.value("--out"), None);
        assert!(parsed.has("--quiet"));
        assert!(!parsed.has("--loud"));
        assert_eq!(parsed.positionals, vec!["scenario.json"]);

        // Positionals are found regardless of position relative to options.
        let a = args(&["--out", "r.json", "--quiet", "s.json", "--seed", "1"]);
        let parsed = parse_args(&a, &["--seed", "--out"], &["--quiet"], 1).unwrap();
        assert_eq!(parsed.positionals, vec!["s.json"]);

        // Repeated value options: the last one wins.
        let a = args(&["--seed", "1", "--seed", "2"]);
        let parsed = parse_args(&a, &["--seed"], &[], 0).unwrap();
        assert_eq!(parsed.value("--seed"), Some("2"));

        // Error cases: unknown option, missing value, surplus positional.
        assert!(parse_args(&args(&["--nope"]), &["--seed"], &[], 1).is_err());
        assert!(parse_args(&args(&["--seed"]), &["--seed"], &[], 0).is_err());
        assert!(parse_args(&args(&["a", "b"]), &[], &[], 1).is_err());
    }

    #[test]
    fn run_rejects_a_seed_override_on_no_file_before_reading() {
        // Usage validation happens before any I/O: a bad --seed fails with 2
        // even though the scenario file does not exist.
        assert_eq!(
            dispatch(&args(&["run", "/no/such.json", "--seed", "NaN"])),
            2
        );
    }

    #[test]
    fn run_checkpoint_flags_are_validated() {
        // The checkpoint path and cadence come as a pair; a zero or
        // malformed cadence is rejected before any I/O happens.
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--checkpoint", "c.jsonl"])),
            2
        );
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--checkpoint-every", "5"])),
            2
        );
        assert_eq!(
            dispatch(&args(&[
                "run",
                "s.json",
                "--checkpoint",
                "c.jsonl",
                "--checkpoint-every",
                "0"
            ])),
            2
        );
        assert_eq!(
            dispatch(&args(&[
                "run",
                "s.json",
                "--checkpoint",
                "c.jsonl",
                "--checkpoint-every",
                "soon"
            ])),
            2
        );
    }

    #[test]
    fn run_resume_flags_are_validated() {
        // --resume carries its own scenario: a scenario positional or a
        // --seed override contradicts the snapshot and is a usage error.
        assert_eq!(
            dispatch(&args(&["run", "s.json", "--resume", "c.jsonl"])),
            2
        );
        assert_eq!(
            dispatch(&args(&["run", "--resume", "c.jsonl", "--seed", "9"])),
            2
        );
        // A missing snapshot file is a runtime error, not a usage error.
        assert_eq!(
            dispatch(&args(&["run", "--resume", "/no/such/snapshot.jsonl"])),
            1
        );
    }

    #[test]
    fn bench_check_gates_on_regression() {
        let dir = std::env::temp_dir().join("lb_bench_check_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();

        // Within the allowance (25% by default): passes.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 80.0}}"#).unwrap();
        let base_args = |extra: &[&str]| {
            let mut v = args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ]);
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        assert_eq!(dispatch(&base_args(&[])), 0);

        // A >25% drop fails.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 60.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args(&[])), 1);

        // …unless the allowance is widened.
        assert_eq!(dispatch(&base_args(&["--max-regression", "50"])), 0);

        // Bad threshold and missing files are runtime errors.
        assert_eq!(dispatch(&base_args(&["--max-regression", "150"])), 1);
        fs::remove_file(&current).unwrap();
        assert_eq!(dispatch(&base_args(&[])), 1);
    }

    #[test]
    fn bench_check_gates_the_sharded_entry() {
        let dir = std::env::temp_dir().join("lb_bench_check_sharded_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        // Baseline with a sharded entry: the current file must carry one too
        // and stay above the floor.
        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0, "large": {"sharded": {"rounds_per_sec": 50.0}}}"#,
        )
        .unwrap();
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "large": {"sharded": {"rounds_per_sec": 45.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "within the allowance");

        // A >25% sharded drop fails even when the main entry is healthy.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "large": {"sharded": {"rounds_per_sec": 30.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "sharded regression fails");

        // A current file without a sharded entry is an error when the
        // baseline carries one…
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing sharded entry");

        // …but a baseline without one simply skips the sharded gate.
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 0, "no baseline entry, skipped");
    }

    #[test]
    fn bench_check_gates_the_ingest_entry() {
        let dir = std::env::temp_dir().join("lb_bench_check_ingest_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0,
               "ingest": {"channel": {"events_per_sec": 1000000.0}}}"#,
        )
        .unwrap();

        // Above the floor: passes.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "ingest": {"channel": {"events_per_sec": 900000.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "within the allowance");

        // A >25% ingestion drop fails even when the hot path is healthy.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "ingest": {"channel": {"events_per_sec": 500000.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "ingest regression fails");

        // Gated baselines demand the entry in the current file.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing ingest entry");

        // No baseline entry: the ingest gate is skipped.
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 0, "no baseline entry, skipped");
    }

    #[test]
    fn bench_check_gates_the_merge_entry() {
        let dir = std::env::temp_dir().join("lb_bench_check_merge_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0,
               "ingest": {"merge": {"events_per_sec": 1000000.0}}}"#,
        )
        .unwrap();

        // Above the floor: passes.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "ingest": {"merge": {"events_per_sec": 900000.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "within the allowance");

        // A >25% merge-stage drop fails even when the hot path is healthy.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "ingest": {"merge": {"events_per_sec": 500000.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "merge regression fails");

        // Gated baselines demand the entry in the current file.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing merge entry");

        // No baseline entry: the merge gate is skipped.
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 0, "no baseline entry, skipped");
    }

    #[test]
    fn bench_check_gates_the_snapshot_entries() {
        let dir = std::env::temp_dir().join("lb_bench_check_snapshot_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0,
               "snapshot": {"capture_write": {"mb_per_sec": 100.0},
                            "read_restore": {"mb_per_sec": 200.0}}}"#,
        )
        .unwrap();

        // Above both floors: passes.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "snapshot": {"capture_write": {"mb_per_sec": 90.0},
                            "read_restore": {"mb_per_sec": 180.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "within the allowance");

        // A >25% capture-write drop fails even with a healthy restore side.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "snapshot": {"capture_write": {"mb_per_sec": 50.0},
                            "read_restore": {"mb_per_sec": 200.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "capture-write regression fails");

        // And vice versa for read+restore.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "snapshot": {"capture_write": {"mb_per_sec": 100.0},
                            "read_restore": {"mb_per_sec": 100.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "read-restore regression fails");

        // Gated baselines demand the entry in the current file.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing snapshot entry");

        // No baseline entry: both snapshot gates are skipped.
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 0, "no baseline entry, skipped");
    }

    #[test]
    fn bench_check_fails_when_a_gated_key_is_missing() {
        let dir = std::env::temp_dir().join("lb_bench_check_missing_key_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        // The baseline gates a churn entry the measured file does not carry —
        // e.g. the benchmark was renamed. That must be a hard failure, not a
        // silent pass of the remaining gates.
        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0, "churn": {"rounds_per_sec": 100.0}}"#,
        )
        .unwrap();
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing churn entry fails");

        // With the entry present and healthy, the gate passes…
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "churn": {"rounds_per_sec": 95.0}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "churn entry within allowance");

        // …and still fails on an actual regression.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "churn": {"rounds_per_sec": 40.0}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "churn regression fails");

        // Numeric benchmark parameters recorded under `config` subtrees are
        // never gated, even with a `_per_sec`-shaped name.
        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0,
               "churn": {"rounds_per_sec": 100.0,
                         "config": {"patch_edges_per_sec": 1.0}}}"#,
        )
        .unwrap();
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "churn": {"rounds_per_sec": 100.0}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "config subtrees are not gated");
    }
}
