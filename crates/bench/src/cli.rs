//! The unified `lb` command-line interface.
//!
//! One binary fronts every experiment and tool in the harness:
//!
//! ```text
//! lb run <scenario.json> [--seed N] [--shards N] [--out PATH] [--quiet]
//! lb table1|table2|theorem3|theorem8|trajectory|heterogeneous|
//!    dummy_ablation|fos_vs_sos|dynamic_arrivals [--quick]
//! lb hotpath [--quick] [--shards N]
//! lb bench-check [--baseline PATH] [--current PATH] [--max-regression PCT]
//! lb help
//! ```
//!
//! `LB_BENCH_SHARDS` is the environment fallback for `--shards` on both
//! `run` and `hotpath`.
//!
//! The legacy per-experiment binaries (`table1`, `hotpath`, …) are thin
//! shims over [`shim`], so one dispatch table owns all argument parsing.

use crate::dynamic::run_scenario;
use lb_analysis::Json;
use lb_workloads::Scenario;
use std::fs;

/// Usage text printed by `lb help` and on argument errors.
const USAGE: &str = "\
lb — load-balancing experiment harness (PODC'12 flow imitation)

USAGE:
    lb <COMMAND> [OPTIONS]

COMMANDS:
    run <scenario.json>   Run a dynamic-workload scenario (see ROADMAP.md
                          'Scenario spec'); prints the deterministic result
                          JSON to stdout and streams samples to stderr.
        --seed N          Override the scenario's seed.
        --shards N        Override the scenario's shard count (intra-instance
                          parallelism; results are bit-identical for every N).
                          Env fallback: LB_BENCH_SHARDS.
        --out PATH        Also write the result JSON to PATH.
        --quiet           Suppress the per-sample stream on stderr.
    table1, table2, theorem3, theorem8, trajectory, heterogeneous,
    dummy_ablation, fos_vs_sos, dynamic_arrivals
                          Regenerate one experiment artefact.
        --quick           Reduced sizes/repeats (the CI configuration).
    hotpath [--quick]     Hot-path benchmark; writes BENCH_hotpath.json.
        --shards N        Shard count for the sharded large-instance entry
                          [default: min(cores, 8), at least 2; env
                          LB_BENCH_SHARDS]. Explicit values are used verbatim.
    bench-check           Compare BENCH_hotpath.json against the committed
                          baseline; non-zero exit on regression.
        --baseline PATH   Baseline file [default: BENCH_baseline.json].
        --current PATH    Current file [default: BENCH_hotpath.json].
        --max-regression PCT
                          Allowed rounds_per_sec drop in percent [default:
                          25, or env LB_BENCH_MAX_REGRESSION].
    help                  Print this message.
";

/// Entry point for the `lb` binary: dispatches `std::env::args`, returning
/// the process exit code.
pub fn main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    dispatch(&args)
}

/// Entry point for the legacy single-experiment binaries: runs `lb <name>`
/// with the binary's own CLI arguments appended, so `table1 --quick`
/// behaves exactly like `lb table1 --quick`.
pub fn shim(name: &str) -> i32 {
    let mut args = vec![name.to_string()];
    args.extend(std::env::args().skip(1));
    dispatch(&args)
}

/// Dispatches one parsed command line (without the program name). Returns
/// the process exit code: 0 on success, 1 on runtime failure, 2 on usage
/// errors.
pub fn dispatch(args: &[String]) -> i32 {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "hotpath" => match shards_option(rest) {
            Ok(shards) => {
                crate::hotpath::run(has_flag(rest, "--quick"), shards);
                0
            }
            Err(err) => {
                eprintln!("error: {err}");
                1
            }
        },
        "bench-check" => cmd_bench_check(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            0
        }
        name => match experiment_by_name(name) {
            Some(run) => {
                run(has_flag(rest, "--quick")).emit();
                0
            }
            None => {
                eprintln!("error: unknown command {name:?}\n");
                eprint!("{USAGE}");
                2
            }
        },
    }
}

/// The experiment registry: canonical names (and their hyphenated aliases)
/// to `run(quick)` entry points.
fn experiment_by_name(name: &str) -> Option<fn(bool) -> crate::experiments::ExperimentReport> {
    use crate::experiments as e;
    Some(match name.replace('-', "_").as_str() {
        "table1" => e::table1::run,
        "table2" => e::table2::run,
        "theorem3" => e::theorem3::run,
        "theorem8" => e::theorem8::run,
        "trajectory" => e::trajectory::run,
        "heterogeneous" => e::heterogeneous::run,
        "dummy_ablation" => e::dummy_ablation::run,
        "fos_vs_sos" => e::fos_vs_sos::run,
        "dynamic_arrivals" => e::dynamic_arrivals::run,
        _ => return None,
    })
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// `--shards N`, falling back to the `LB_BENCH_SHARDS` environment variable;
/// `None` when neither is set. Explicit values are range-checked here so
/// both consumers (`run`, `hotpath`) fail fast with a clear message instead
/// of silently adjusting or aborting in `thread::spawn`.
fn shards_option(args: &[String]) -> Result<Option<usize>, String> {
    let parse = |source: &str, v: &str| -> Result<usize, String> {
        let shards: usize = v.parse().map_err(|e| format!("{source}: {e}"))?;
        if shards == 0 || shards > lb_workloads::MAX_SHARDS {
            return Err(format!(
                "{source}: shard count must be in 1..={}, got {shards}",
                lb_workloads::MAX_SHARDS
            ));
        }
        Ok(shards)
    };
    if let Some(v) = opt_value(args, "--shards")? {
        return parse("--shards", v).map(Some);
    }
    match std::env::var("LB_BENCH_SHARDS") {
        Ok(v) => parse("LB_BENCH_SHARDS", &v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Extracts `--key VALUE` from `args`. Returns `Err` if the key is present
/// without a value.
fn opt_value<'a>(args: &'a [String], key: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{key} requires a value")),
    }
}

/// The first positional argument, skipping flags *and their values* — so
/// `--seed 7 scenario.json` does not mistake `7` for the positional.
fn positional<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a str> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if value_flags.iter().any(|f| f == arg) {
            iter.next(); // skip the flag's value
        } else if !arg.starts_with("--") {
            return Some(arg);
        }
    }
    None
}

fn cmd_run(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let path = positional(args, &["--seed", "--shards", "--out"])
            .ok_or("run requires a scenario file (lb run <scenario.json>)")?;
        let seed = opt_value(args, "--seed")?
            .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
            .transpose()?;
        let shards = shards_option(args)?;
        let out = opt_value(args, "--out")?;
        let quiet = has_flag(args, "--quiet");

        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let scenario = Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let outcome = run_scenario(&scenario, seed, shards, |sample| {
            if !quiet {
                eprintln!(
                    "round {:>6}: n = {}, max_min = {:.2}, max_avg = {:.2}, real = {}, \
                     dummy = {}, arrived = {}, completed = {}",
                    sample.round,
                    sample.nodes,
                    sample.max_min,
                    sample.max_avg,
                    sample.real_weight,
                    sample.dummy_load,
                    sample.arrived_weight,
                    sample.completed_weight,
                );
            }
        })?;
        let rendered = outcome.to_json().render_pretty();
        if let Some(out) = out {
            fs::write(out, &rendered).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("(result written to {out})");
        }
        println!("{rendered}");
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("error: {err}");
            1
        }
    }
}

/// Reads `optimized.rounds_per_sec` from a `BENCH_hotpath.json`-shaped
/// document, falling back to a top-level `rounds_per_sec` (the trimmed
/// baseline format).
fn rounds_per_sec(doc: &Json, path: &str) -> Result<f64, String> {
    doc.get("optimized")
        .and_then(|o| o.get("rounds_per_sec"))
        .or_else(|| doc.get("rounds_per_sec"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: no rounds_per_sec field"))
}

/// Reads the sharded large-instance throughput (`large.sharded.rounds_per_sec`)
/// from a hotpath/baseline document, if present.
fn sharded_rounds_per_sec(doc: &Json) -> Option<f64> {
    doc.get("large")?
        .get("sharded")?
        .get("rounds_per_sec")?
        .as_f64()
}

/// The perf-regression gate: compares the current hot-path throughput
/// against the committed baseline and fails on a drop beyond the allowance.
fn cmd_bench_check(args: &[String]) -> i32 {
    let verdict = (|| -> Result<bool, String> {
        let baseline_path = opt_value(args, "--baseline")?.unwrap_or("BENCH_baseline.json");
        let current_path = opt_value(args, "--current")?.unwrap_or("BENCH_hotpath.json");
        let max_regression: f64 = match opt_value(args, "--max-regression")? {
            Some(v) => v.parse().map_err(|e| format!("--max-regression: {e}"))?,
            None => match std::env::var("LB_BENCH_MAX_REGRESSION") {
                Ok(v) => v
                    .parse()
                    .map_err(|e| format!("LB_BENCH_MAX_REGRESSION: {e}"))?,
                Err(_) => 25.0,
            },
        };
        if !(0.0..100.0).contains(&max_regression) {
            return Err(format!(
                "--max-regression must be in [0, 100), got {max_regression}"
            ));
        }

        let read = |path: &str| -> Result<Json, String> {
            let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            Json::parse(&text).map_err(|e| format!("{path}: {e}"))
        };
        let baseline_doc = read(baseline_path)?;
        let current_doc = read(current_path)?;
        let baseline = rounds_per_sec(&baseline_doc, baseline_path)?;
        let current = rounds_per_sec(&current_doc, current_path)?;
        if baseline <= 0.0 {
            return Err(format!("{baseline_path}: rounds_per_sec must be positive"));
        }

        let gate = |label: &str, baseline: f64, current: f64| -> bool {
            let floor = baseline * (1.0 - max_regression / 100.0);
            let change = (current / baseline - 1.0) * 100.0;
            println!(
                "bench-check [{label}]: baseline {baseline:.1} rounds/sec, current \
                 {current:.1} rounds/sec ({change:+.1}%), allowed regression \
                 {max_regression}% (floor {floor:.1})"
            );
            if current < floor {
                println!(
                    "bench-check [{label}]: FAIL — rounds_per_sec regressed more than \
                     {max_regression}% below the committed baseline"
                );
                false
            } else {
                println!("bench-check [{label}]: OK");
                true
            }
        };

        let mut ok = gate("hotpath", baseline, current);
        // The sharded large-instance entry is gated whenever the committed
        // baseline carries one (re-baseline deliberately to change it).
        match sharded_rounds_per_sec(&baseline_doc) {
            Some(sharded_baseline) if sharded_baseline > 0.0 => {
                let sharded_current = sharded_rounds_per_sec(&current_doc).ok_or_else(|| {
                    format!("{current_path}: no large.sharded.rounds_per_sec field")
                })?;
                ok &= gate("sharded", sharded_baseline, sharded_current);
            }
            _ => println!("bench-check [sharded]: no baseline entry, skipped"),
        }
        Ok(ok)
    })();
    match verdict {
        Ok(true) => 0,
        Ok(false) => 1,
        Err(err) => {
            eprintln!("error: {err}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_commands_and_empty_args_are_usage_errors() {
        assert_eq!(dispatch(&args(&["no_such_command"])), 2);
        assert_eq!(dispatch(&[]), 2);
        assert_eq!(dispatch(&args(&["help"])), 0);
    }

    #[test]
    fn experiment_registry_knows_every_experiment() {
        for name in [
            "table1",
            "table2",
            "theorem3",
            "theorem8",
            "trajectory",
            "heterogeneous",
            "dummy_ablation",
            "dummy-ablation",
            "fos_vs_sos",
            "fos-vs-sos",
            "dynamic_arrivals",
        ] {
            assert!(experiment_by_name(name).is_some(), "{name} missing");
        }
        assert!(experiment_by_name("run").is_none());
        assert!(experiment_by_name("hotpath").is_none());
    }

    #[test]
    fn run_requires_a_scenario_file() {
        assert_eq!(dispatch(&args(&["run"])), 1);
        assert_eq!(dispatch(&args(&["run", "/no/such/file.json"])), 1);
    }

    #[test]
    fn shards_option_rejects_out_of_range_values() {
        assert_eq!(
            shards_option(&args(&["--shards", "4"])).unwrap(),
            Some(4),
            "in-range value honoured verbatim"
        );
        assert!(shards_option(&args(&["--shards", "0"])).is_err());
        assert!(shards_option(&args(&["--shards", "1000000"])).is_err());
        assert!(shards_option(&args(&["--shards", "many"])).is_err());
        assert_eq!(
            shards_option(&args(&["--shards", "1"])).unwrap(),
            Some(1),
            "1 is valid: it measures the sequential path through the executor"
        );
    }

    #[test]
    fn opt_value_parses_key_value_pairs() {
        let a = args(&["--seed", "42", "--quiet"]);
        assert_eq!(opt_value(&a, "--seed").unwrap(), Some("42"));
        assert_eq!(opt_value(&a, "--out").unwrap(), None);
        assert!(opt_value(&args(&["--seed"]), "--seed").is_err());
        assert!(has_flag(&a, "--quiet"));
        assert!(!has_flag(&a, "--loud"));
    }

    #[test]
    fn positional_skips_flag_values_in_any_order() {
        let flags = ["--seed", "--out"];
        let a = args(&["--seed", "7", "scenario.json"]);
        assert_eq!(positional(&a, &flags), Some("scenario.json"));
        let a = args(&[
            "--out",
            "result.json",
            "--quiet",
            "scenario.json",
            "--seed",
            "1",
        ]);
        assert_eq!(positional(&a, &flags), Some("scenario.json"));
        let a = args(&["scenario.json", "--seed", "7"]);
        assert_eq!(positional(&a, &flags), Some("scenario.json"));
        assert_eq!(positional(&args(&["--seed", "7"]), &flags), None);
        assert_eq!(positional(&args(&["--quiet"]), &flags), None);
    }

    #[test]
    fn bench_check_gates_on_regression() {
        let dir = std::env::temp_dir().join("lb_bench_check_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();

        // Within the allowance (25% by default): passes.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 80.0}}"#).unwrap();
        let base_args = |extra: &[&str]| {
            let mut v = args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ]);
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        assert_eq!(dispatch(&base_args(&[])), 0);

        // A >25% drop fails.
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 60.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args(&[])), 1);

        // …unless the allowance is widened.
        assert_eq!(dispatch(&base_args(&["--max-regression", "50"])), 0);

        // Bad threshold and missing files are runtime errors.
        assert_eq!(dispatch(&base_args(&["--max-regression", "150"])), 1);
        fs::remove_file(&current).unwrap();
        assert_eq!(dispatch(&base_args(&[])), 1);
    }

    #[test]
    fn bench_check_gates_the_sharded_entry() {
        let dir = std::env::temp_dir().join("lb_bench_check_sharded_test");
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        let base_args = || {
            args(&[
                "bench-check",
                "--baseline",
                baseline.to_str().unwrap(),
                "--current",
                current.to_str().unwrap(),
            ])
        };

        // Baseline with a sharded entry: the current file must carry one too
        // and stay above the floor.
        fs::write(
            &baseline,
            r#"{"rounds_per_sec": 100.0, "large": {"sharded": {"rounds_per_sec": 50.0}}}"#,
        )
        .unwrap();
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "large": {"sharded": {"rounds_per_sec": 45.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 0, "within the allowance");

        // A >25% sharded drop fails even when the main entry is healthy.
        fs::write(
            &current,
            r#"{"optimized": {"rounds_per_sec": 100.0},
               "large": {"sharded": {"rounds_per_sec": 30.0}}}"#,
        )
        .unwrap();
        assert_eq!(dispatch(&base_args()), 1, "sharded regression fails");

        // A current file without a sharded entry is an error when the
        // baseline carries one…
        fs::write(&current, r#"{"optimized": {"rounds_per_sec": 100.0}}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 1, "missing sharded entry");

        // …but a baseline without one simply skips the sharded gate.
        fs::write(&baseline, r#"{"rounds_per_sec": 100.0}"#).unwrap();
        assert_eq!(dispatch(&base_args()), 0, "no baseline entry, skipped");
    }
}
