//! The typed error surface of the bench driver.
//!
//! Every driver entry point ([`crate::dynamic::Session::run`], the serve
//! front-end, the CLI commands) reports failures as a [`BenchError`], whose
//! variants map to distinct process exit codes so service supervisors can
//! tell failure classes apart without parsing messages:
//!
//! | variant | class | exit code |
//! |---|---|---|
//! | [`BenchError::Usage`] | invalid invocation / contradictory options | 2 |
//! | [`BenchError::Protocol`] | stream, handshake or auth violation | 3 |
//! | [`BenchError::Io`] | file or socket I/O failure | 4 |
//! | [`BenchError::Core`], [`BenchError::Snapshot`], [`BenchError::Run`] | everything else | 1 |

use lb_core::snapshot::SnapshotError;
use lb_core::CoreError;
use std::error::Error;
use std::fmt;

/// A driver failure, classified for exit-code mapping (see the
/// [module docs](self)).
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// The invocation itself is invalid: contradictory options, values out
    /// of range, a scenario spec that does not validate. Exit code 2.
    Usage(String),
    /// A peer or stream violated a protocol: malformed or out-of-order
    /// trace records, a handshake rejection, a snapshot that does not match
    /// the run, a merge ordering violation. Exit code 3.
    Protocol(String),
    /// Reading or writing a file, pipe or socket failed. Exit code 4.
    Io(String),
    /// The engine rejected a configuration or an event. Exit code 1.
    Core(CoreError),
    /// Loading or writing a snapshot failed. Exit code 1.
    Snapshot(SnapshotError),
    /// Any other runtime failure. Exit code 1.
    Run(String),
}

impl BenchError {
    /// The process exit code this failure class maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            BenchError::Usage(_) => 2,
            BenchError::Protocol(_) => 3,
            BenchError::Io(_) => 4,
            BenchError::Core(_) | BenchError::Snapshot(_) | BenchError::Run(_) => 1,
        }
    }

    /// Convenience constructor for [`BenchError::Usage`].
    pub fn usage(message: impl Into<String>) -> Self {
        BenchError::Usage(message.into())
    }

    /// Convenience constructor for [`BenchError::Protocol`].
    pub fn protocol(message: impl Into<String>) -> Self {
        BenchError::Protocol(message.into())
    }

    /// Convenience constructor for [`BenchError::Io`].
    pub fn io(message: impl Into<String>) -> Self {
        BenchError::Io(message.into())
    }

    /// Convenience constructor for [`BenchError::Run`].
    pub fn run(message: impl Into<String>) -> Self {
        BenchError::Run(message.into())
    }

    /// Classifies a stringly error from the streaming-source layer
    /// ([`lb_workloads::source::RoundSource::next_round`] and friends),
    /// which mixes I/O failures with format/ordering violations: messages
    /// naming an I/O operation become [`BenchError::Io`], everything else
    /// is a stream-protocol violation.
    pub fn from_source(message: String) -> Self {
        let io_shaped = ["reading ", "opening ", "seeking ", "stat "]
            .iter()
            .any(|prefix| message.starts_with(prefix) || message.contains(": reading "));
        if io_shaped {
            BenchError::Io(message)
        } else {
            BenchError::Protocol(message)
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(m) => write!(f, "{m}"),
            BenchError::Protocol(m) => write!(f, "{m}"),
            BenchError::Io(m) => write!(f, "{m}"),
            BenchError::Core(e) => write!(f, "{e}"),
            BenchError::Snapshot(e) => write!(f, "{e}"),
            BenchError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Core(e) => Some(e),
            BenchError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        BenchError::Core(e)
    }
}

impl From<SnapshotError> for BenchError {
    fn from(e: SnapshotError) -> Self {
        BenchError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_map_by_class() {
        assert_eq!(BenchError::usage("x").exit_code(), 2);
        assert_eq!(BenchError::protocol("x").exit_code(), 3);
        assert_eq!(BenchError::io("x").exit_code(), 4);
        assert_eq!(BenchError::run("x").exit_code(), 1);
        assert_eq!(
            BenchError::from(CoreError::invalid_parameter("x")).exit_code(),
            1
        );
    }

    #[test]
    fn source_errors_classify_io_versus_protocol() {
        assert!(matches!(
            BenchError::from_source("reading event stream: broken pipe".into()),
            BenchError::Io(_)
        ));
        assert!(matches!(
            BenchError::from_source("opening trace t.jsonl: no such file".into()),
            BenchError::Io(_)
        ));
        assert!(matches!(
            BenchError::from_source(
                "line 3: round 2 after round 5 (must be strictly increasing)".into()
            ),
            BenchError::Protocol(_)
        ));
    }

    #[test]
    fn wrapped_errors_expose_a_source() {
        let e = BenchError::from(CoreError::invalid_parameter("beta"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("beta"));
    }
}
