//! Shared experiment machinery: graph classes, continuous models,
//! discretizers, and a single entry point that builds and runs any
//! combination of them.

use lb_core::continuous::{DimensionExchange, Fos, RandomMatching, Sos};
use lb_core::convergence::{continuous_balancing_time, BalancingTime};
use lb_core::discrete::baselines::{
    ExcessTokenDiffusion, MatchingSchedule, QuasirandomDiffusion, RandomizedRoundingDiffusion,
    RandomizedRoundingMatching, RoundDownDiffusion, RoundDownMatching,
};
use lb_core::discrete::{DiscreteBalancer, FlowImitation, RandomizedImitation, TaskPicker};
use lb_core::{CoreError, InitialLoad, Speeds};
use lb_graph::{generators, AlphaScheme, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The graph classes of the paper's comparison tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GraphClass {
    /// "Arbitrary graphs": a connected Erdős–Rényi sample (non-regular, no
    /// structure assumed).
    Arbitrary,
    /// Constant-degree expanders: random 4-regular graphs.
    Expander,
    /// Binary hypercubes (degree `log2 n`).
    Hypercube,
    /// 2-dimensional tori (degree 4).
    Torus,
    /// Low-expansion control family: a ring of cliques.
    RingOfCliques,
    /// Long cycles (the extreme low-expansion case).
    Cycle,
}

impl GraphClass {
    /// All classes appearing in Tables 1 and 2.
    pub const TABLE_CLASSES: [GraphClass; 4] = [
        GraphClass::Arbitrary,
        GraphClass::Expander,
        GraphClass::Hypercube,
        GraphClass::Torus,
    ];

    /// A short label used as a table column header.
    pub fn label(&self) -> &'static str {
        match self {
            GraphClass::Arbitrary => "arbitrary",
            GraphClass::Expander => "expander(d=4)",
            GraphClass::Hypercube => "hypercube",
            GraphClass::Torus => "torus(2d)",
            GraphClass::RingOfCliques => "ring_of_cliques",
            GraphClass::Cycle => "cycle",
        }
    }

    /// Builds a member of the class with roughly `target_n` nodes (rounded to
    /// whatever the family supports: powers of two for hypercubes, perfect
    /// squares for tori).
    ///
    /// # Errors
    ///
    /// Propagates generator errors (e.g. a target size too small for the
    /// family).
    pub fn build(&self, target_n: usize, seed: u64) -> Result<Graph, lb_graph::GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            GraphClass::Arbitrary => {
                // Keep the expected degree moderate and independent of n so
                // the d-dependent bounds stay comparable across sizes.
                let p = (8.0 / target_n as f64).min(1.0);
                generators::erdos_renyi_connected(target_n, p, &mut rng)
            }
            GraphClass::Expander => generators::random_regular(target_n, 4, &mut rng),
            GraphClass::Hypercube => {
                let dim = (target_n.max(2) as f64).log2().round().max(1.0) as u32;
                generators::hypercube(dim)
            }
            GraphClass::Torus => {
                let side = (target_n as f64).sqrt().round().max(2.0) as usize;
                generators::torus(side, side)
            }
            GraphClass::RingOfCliques => {
                let clique = 8usize;
                let cliques = (target_n / clique).max(3);
                generators::ring_of_cliques(cliques, clique)
            }
            GraphClass::Cycle => generators::cycle(target_n.max(3)),
        }
    }
}

/// The continuous process a discretizer imitates (or, for the self-contained
/// baselines, the communication model it follows).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ContinuousModel {
    /// First-order diffusion.
    Fos,
    /// Second-order diffusion with the optimal `β`.
    Sos,
    /// Dimension exchange over periodic matchings from a greedy edge
    /// colouring.
    PeriodicMatching,
    /// The random-matching model with the given seed.
    RandomMatching {
        /// Seed for the per-round matchings.
        seed: u64,
    },
}

impl ContinuousModel {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ContinuousModel::Fos => "fos",
            ContinuousModel::Sos => "sos",
            ContinuousModel::PeriodicMatching => "periodic_matching",
            ContinuousModel::RandomMatching { .. } => "random_matching",
        }
    }

    /// Returns `true` for the matching-based models.
    pub fn is_matching_model(&self) -> bool {
        matches!(
            self,
            ContinuousModel::PeriodicMatching | ContinuousModel::RandomMatching { .. }
        )
    }
}

/// Which discrete algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Discretizer {
    /// Algorithm 1 — deterministic flow imitation (this paper).
    Alg1,
    /// Algorithm 2 — randomized flow imitation (this paper).
    Alg2,
    /// Round-down (Rabani et al. \[37\] / Muthukrishnan et al. \[34\]).
    RoundDown,
    /// Per-edge randomized rounding (Friedrich et al. \[26\] / \[24\]).
    RandomizedRounding,
    /// Deterministic accumulated-error rounding (Friedrich et al. \[26\]).
    Quasirandom,
    /// Excess-token randomized diffusion (Berenbrink et al. \[9\]).
    ExcessToken,
}

impl Discretizer {
    /// The algorithms compared in Table 1 (diffusion model).
    pub const TABLE1: [Discretizer; 6] = [
        Discretizer::RoundDown,
        Discretizer::RandomizedRounding,
        Discretizer::Quasirandom,
        Discretizer::ExcessToken,
        Discretizer::Alg1,
        Discretizer::Alg2,
    ];

    /// The algorithms compared in Table 2 (matching models).
    pub const TABLE2: [Discretizer; 4] = [
        Discretizer::RoundDown,
        Discretizer::RandomizedRounding,
        Discretizer::Alg1,
        Discretizer::Alg2,
    ];

    /// A short label used as a table row header.
    pub fn label(&self) -> &'static str {
        match self {
            Discretizer::Alg1 => "alg1 (this paper)",
            Discretizer::Alg2 => "alg2 (this paper)",
            Discretizer::RoundDown => "round-down [37]",
            Discretizer::RandomizedRounding => "randomized rounding [26]/[24]",
            Discretizer::Quasirandom => "quasirandom [26]",
            Discretizer::ExcessToken => "excess token [9]",
        }
    }
}

/// One fully-specified experiment cell.
///
/// The topology is held behind an [`Arc`], so cloning a config for repeated
/// trials (or fanning configs out across worker threads with [`run_all`])
/// shares one graph instance instead of deep-copying it.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The network (shared).
    pub graph: Arc<Graph>,
    /// Node speeds.
    pub speeds: Speeds,
    /// Initial task placement.
    pub initial: InitialLoad,
    /// Continuous model to imitate / communication pattern to follow.
    pub model: ContinuousModel,
    /// Discrete algorithm to run.
    pub discretizer: Discretizer,
    /// Number of rounds; use [`measure_balancing_time`] to pick the paper's
    /// `T`.
    pub rounds: usize,
    /// Seed for any randomized component of the discretizer.
    pub seed: u64,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Name reported by the balancer.
    pub name: String,
    /// Final max-min makespan discrepancy.
    pub max_min: f64,
    /// Final max-avg makespan discrepancy.
    pub max_avg: f64,
    /// Dummy load created from the infinite source (flow-imitation
    /// algorithms only).
    pub dummy_created: u64,
    /// Number of rounds executed.
    pub rounds: usize,
}

fn build_fos(graph: &Arc<Graph>, speeds: &Speeds) -> Result<Fos, CoreError> {
    Fos::new(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne)
}

/// Builds the balancer described by `config`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for unsupported combinations
/// (e.g. the quasirandom or excess-token baselines in a matching model) and
/// propagates construction errors from the processes themselves.
pub fn build_balancer(config: &RunConfig) -> Result<Box<dyn DiscreteBalancer>, CoreError> {
    let RunConfig {
        graph,
        speeds,
        initial,
        model,
        discretizer,
        seed,
        ..
    } = config;
    let graph = Arc::clone(graph);
    match (discretizer, model) {
        // ---- The paper's transformations work with every model. ----
        (Discretizer::Alg1, ContinuousModel::Fos) => Ok(Box::new(FlowImitation::new(
            build_fos(&graph, speeds)?,
            initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )?)),
        (Discretizer::Alg1, ContinuousModel::Sos) => Ok(Box::new(FlowImitation::new(
            Sos::with_optimal_beta(graph, speeds, AlphaScheme::MaxDegreePlusOne)?,
            initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )?)),
        (Discretizer::Alg1, ContinuousModel::PeriodicMatching) => Ok(Box::new(FlowImitation::new(
            DimensionExchange::with_greedy_coloring(graph, speeds)?,
            initial,
            speeds.clone(),
            TaskPicker::Fifo,
        )?)),
        (Discretizer::Alg1, ContinuousModel::RandomMatching { seed: mseed }) => {
            Ok(Box::new(FlowImitation::new(
                RandomMatching::new(graph, speeds, *mseed)?,
                initial,
                speeds.clone(),
                TaskPicker::Fifo,
            )?))
        }
        (Discretizer::Alg2, ContinuousModel::Fos) => Ok(Box::new(RandomizedImitation::new(
            build_fos(&graph, speeds)?,
            initial,
            speeds.clone(),
            *seed,
        )?)),
        (Discretizer::Alg2, ContinuousModel::Sos) => Ok(Box::new(RandomizedImitation::new(
            Sos::with_optimal_beta(graph, speeds, AlphaScheme::MaxDegreePlusOne)?,
            initial,
            speeds.clone(),
            *seed,
        )?)),
        (Discretizer::Alg2, ContinuousModel::PeriodicMatching) => {
            Ok(Box::new(RandomizedImitation::new(
                DimensionExchange::with_greedy_coloring(graph, speeds)?,
                initial,
                speeds.clone(),
                *seed,
            )?))
        }
        (Discretizer::Alg2, ContinuousModel::RandomMatching { seed: mseed }) => {
            Ok(Box::new(RandomizedImitation::new(
                RandomMatching::new(graph, speeds, *mseed)?,
                initial,
                speeds.clone(),
                *seed,
            )?))
        }

        // ---- Diffusion baselines. ----
        (Discretizer::RoundDown, ContinuousModel::Fos | ContinuousModel::Sos) => Ok(Box::new(
            RoundDownDiffusion::new(graph, speeds.clone(), initial)?,
        )),
        (Discretizer::RandomizedRounding, ContinuousModel::Fos | ContinuousModel::Sos) => {
            Ok(Box::new(RandomizedRoundingDiffusion::new(
                graph,
                speeds.clone(),
                initial,
                *seed,
            )?))
        }
        (Discretizer::Quasirandom, ContinuousModel::Fos | ContinuousModel::Sos) => Ok(Box::new(
            QuasirandomDiffusion::new(graph, speeds.clone(), initial)?,
        )),
        (Discretizer::ExcessToken, ContinuousModel::Fos | ContinuousModel::Sos) => Ok(Box::new(
            ExcessTokenDiffusion::new(graph, speeds.clone(), initial, *seed)?,
        )),

        // ---- Matching-model baselines. ----
        (Discretizer::RoundDown, ContinuousModel::PeriodicMatching) => {
            let schedule = MatchingSchedule::periodic_greedy(&graph);
            Ok(Box::new(RoundDownMatching::new(
                graph,
                speeds.clone(),
                initial,
                schedule,
            )?))
        }
        (Discretizer::RoundDown, ContinuousModel::RandomMatching { seed: mseed }) => {
            Ok(Box::new(RoundDownMatching::new(
                graph,
                speeds.clone(),
                initial,
                MatchingSchedule::Random { seed: *mseed },
            )?))
        }
        (Discretizer::RandomizedRounding, ContinuousModel::PeriodicMatching) => {
            let schedule = MatchingSchedule::periodic_greedy(&graph);
            Ok(Box::new(RandomizedRoundingMatching::new(
                graph,
                speeds.clone(),
                initial,
                schedule,
                *seed,
            )?))
        }
        (Discretizer::RandomizedRounding, ContinuousModel::RandomMatching { seed: mseed }) => {
            Ok(Box::new(RandomizedRoundingMatching::new(
                graph,
                speeds.clone(),
                initial,
                MatchingSchedule::Random { seed: *mseed },
                *seed,
            )?))
        }
        (Discretizer::Quasirandom | Discretizer::ExcessToken, m) if m.is_matching_model() => {
            Err(CoreError::invalid_parameter(format!(
                "{:?} is only defined for the diffusion model",
                discretizer
            )))
        }
        _ => Err(CoreError::invalid_parameter(format!(
            "unsupported combination: {discretizer:?} with {model:?}"
        ))),
    }
}

/// Measures the continuous balancing time `T` for `model` on the given graph
/// and initial load (tolerance 1, as in the paper), capping at `max_rounds`.
///
/// # Errors
///
/// Propagates construction errors from the continuous process.
pub fn measure_balancing_time(
    graph: &Arc<Graph>,
    speeds: &Speeds,
    initial: &InitialLoad,
    model: ContinuousModel,
    max_rounds: usize,
) -> Result<BalancingTime, CoreError> {
    let x0 = initial.load_vector_f64();
    Ok(match model {
        ContinuousModel::Fos => {
            continuous_balancing_time(build_fos(graph, speeds)?, x0, 1.0, max_rounds)
        }
        ContinuousModel::Sos => continuous_balancing_time(
            Sos::with_optimal_beta(Arc::clone(graph), speeds, AlphaScheme::MaxDegreePlusOne)?,
            x0,
            1.0,
            max_rounds,
        ),
        ContinuousModel::PeriodicMatching => continuous_balancing_time(
            DimensionExchange::with_greedy_coloring(Arc::clone(graph), speeds)?,
            x0,
            1.0,
            max_rounds,
        ),
        ContinuousModel::RandomMatching { seed } => continuous_balancing_time(
            RandomMatching::new(Arc::clone(graph), speeds, seed)?,
            x0,
            1.0,
            max_rounds,
        ),
    })
}

/// Builds the balancer for `config`, runs it for `config.rounds` rounds, and
/// reports the final discrepancies.
///
/// # Errors
///
/// Propagates errors from [`build_balancer`].
pub fn run_once(config: &RunConfig) -> Result<RunOutcome, CoreError> {
    let mut balancer = build_balancer(config)?;
    balancer.run(config.rounds);
    let metrics = balancer.metrics();
    Ok(RunOutcome {
        name: balancer.name().to_string(),
        max_min: metrics.max_min,
        max_avg: metrics.max_avg,
        dummy_created: balancer.dummy_load(),
        rounds: config.rounds,
    })
}

/// Runs every configuration with [`run_once`], fanning the trials out across
/// worker threads (see [`crate::parallel`]). Results keep the input order,
/// so `configs[i]` corresponds to `results[i]`.
///
/// Since [`RunConfig`] shares its graph through an `Arc`, cloning one config
/// per seed/trial is cheap and the workers reference a single topology.
pub fn run_all(configs: &[RunConfig]) -> Vec<Result<RunOutcome, CoreError>> {
    crate::parallel::parallel_map(configs, run_once)
}

/// Builds the standard experiment workload: `load_per_node` tokens per node
/// on average, all placed on node 0, plus `pad` tokens on every node (the
/// sufficient-initial-load padding; use `d·w_max` to engage the max-min
/// guarantee of Theorem 3(2)).
pub fn standard_initial_load(n: usize, load_per_node: u64, pad: u64) -> InitialLoad {
    let mut counts = vec![pad; n];
    counts[0] += load_per_node * n as u64;
    InitialLoad::from_token_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(model: ContinuousModel, discretizer: Discretizer) -> RunConfig {
        let graph: Arc<Graph> = GraphClass::Torus.build(16, 1).unwrap().into();
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = standard_initial_load(n, 10, 8);
        RunConfig {
            graph,
            speeds,
            initial,
            model,
            discretizer,
            rounds: 200,
            seed: 42,
        }
    }

    #[test]
    fn graph_classes_build_connected_graphs() {
        for class in GraphClass::TABLE_CLASSES {
            let g = class.build(64, 3).unwrap();
            assert!(g.is_connected(), "{} must be connected", class.label());
            assert!(g.node_count() >= 32, "{}", class.label());
        }
        assert!(GraphClass::RingOfCliques
            .build(64, 3)
            .unwrap()
            .is_connected());
        assert!(GraphClass::Cycle.build(64, 3).unwrap().is_connected());
    }

    #[test]
    fn hypercube_class_rounds_to_power_of_two() {
        let g = GraphClass::Hypercube.build(1000, 0).unwrap();
        assert_eq!(g.node_count(), 1024);
    }

    #[test]
    fn all_table1_combinations_run() {
        for discretizer in Discretizer::TABLE1 {
            let outcome = run_once(&quick_config(ContinuousModel::Fos, discretizer)).unwrap();
            assert!(outcome.max_min >= 0.0, "{}", outcome.name);
            assert!(
                outcome.max_min < 64.0,
                "{} ended with implausible discrepancy {}",
                outcome.name,
                outcome.max_min
            );
        }
    }

    #[test]
    fn all_table2_combinations_run() {
        for model in [
            ContinuousModel::PeriodicMatching,
            ContinuousModel::RandomMatching { seed: 5 },
        ] {
            for discretizer in Discretizer::TABLE2 {
                let outcome = run_once(&quick_config(model, discretizer)).unwrap();
                assert!(outcome.max_min >= 0.0, "{}", outcome.name);
            }
        }
    }

    #[test]
    fn unsupported_combinations_are_rejected() {
        let config = quick_config(ContinuousModel::PeriodicMatching, Discretizer::Quasirandom);
        assert!(build_balancer(&config).is_err());
        let config = quick_config(
            ContinuousModel::RandomMatching { seed: 1 },
            Discretizer::ExcessToken,
        );
        assert!(build_balancer(&config).is_err());
    }

    #[test]
    fn balancing_time_is_finite_for_all_models() {
        let graph: Arc<Graph> = GraphClass::Hypercube.build(16, 0).unwrap().into();
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = standard_initial_load(n, 10, 0);
        for model in [
            ContinuousModel::Fos,
            ContinuousModel::Sos,
            ContinuousModel::PeriodicMatching,
            ContinuousModel::RandomMatching { seed: 2 },
        ] {
            let t = measure_balancing_time(&graph, &speeds, &initial, model, 50_000).unwrap();
            assert!(t.reached(), "{} did not balance", model.label());
            assert!(t.rounds() > 0);
        }
    }

    #[test]
    fn alg1_certified_bound_on_large_cycle() {
        // On low-expansion graphs Algorithm 1's bound 2·d + 2 is certified at
        // the continuous balancing time, regardless of the graph size. (The
        // round-down baseline has no comparable guarantee — its worst-case
        // bound grows with d·diam — although on benign single-source inputs
        // it can also end with a small residual; the Table 1 experiment
        // reports both.)
        let graph: Arc<Graph> = GraphClass::Cycle.build(64, 0).unwrap().into();
        let n = graph.node_count();
        let speeds = Speeds::uniform(n);
        let initial = standard_initial_load(n, 20, 2);
        let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 200_000)
            .unwrap()
            .rounds();
        let mk = |discretizer| RunConfig {
            graph: graph.clone(),
            speeds: speeds.clone(),
            initial: initial.clone(),
            model: ContinuousModel::Fos,
            discretizer,
            rounds: t,
            seed: 7,
        };
        let alg1 = run_once(&mk(Discretizer::Alg1)).unwrap();
        let round_down = run_once(&mk(Discretizer::RoundDown)).unwrap();
        assert!(
            alg1.max_min <= 2.0 * 2.0 + 2.0 + 1e-9,
            "alg1 discrepancy {}",
            alg1.max_min
        );
        assert_eq!(alg1.dummy_created, 0);
        // Round-down stalls with some nonzero residual discrepancy.
        assert!(round_down.max_min >= 1.0);
    }
}
