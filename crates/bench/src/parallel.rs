//! Minimal work-stealing parallel map on std threads.
//!
//! The container this workspace builds in has no registry access, so rayon
//! is unavailable; this module provides the one primitive the experiment
//! harness needs — run independent trials/configurations across cores — with
//! `std::thread::scope` and an atomic work counter. Results keep the input
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by [`parallel_map`]: the available
/// parallelism, overridable with the `LB_BENCH_THREADS` environment variable
/// (`1` forces sequential execution, useful for profiling).
pub fn worker_threads() -> usize {
    if let Some(n) = std::env::var("LB_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, distributing items across worker threads with
/// an atomic cursor (dynamic load balancing — long and short trials mix
/// freely). The output preserves input order.
///
/// Falls back to a plain sequential map for a single worker or short inputs.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // lint: allow(R03, propagates a worker panic's poison)
                .expect("result slot poisoned")
                // lint: allow(R03, the scoped-thread join proves every slot filled)
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..64).collect();
        let sums = parallel_map(&items, |&x| (0..(x % 7) * 10_000).sum::<u64>() + x);
        assert_eq!(sums.len(), 64);
        for (i, &s) in sums.iter().enumerate() {
            assert!(s >= i as u64);
        }
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }
}
