//! Socket service front-end: `lb serve` accepts trace-streaming
//! connections and feeds them into one live engine as merge feeds.
//!
//! The server ([`serve`]) binds a TCP address (or a `unix:/path` socket on
//! unix), builds a [`MergeSession`] with a live
//! [`FeedRegistrar`], and runs the
//! scenario through [`Session::merged`] once [`ServeOptions::clients`]
//! producers have completed their handshake. Each connection frames the
//! trace wire format of [`lb_workloads::trace`] through a
//! [`ReadSource`] into its own bounded ingest channel, so many concurrent
//! producers feed one deterministic engine with the byte-identity contract
//! intact.
//!
//! ## Wire protocol (version [`SERVE_PROTOCOL_VERSION`])
//!
//! Line-delimited JSON, one record per line, client speaks first:
//!
//! | step | direction | record |
//! |---|---|---|
//! | 1 | client → server | `{"kind":"hello","version":1,"feed":"<name>"}` |
//! | 2 | client → server | the trace header line (`{"kind":"header",…}`) |
//! | 3 | server → client | `{"kind":"welcome","version":1,"feed":…,"last_round":null\|N}` or `{"kind":"reject","version":1,"error":…}` |
//! | 4 | client → server | round records, then the sealing `end` record |
//!
//! The handshake **authenticates** the incoming header against the running
//! scenario: the protocol version, the trace version and the effective
//! scenario (ignoring `shards`, which never changes the result) must all
//! match, otherwise the server replies with a typed rejection and drops the
//! connection — the engine is never touched. A rejected or crashed client
//! therefore cannot perturb the other feeds.
//!
//! ## Reconnect and degradation
//!
//! A dropped connection **parks** its feed: the feed's ingest channel stays
//! open, so the engine blocks at the next round boundary (the merge
//! contract) while the client has [`ServeOptions::reconnect_timeout`] to
//! come back. A reconnecting client handshakes again under the same feed
//! name; the welcome carries `last_round` — the last round the server
//! admitted — and the client resumes streaming strictly after it, so the
//! run continues **byte-identical** to an uninterrupted one. When the
//! timeout expires the parked producer is dropped and the run degrades
//! exactly like any closed feed: the remaining rounds are event-free for
//! that feed and the run still completes.
//!
//! ## Determinism
//!
//! Feeds are admitted into the merge in handshake order, which is
//! nondeterministic under concurrent connects. Same-round batches coalesce
//! in admission order, so byte-identity across server runs requires that no
//! two feeds carry batches for the same round — exactly what the
//! round-interleaved `--stride N:I` partition of [`push_trace`] guarantees
//! (client `I` carries every `N`-th round record). Each connection's
//! [`ChannelMetrics`](lb_core::ingest::ChannelMetrics) roll up into
//! [`ScenarioOutcome::ingest`](crate::dynamic::ScenarioOutcome) as one merge
//! feed per connection, in admission order.

use crate::dynamic::{RoundSample, ScenarioOutcome, Session, DEFAULT_CHANNEL_CAPACITY};
use crate::error::BenchError;
use lb_analysis::Json;
use lb_core::discrete::RoundEvents;
use lb_core::ingest::merge::{FeedRegistrar, MergeSession};
use lb_core::ingest::{self, EventProducer};
use lb_proto::{ProtoError, Record};
use lb_workloads::{
    Checkpoint, ReadSource, RoundSource, Scenario, Trace, TraceWriter, TRACE_VERSION,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The handshake protocol version this module speaks and the only one it
/// accepts. The record types themselves live in [`lb_proto`]; this is the
/// ingest-handshake subset ([`lb_proto::PROTOCOL_V1`]).
pub const SERVE_PROTOCOL_VERSION: u64 = lb_proto::PROTOCOL_V1;

/// How often the accept loop polls for new connections, shutdown and
/// expired parked feeds.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Configuration of a [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to listen on: a TCP `host:port` (port 0 picks a free port;
    /// see [`ServeOptions::listen_info`]) or `unix:/path` on unix.
    pub listen: String,
    /// Completed handshakes to await before the engine starts (the CLI's
    /// `--clients`). Later connections still join as live feeds; this only
    /// gates the deterministic start.
    pub clients: usize,
    /// Replaces the spec's seed; authenticated clients must carry a trace
    /// recorded at the effective seed.
    pub seed: Option<u64>,
    /// Replaces the spec's shard count. Exempt from handshake
    /// authentication — shard count never changes the result.
    pub shards: Option<usize>,
    /// How long a dropped connection's feed stays parked awaiting a
    /// reconnect before the run degrades without it.
    pub reconnect_timeout: Duration,
    /// Record the applied (merged) event stream to this trace file.
    pub record: Option<PathBuf>,
    /// Write a one-line JSON `{"addr":…}` describing the bound address —
    /// the actual port when `listen` asked for port 0 — once the listener
    /// is up, so scripts can connect without racing the bind.
    pub listen_info: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".into(),
            clients: 1,
            seed: None,
            shards: None,
            reconnect_timeout: Duration::from_secs(5),
            record: None,
            listen_info: None,
        }
    }
}

/// Options of one [`push_trace`] client connection.
#[derive(Debug, Clone)]
pub struct PushOptions {
    /// Feed name the connection claims; one live connection per name.
    pub feed: String,
    /// `(n, i)`: carry only the round records whose index satisfies
    /// `index % n == i`. Clients `0..n` together carry the whole trace and
    /// never share a round, which is what makes the served run
    /// byte-identical for any admission order (see the module docs).
    pub stride: (usize, usize),
    /// Sleep this long **between** records (never after the last one), to
    /// pace a live feed.
    pub delay: Option<Duration>,
    /// Drop the connection (no `end` record) after sending this many round
    /// records — a deterministic stand-in for a crashed client in tests and
    /// CI.
    pub abort_after: Option<usize>,
}

impl PushOptions {
    /// A client pushing the whole trace as feed `name`.
    pub fn feed(name: impl Into<String>) -> Self {
        PushOptions {
            feed: name.into(),
            stride: (1, 0),
            delay: None,
            abort_after: None,
        }
    }
}

/// What one [`push_trace`] connection did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushReport {
    /// The `last_round` the welcome carried: `Some` when the server resumed
    /// this feed past an earlier connection's progress.
    pub resumed_after: Option<u64>,
    /// Round records actually sent (after stride and resume filtering).
    pub rounds_sent: u64,
    /// True when [`PushOptions::abort_after`] cut the stream (no `end`
    /// record was sent).
    pub aborted: bool,
}

// ---------------------------------------------------------------------------
// Address abstraction: TCP everywhere, unix:/path sockets on unix
// ---------------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// One accepted or dialed connection; `Read`/`Write` pass through to the
/// socket, `try_clone` splits it into read and write halves.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Listener {
    fn bind(addr: &str) -> Result<Self, BenchError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path)
                    .map(Listener::Unix)
                    .map_err(|e| BenchError::io(format!("binding {addr}: {e}")));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(BenchError::usage(format!(
                    "unix socket address {addr:?} is not supported on this platform"
                )));
            }
        }
        TcpListener::bind(addr)
            .map(Listener::Tcp)
            .map_err(|e| BenchError::io(format!("binding {addr}: {e}")))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (conn, _) = l.accept()?;
                conn.set_nonblocking(false)?;
                Ok(Conn::Tcp(conn))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (conn, _) = l.accept()?;
                conn.set_nonblocking(false)?;
                Ok(Conn::Unix(conn))
            }
        }
    }

    /// The address clients should dial: the actual TCP socket address
    /// (resolving a requested port 0), or the `unix:` form as requested.
    fn client_addr(&self, requested: &str) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| requested.to_string()),
            #[cfg(unix)]
            Listener::Unix(_) => requested.to_string(),
        }
    }
}

impl Conn {
    fn connect(addr: &str) -> Result<Self, BenchError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                return UnixStream::connect(path)
                    .map(Conn::Unix)
                    .map_err(|e| BenchError::io(format!("connecting {addr}: {e}")));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(BenchError::usage(format!(
                    "unix socket address {addr:?} is not supported on this platform"
                )));
            }
        }
        TcpStream::connect(addr)
            .map(Conn::Tcp)
            .map_err(|e| BenchError::io(format!("connecting {addr}: {e}")))
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Reads handshake lines off a connection while retaining whatever the
/// client sent beyond them, so the stream can be handed to [`ReadSource`]
/// without losing the over-read bytes.
struct LineScanner {
    inner: Conn,
    buf: Vec<u8>,
    pos: usize,
}

impl LineScanner {
    fn new(inner: Conn) -> Self {
        LineScanner {
            inner,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn read_line(&mut self) -> Result<String, String> {
        loop {
            if let Some(idx) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = &self.buf[self.pos..self.pos + idx];
                let text = std::str::from_utf8(line)
                    .map_err(|_| "handshake line is not valid UTF-8".to_string())?
                    .trim()
                    .to_string();
                self.pos += idx + 1;
                return Ok(text);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => return Err("connection closed during the handshake".into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("reading handshake: {e}")),
            }
        }
    }

    /// Splits into the over-read tail and the raw connection.
    fn into_parts(self) -> (Vec<u8>, Conn) {
        (self.buf[self.pos..].to_vec(), self.inner)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The lifecycle of one feed name on the server.
enum SlotState {
    /// A connection is streaming this feed right now.
    Active,
    /// The connection dropped mid-stream: the producer is kept alive — the
    /// engine blocks on the open feed — until a reconnect claims it or the
    /// deadline passes and the reaper drops it (degradation).
    Parked {
        producer: EventProducer,
        deadline: Instant,
    },
    /// The feed delivered its `end` record (or its reconnect window
    /// expired); further connections under this name are rejected.
    Finished,
}

struct FeedSlot {
    state: SlotState,
    /// Last round the server admitted from this feed; the welcome carries
    /// it so a reconnecting client resumes strictly after it.
    last_round: Option<u64>,
}

struct ServeCtx {
    scenario: Scenario,
    registrar: FeedRegistrar,
    slots: Mutex<HashMap<String, FeedSlot>>,
    /// Completed first-time handshakes, gating engine start.
    ready: Mutex<usize>,
    ready_cv: Condvar,
    reconnect_timeout: Duration,
    shutdown: AtomicBool,
}

/// Runs `scenario` as a socket service: binds [`ServeOptions::listen`],
/// waits for [`ServeOptions::clients`] authenticated producer connections,
/// then drives the engine from their merged streams (see the
/// [module docs](self) for the wire protocol, authentication, reconnect and
/// determinism contracts). Returns the same [`ScenarioOutcome`] a direct
/// [`Session`] run would produce — byte-identical to the sync run when the
/// connected clients together carry a trace recorded from the same
/// effective scenario.
///
/// # Errors
///
/// [`BenchError::Usage`] for invalid options or scenarios,
/// [`BenchError::Io`] for bind/accept failures, and everything
/// [`Session::run`] reports. Per-connection failures (authentication
/// rejections, dropped clients) are **not** errors of the serve run — they
/// degrade per the reconnect contract.
pub fn serve(
    scenario: &Scenario,
    options: &ServeOptions,
    on_sample: impl FnMut(&RoundSample),
) -> Result<ScenarioOutcome, BenchError> {
    if options.clients == 0 {
        return Err(BenchError::usage("serve needs at least one client"));
    }
    // The scenario the handshake authenticates against is the *effective*
    // one — the same overrides Session::run applies.
    let mut effective = scenario.clone();
    if let Some(seed) = options.seed {
        effective.seed = seed;
    }
    if let Some(shards) = options.shards {
        effective.shards = shards;
    }
    effective.validate().map_err(BenchError::Usage)?;

    let listener = Listener::bind(&options.listen)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| BenchError::io(format!("configuring listener: {e}")))?;
    let bound = listener.client_addr(&options.listen);
    if let Some(path) = &options.listen_info {
        let info = Json::obj([("addr", Json::from(bound.as_str()))]);
        lb_analysis::write_bytes_atomic(path, format!("{}\n", info.render()).as_bytes())
            .map_err(|e| BenchError::io(format!("writing {}: {e}", path.display())))?;
    }

    let (merge, registrar) = MergeSession::with_registrar();
    let ctx = Arc::new(ServeCtx {
        scenario: effective,
        registrar,
        slots: Mutex::new(HashMap::new()),
        ready: Mutex::new(0),
        ready_cv: Condvar::new(),
        reconnect_timeout: options.reconnect_timeout,
        shutdown: AtomicBool::new(false),
    });

    let accept_ctx = Arc::clone(&ctx);
    let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_ctx));

    // Gate the engine on the agreed number of handshakes, so the start is
    // deterministic no matter how the clients race their connects.
    {
        let mut ready = ctx.ready.lock().expect("ready lock");
        while *ready < options.clients {
            ready = ctx.ready_cv.wait(ready).expect("ready lock");
        }
    }

    let result = Session::from_scenario(scenario)
        .seed(options.seed)
        .shards(options.shards)
        .record(options.record.clone())
        .merged(merge)
        .run(on_sample);

    ctx.shutdown.store(true, Ordering::SeqCst);
    let _ = accept_thread.join();
    if let Some(path) = options.listen.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// Accepts connections until shutdown, handing each to its own handshake
/// thread; between accepts it reaps parked feeds whose reconnect window
/// expired (dropping the producer is what lets the blocked engine degrade
/// and move on).
fn accept_loop(listener: Listener, ctx: Arc<ServeCtx>) {
    let mut workers = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                let conn_ctx = Arc::clone(&ctx);
                workers.push(std::thread::spawn(move || {
                    handle_connection(conn, &conn_ctx)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_expired(&ctx);
                std::thread::park_timeout(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::park_timeout(ACCEPT_POLL),
        }
    }
    // Handshake threads block only on short socket reads from live
    // clients; a stuck pump cannot block shutdown because the engine side
    // is already gone — its sends fail immediately. Still, don't wait for
    // threads parked on a half-open handshake.
    for worker in workers {
        if worker.is_finished() {
            let _ = worker.join();
        }
    }
}

/// Drops the producers of parked feeds whose reconnect deadline passed,
/// turning the park into a normal closed-feed degradation.
fn reap_expired(ctx: &ServeCtx) {
    let now = Instant::now();
    let mut slots = ctx.slots.lock().expect("slots lock");
    for slot in slots.values_mut() {
        if matches!(&slot.state, SlotState::Parked { deadline, .. } if *deadline <= now) {
            // Replacing the state drops the parked producer: the channel
            // hangs up and the merge closes the feed.
            slot.state = SlotState::Finished;
        }
    }
}

/// The handshake outcome for one connection: the producer to pump into and
/// the round to resume after (a fresh feed resumes after nothing).
struct Admission {
    producer: EventProducer,
    last_round: Option<u64>,
    first_time: bool,
}

/// Claims `feed` under the slot lock: a new name registers a fresh merge
/// feed, a parked name hands back its producer, a busy or finished name is
/// refused.
fn admit(ctx: &ServeCtx, feed: &str) -> Result<Admission, String> {
    let mut slots = ctx.slots.lock().expect("slots lock");
    match slots.get_mut(feed) {
        None => {
            let (producer, consumer) = ingest::bounded(DEFAULT_CHANNEL_CAPACITY);
            ctx.registrar.register(consumer);
            slots.insert(
                feed.to_string(),
                FeedSlot {
                    state: SlotState::Active,
                    last_round: None,
                },
            );
            Ok(Admission {
                producer,
                last_round: None,
                first_time: true,
            })
        }
        Some(slot) => match std::mem::replace(&mut slot.state, SlotState::Active) {
            SlotState::Parked { producer, .. } => Ok(Admission {
                producer,
                last_round: slot.last_round,
                first_time: false,
            }),
            state @ SlotState::Active => {
                slot.state = state;
                Err(format!("feed {feed:?} is already connected"))
            }
            state @ SlotState::Finished => {
                slot.state = state;
                Err(format!("feed {feed:?} has already delivered its stream"))
            }
        },
    }
}

/// Validates the hello line, returning the feed name. Parsing goes through
/// [`lb_proto::Record`]; the version policy (v1 only) is enforced here.
fn check_hello(line: &str) -> Result<String, String> {
    let record = match Record::parse(line) {
        Ok(record) => record,
        Err(e @ ProtoError::Malformed { .. }) => return Err(format!("malformed hello: {e}")),
        Err(e) => return Err(e.to_string()),
    };
    let Record::Hello { version, feed } = record else {
        return Err("expected a hello record".into());
    };
    if version != SERVE_PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch: server speaks {SERVE_PROTOCOL_VERSION}, client sent {version}"
        ));
    }
    Ok(feed)
}

/// Authenticates the trace header line against the running scenario,
/// returning the client's embedded scenario on success.
fn check_header(line: &str, ours: &Scenario) -> Result<Scenario, String> {
    let record = match Record::parse(line) {
        Ok(record) => record,
        Err(e @ ProtoError::Malformed { .. }) => {
            return Err(format!("malformed trace header: {e}"))
        }
        Err(e) => return Err(e.to_string()),
    };
    let Record::Header { version, scenario } = record else {
        return Err("expected the trace header record".into());
    };
    if version != TRACE_VERSION {
        return Err(format!(
            "trace version mismatch: server reads {TRACE_VERSION}, client sent {version}"
        ));
    }
    let scenario = Scenario::from_json(&scenario)
        .map_err(|_| "trace header scenario does not parse".to_string())?;
    scenario
        .validate()
        .map_err(|e| format!("trace header scenario: {e}"))?;
    // Shards and federation never change the result, so a trace recorded at
    // any intra-process or inter-process parallelism is accepted; everything
    // else must match the effective scenario.
    let mut theirs = scenario.clone();
    theirs.shards = ours.shards;
    theirs.federation = ours.federation;
    if &theirs != ours {
        return Err(format!(
            "scenario mismatch: this server runs {:?} (seed {}), the header embeds {:?} (seed {})",
            ours.name, ours.seed, scenario.name, scenario.seed
        ));
    }
    Ok(scenario)
}

/// Runs one connection end to end: handshake, admission, welcome, then
/// pumping round batches into the feed's channel until the stream ends,
/// the client drops, or the engine finishes.
fn handle_connection(conn: Conn, ctx: &ServeCtx) {
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut scanner = LineScanner::new(conn);

    let admission = (|| {
        let feed = check_hello(&scanner.read_line()?)?;
        let scenario = check_header(&scanner.read_line()?, &ctx.scenario)?;
        let admission = admit(ctx, &feed)?;
        Ok::<_, String>((feed, scenario, admission))
    })();

    let (feed, scenario, admission) = match admission {
        Ok(parts) => parts,
        Err(reason) => {
            let reject = Record::Reject {
                version: SERVE_PROTOCOL_VERSION,
                error: reason,
            };
            let _ = writeln!(write_half, "{}", reject.render());
            let _ = write_half.flush();
            return;
        }
    };

    let welcome = Record::Welcome {
        version: SERVE_PROTOCOL_VERSION,
        feed: feed.clone(),
        last_round: admission.last_round,
    };
    if writeln!(write_half, "{}", welcome.render())
        .and_then(|()| write_half.flush())
        .is_err()
    {
        park(ctx, &feed, admission.producer, None);
        return;
    }

    if admission.first_time {
        let mut ready = ctx.ready.lock().expect("ready lock");
        *ready += 1;
        ctx.ready_cv.notify_all();
    }

    // The handshake may have over-read into the round records; chain the
    // tail back in front of the socket. The header was consumed during
    // authentication, so the source resumes headerless with fresh totals —
    // the client's own end record validates — while `last_round` keeps
    // rejecting replays of already-admitted rounds.
    let (leftover, read_half) = scanner.into_parts();
    let checkpoint = Checkpoint {
        offset: 0,
        lineno: 2,
        last_round: admission.last_round,
        rounds_seen: 0,
        events_seen: 0,
    };
    let reader = io::Cursor::new(leftover).chain(read_half);
    let source = match ReadSource::resume(reader, scenario, checkpoint) {
        Ok(source) => source,
        Err(_) => {
            park(ctx, &feed, admission.producer, None);
            return;
        }
    };
    pump(source, admission.producer, &feed, ctx);
}

/// Parks `producer` for a reconnect window (recording how far the feed
/// got), unless the slot has already moved on.
fn park(ctx: &ServeCtx, feed: &str, producer: EventProducer, last_round: Option<u64>) {
    let mut slots = ctx.slots.lock().expect("slots lock");
    if let Some(slot) = slots.get_mut(feed) {
        if let Some(round) = last_round {
            slot.last_round = Some(round);
        }
        slot.state = SlotState::Parked {
            producer,
            deadline: Instant::now() + ctx.reconnect_timeout,
        };
    }
}

/// Marks `feed` complete; dropping the producer (by not storing it) closes
/// the channel and the merge retires the feed cleanly.
fn finish_slot(ctx: &ServeCtx, feed: &str, last_round: Option<u64>) {
    let mut slots = ctx.slots.lock().expect("slots lock");
    if let Some(slot) = slots.get_mut(feed) {
        if last_round.is_some() {
            slot.last_round = last_round;
        }
        slot.state = SlotState::Finished;
    }
}

/// Forwards round batches from the connection's [`ReadSource`] into the
/// feed's ingest channel. A clean `end` record finishes the feed; a read
/// failure (dropped client, torn line) parks it for reconnect; a failed
/// send means the engine is done — the feed is finished so a late
/// reconnect is refused rather than parked forever.
fn pump<R: Read + Send>(
    mut source: ReadSource<R>,
    mut producer: EventProducer,
    feed: &str,
    ctx: &ServeCtx,
) {
    let mut spare: Option<RoundEvents> = None;
    loop {
        let mut batch = spare.take().unwrap_or_else(|| producer.buffer());
        match source.next_round(&mut batch) {
            Ok(Some(round)) => {
                if batch.is_empty() {
                    spare = Some(batch);
                } else if producer.send(round, batch).is_err() {
                    finish_slot(ctx, feed, source.checkpoint().last_round);
                    return;
                } else {
                    // Only admitted (sent) rounds advance the resume point.
                    let mut slots = ctx.slots.lock().expect("slots lock");
                    if let Some(slot) = slots.get_mut(feed) {
                        slot.last_round = Some(round);
                    }
                }
            }
            Ok(None) => {
                finish_slot(ctx, feed, source.checkpoint().last_round);
                return;
            }
            Err(_) => {
                park(ctx, feed, producer, source.checkpoint().last_round);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Connects to a [`serve`] instance at `addr` and streams `trace`'s round
/// records as one feed: hello, trace header, welcome, then every stride-
/// selected record strictly after the server's `last_round`, sealed with
/// the `end` record. This is the engine behind
/// `lb serve-trace <trace> --connect <addr>` and the reconnect path — a
/// client that reconnects after a drop is just `push_trace` again with the
/// same feed name.
///
/// # Errors
///
/// [`BenchError::Usage`] for an invalid stride, [`BenchError::Io`] for
/// connect/write failures, [`BenchError::Protocol`] when the server
/// rejects the handshake or replies out of protocol.
pub fn push_trace(
    addr: &str,
    trace: &Trace,
    options: &PushOptions,
) -> Result<PushReport, BenchError> {
    let (n, i) = options.stride;
    if n == 0 || i >= n {
        return Err(BenchError::usage(format!(
            "stride must be N:I with I < N, got {n}:{i}"
        )));
    }
    let conn = Conn::connect(addr)?;
    let mut write_half = conn
        .try_clone()
        .map_err(|e| BenchError::io(format!("splitting connection: {e}")))?;
    let hello = Record::Hello {
        version: SERVE_PROTOCOL_VERSION,
        feed: options.feed.clone(),
    };
    writeln!(write_half, "{}", hello.render())
        .and_then(|()| write_half.flush())
        .map_err(|e| BenchError::io(format!("sending hello: {e}")))?;
    let mut writer = TraceWriter::new(write_half, &trace.scenario).map_err(BenchError::Io)?;

    let mut scanner = LineScanner::new(conn);
    let reply = Record::parse(&scanner.read_line().map_err(BenchError::Protocol)?)
        .map_err(|e| BenchError::protocol(format!("malformed server reply: {e}")))?;
    let last_round = match reply {
        Record::Welcome { last_round, .. } => last_round,
        Record::Reject { error, .. } => {
            return Err(BenchError::protocol(format!(
                "server rejected feed {:?}: {error}",
                options.feed
            )));
        }
        _ => {
            return Err(BenchError::protocol(
                "server reply is neither welcome nor reject",
            ))
        }
    };

    let mut events = RoundEvents::default();
    let mut sent = 0u64;
    let mut first = true;
    for (index, record) in trace.rounds.iter().enumerate() {
        if index % n != i {
            continue;
        }
        if last_round.is_some_and(|last| record.round <= last) {
            continue;
        }
        if options.abort_after.is_some_and(|cap| sent >= cap as u64) {
            // Dropping the writer (and the connection with it) without the
            // end record is the point: it simulates a crashed client.
            return Ok(PushReport {
                resumed_after: last_round,
                rounds_sent: sent,
                aborted: true,
            });
        }
        if let Some(delay) = options.delay {
            if !first {
                std::thread::sleep(delay);
            }
        }
        first = false;
        record.fill(&mut events);
        writer
            .record_round(record.round, &events)
            .map_err(BenchError::Io)?;
        sent += 1;
    }
    writer.finish().map_err(BenchError::Io)?;
    Ok(PushReport {
        resumed_after: last_round,
        rounds_sent: sent,
        aborted: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_workloads::{
        AlgorithmSpec, ArrivalSpec, InitialSpec, ModelSpec, PadSpec, ServiceSpec, SpeedSpec,
        TokenDistribution, TopologySpec,
    };

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "serve_test".into(),
            seed: 5,
            rounds: 8,
            sample_every: 4,
            algorithm: AlgorithmSpec::Alg1,
            model: ModelSpec::Fos,
            topology: TopologySpec {
                family: "torus".into(),
                target_n: 16,
            },
            speeds: SpeedSpec::Uniform,
            initial: InitialSpec {
                distribution: TokenDistribution::SingleSource { source: 0 },
                tokens_per_node: 4,
                pad: PadSpec::Degree,
            },
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: 0.5,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
            shards: 1,
            federation: 1,
        }
    }

    #[test]
    fn hello_validation_catches_each_field() {
        assert!(check_hello(r#"{"kind":"hello","version":1,"feed":"a"}"#).is_ok());
        assert!(check_hello(r#"{"kind":"header","version":1,"feed":"a"}"#)
            .unwrap_err()
            .contains("hello"));
        assert!(check_hello(r#"{"kind":"hello","version":9,"feed":"a"}"#)
            .unwrap_err()
            .contains("version"));
        assert!(check_hello(r#"{"kind":"hello","version":1,"feed":""}"#)
            .unwrap_err()
            .contains("feed"));
    }

    #[test]
    fn stride_is_validated() {
        let trace = Trace {
            scenario: tiny_scenario(),
            rounds: Vec::new(),
        };
        let mut options = PushOptions::feed("a");
        options.stride = (2, 2);
        let err = push_trace("127.0.0.1:1", &trace, &options).unwrap_err();
        assert!(matches!(err, BenchError::Usage(_)), "{err}");
    }

    #[test]
    fn header_auth_matches_effective_scenario_ignoring_shards() {
        let ours = tiny_scenario();
        let header = |scenario: &Scenario| {
            Json::obj([
                ("kind", Json::from("header")),
                ("version", Json::from(TRACE_VERSION)),
                ("scenario", scenario.to_json()),
            ])
            .render()
        };
        assert!(check_header(&header(&ours), &ours).is_ok());
        let mut sharded = ours.clone();
        sharded.shards = 4;
        assert!(check_header(&header(&sharded), &ours).is_ok());
        let mut reseeded = ours.clone();
        reseeded.seed = 6;
        assert!(check_header(&header(&reseeded), &ours)
            .unwrap_err()
            .contains("scenario mismatch"));
        assert!(
            check_header(r#"{"kind":"header","version":9,"scenario":null}"#, &ours)
                .unwrap_err()
                .contains("version")
        );
    }
}
