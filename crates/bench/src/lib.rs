//! # lb-bench
//!
//! Experiment harness reproducing the evaluation artefacts of *"A Simple
//! Approach for Adapting Continuous Load Balancing Processes to Discrete
//! Settings"* (PODC 2012): the comparison Tables 1 and 2, the quantitative
//! bounds of Theorems 3 and 8, and several supporting ablations.
//!
//! * [`harness`] — graph classes, continuous models, discretizers and a
//!   uniform way to build and run any combination of them.
//! * [`experiments`] — one module per reproduced artefact (see the
//!   per-experiment index in DESIGN.md); each has a `run(quick)` entry point.
//!
//! Experiment binaries (`cargo run -p lb-bench --release --bin <name>`):
//! `table1`, `table2`, `theorem3`, `theorem8`, `trajectory`, `heterogeneous`,
//! `dummy_ablation`, `fos_vs_sos`. Criterion benches with the same names
//! exercise reduced configurations under `cargo bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod parallel;
