//! # lb-bench
//!
//! Experiment harness reproducing the evaluation artefacts of *"A Simple
//! Approach for Adapting Continuous Load Balancing Processes to Discrete
//! Settings"* (PODC 2012): the comparison Tables 1 and 2, the quantitative
//! bounds of Theorems 3 and 8, and several supporting ablations.
//!
//! * [`harness`] — graph classes, continuous models, discretizers and a
//!   uniform way to build and run any combination of them.
//! * [`experiments`] — one module per reproduced artefact (see the
//!   per-experiment index in DESIGN.md); each has a `run(quick)` entry point.
//! * [`dynamic`] — the scenario driver: binds a JSON
//!   [`Scenario`](lb_workloads::Scenario) (arrivals, completions, churn) to a
//!   dynamic flow-imitation engine with deterministic, streamable results.
//! * [`cli`] — the unified `lb` binary: `lb run <scenario.json>`,
//!   `lb table1 … lb dynamic_arrivals [--quick]`, `lb hotpath`, and the CI
//!   perf-regression gate `lb bench-check`.
//! * [`hotpath`] — the engine-vs-seed-semantics throughput benchmark behind
//!   `BENCH_hotpath.json`.
//!
//! The legacy per-experiment binaries (`cargo run -p lb-bench --release
//! --bin <name>`) are thin shims over the `lb` dispatch. Criterion benches
//! with the same names exercise reduced configurations under `cargo bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod dynamic;
pub mod experiments;
pub mod harness;
pub mod hotpath;
pub mod parallel;
