//! # lb-bench
//!
//! Experiment harness reproducing the evaluation artefacts of *"A Simple
//! Approach for Adapting Continuous Load Balancing Processes to Discrete
//! Settings"* (PODC 2012): the comparison Tables 1 and 2, the quantitative
//! bounds of Theorems 3 and 8, and several supporting ablations.
//!
//! * [`harness`] — graph classes, continuous models, discretizers and a
//!   uniform way to build and run any combination of them.
//! * [`experiments`] — one module per reproduced artefact (see the
//!   per-experiment index in DESIGN.md); each has a `run(quick)` entry point.
//! * [`dynamic`] — the scenario driver: binds a JSON
//!   [`Scenario`](lb_workloads::Scenario) (arrivals, completions, churn) to a
//!   dynamic flow-imitation engine with deterministic, streamable results.
//!   Every way of driving a run goes through one builder,
//!   [`dynamic::Session`].
//! * [`serve`] — the socket service front-end behind `lb serve`: an accept
//!   loop feeding authenticated trace-streaming connections into one live
//!   engine as merge feeds, with reconnect-and-resume.
//! * [`error`] — the typed failure surface ([`error::BenchError`]) mapping
//!   failure classes to distinct process exit codes.
//! * [`cli`] — the unified `lb` binary: `lb run <scenario.json>`,
//!   `lb serve`, `lb table1 … lb dynamic_arrivals [--quick]`, `lb hotpath`,
//!   the CI perf-regression gate `lb bench-check`, and the static-analysis
//!   pass `lb lint` (rules R01–R06 from the `lb-lint` crate: determinism,
//!   checked narrowing, typed errors, atomic artefacts, zero-alloc hot
//!   paths, no deprecated driver calls; exit 0 clean / 1 findings).
//! * [`hotpath`] — the engine-vs-seed-semantics throughput benchmark behind
//!   `BENCH_hotpath.json`.
//!
//! The legacy per-experiment binaries (`cargo run -p lb-bench --release
//! --bin <name>`) are thin shims over the `lb` dispatch. Criterion benches
//! with the same names exercise reduced configurations under `cargo bench`.
//!
//! ## The `Session` driver API
//!
//! [`dynamic::Session`] is the single entry point for running, replaying
//! and resuming scenarios; the former free functions (`run_scenario`,
//! `run_scenario_with`, `replay_trace`, `replay_source`, `resume_run`,
//! `resume_replay`) remain as thin deprecated shims. Migration is
//! mechanical:
//!
//! | deprecated call | `Session` form |
//! |---|---|
//! | `run_scenario(&s, seed, shards, cb)` | `Session::from_scenario(&s).seed(seed).shards(shards).run(cb)` |
//! | `run_scenario_with(&s, &opts, cb)` | `Session::from_scenario(&s).producer(p).record(r).checkpoint(c, n).run(cb)` |
//! | `replay_trace(t, shards, cb)` | `Session::from_trace(t).shards(shards).run(cb)` |
//! | `replay_source(src, shards, cb)` | `Session::from_stream(src).shards(shards).run(cb)` |
//! | `resume_run(snap, &opts, cb)` | `Session::from_snapshot(snap).producer(p).record(r).run(cb)` |
//! | `resume_replay(snap, src, shards, cb)` | `Session::from_snapshot(snap).stream(src).shards(shards).run(cb)` |
//!
//! `Session::run` reports failures as a typed [`error::BenchError`] (the
//! shims stringify it, preserving their old `Result<_, String>` contract).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod dynamic;
pub mod error;
pub mod experiments;
pub mod federate;
pub mod harness;
pub mod hotpath;
pub mod parallel;
pub mod serve;
