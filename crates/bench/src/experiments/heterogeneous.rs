//! Experiment E6 — the paper's general model: heterogeneous node speeds and
//! weighted tasks.
//!
//! Prior work (Tables 1 and 2) is stated for uniform tasks and speeds; the
//! paper's contribution covers weighted tasks and speeds with the same
//! `2·d·w_max + 2` bound. This experiment measures Algorithm 1 and Algorithm
//! 2 (tokens only) under heterogeneous speeds, and Algorithm 1 under weighted
//! tasks, against the round-down baseline.

use super::ExperimentReport;
use crate::harness::{measure_balancing_time, run_once, ContinuousModel, Discretizer, RunConfig};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds};
use lb_graph::{generators, AlphaScheme, Graph};
use lb_workloads::{pad_for_min_load, weighted_load, SpeedModel, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs the experiment. `quick` shrinks the instance for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let side = if quick { 6 } else { 24 };
    let graph: Arc<Graph> = generators::torus(side, side).expect("torus builds").into();
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let mut rng = StdRng::seed_from_u64(31);

    let mut record = ExperimentRecord::new(
        "E6-heterogeneous",
        "General model (speeds + weighted tasks)",
        format!(
            "Torus {side}x{side}: (a) heterogeneous speeds (powers of two) with unit tokens, \
             comparing alg1/alg2/round-down; (b) weighted tasks (w_max = 4) with uniform speeds, \
             alg1 vs its 2*d*w_max + 2 bound."
        ),
    );
    let mut table = Table::new(vec![
        "setting".into(),
        "algorithm".into(),
        "max-min".into(),
        "max-avg".into(),
        "bound".into(),
    ]);

    // ---- (a) heterogeneous speeds, unit tokens ----
    let speeds = SpeedModel::PowersOfTwo { classes: 3 }.generate(n, &mut rng);
    let mut counts = vec![0u64; n];
    counts[0] = 40 * speeds.total();
    let base = InitialLoad::from_token_counts(counts);
    let initial = pad_for_min_load(&base, &speeds, d);
    let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 100_000)
        .expect("FOS constructs")
        .rounds();
    for discretizer in [Discretizer::Alg1, Discretizer::Alg2, Discretizer::RoundDown] {
        let outcome = run_once(&RunConfig {
            graph: graph.clone(),
            speeds: speeds.clone(),
            initial: initial.clone(),
            model: ContinuousModel::Fos,
            discretizer,
            rounds: t,
            seed: 9,
        })
        .expect("supported combination");
        let bound = match discretizer {
            Discretizer::Alg1 => format_value(2.0 * d as f64 + 2.0),
            _ => "-".to_string(),
        };
        table.add_row(vec![
            "speeds 1/2/4, tokens".into(),
            discretizer.label().to_string(),
            format_value(outcome.max_min),
            format_value(outcome.max_avg),
            bound,
        ]);
        record.push(Measurement {
            algorithm: discretizer.label().to_string(),
            graph: format!("torus({side}x{side}) speeds=1/2/4"),
            nodes: n,
            max_degree: d as usize,
            rounds: t,
            max_min: Summary::of(&[outcome.max_min]),
            max_avg: Summary::of(&[outcome.max_avg]),
            notes: vec![("setting".into(), "heterogeneous speeds".into())],
        });
    }

    // ---- (b) weighted tasks, uniform speeds (Algorithm 1 only; the
    // baselines and Algorithm 2 are token-only) ----
    let w_max = 4u64;
    let uniform_speeds = Speeds::uniform(n);
    let mut per_node = vec![0u64; n];
    per_node[0] = 30 * n as u64 / 4;
    let weighted = weighted_load(&per_node, WeightModel::UniformRange { w_max }, &mut rng);
    let weighted = pad_for_min_load(&weighted, &uniform_speeds, d * w_max);
    let t_w = measure_balancing_time(
        &graph,
        &uniform_speeds,
        &weighted,
        ContinuousModel::Fos,
        100_000,
    )
    .expect("FOS constructs")
    .rounds();
    let fos = Fos::new(
        graph.clone(),
        &uniform_speeds,
        AlphaScheme::MaxDegreePlusOne,
    )
    .expect("FOS constructs");
    let mut alg1 = FlowImitation::new(fos, &weighted, uniform_speeds.clone(), TaskPicker::Fifo)
        .expect("dimensions agree");
    alg1.run(t_w);
    let m = alg1.metrics();
    let bound = 2.0 * d as f64 * weighted.max_weight() as f64 + 2.0;
    table.add_row(vec![
        format!("weighted tasks w_max={}", weighted.max_weight()),
        "alg1 (this paper)".into(),
        format_value(m.max_min),
        format_value(m.max_avg),
        format_value(bound),
    ]);
    record.push(Measurement {
        algorithm: "alg1(fos)".into(),
        graph: format!("torus({side}x{side}) weighted"),
        nodes: n,
        max_degree: d as usize,
        rounds: t_w,
        max_min: Summary::of(&[m.max_min]),
        max_avg: Summary::of(&[m.max_avg]),
        notes: vec![
            ("setting".into(), "weighted tasks".into()),
            ("w_max".into(), weighted.max_weight().to_string()),
            ("bound".into(), format_value(bound)),
            ("dummies".into(), alg1.dummy_created().to_string()),
        ],
    });

    let markdown = format!(
        "# E6 — Heterogeneous speeds and weighted tasks (torus {side}x{side})\n\n{}\n\
         Algorithm 1's bound 2·d·w_max + 2 is independent of the speed profile and of n; \
         the baselines are only defined for tokens and have no comparable guarantee with speeds.\n",
        table.render()
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_bound_holds_in_both_settings() {
        let report = run(true);
        for m in &report.record.measurements {
            if m.algorithm.starts_with("alg1") {
                let w_max: f64 = m
                    .notes
                    .iter()
                    .find(|(k, _)| k == "w_max")
                    .and_then(|(_, v)| v.parse().ok())
                    .unwrap_or(1.0);
                let bound = 2.0 * m.max_degree as f64 * w_max + 2.0;
                assert!(
                    m.max_min.max <= bound + 1e-9,
                    "{}: {} > {}",
                    m.graph,
                    m.max_min.max,
                    bound
                );
            }
        }
    }
}
