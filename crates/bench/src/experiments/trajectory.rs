//! Experiment E5 — discrepancy-vs-round trajectories ("figure-style" series).
//!
//! The paper has no plots, but its central argument is that the discrete
//! flow-imitation process shadows the continuous process round by round. This
//! experiment records the max-min discrepancy over time for the continuous
//! FOS process, Algorithm 1, Algorithm 2 and the round-down baseline on the
//! same instance, producing the series a figure would show.

use super::ExperimentReport;
use crate::harness::{
    build_balancer, measure_balancing_time, standard_initial_load, ContinuousModel, Discretizer,
    GraphClass, RunConfig,
};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::continuous::{ContinuousRunner, Fos};
use lb_core::{metrics, Speeds};
use lb_graph::AlphaScheme;

/// Runs the experiment. `quick` shrinks the instance for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let target_n = if quick { 64 } else { 1024 };
    let samples = 12usize;

    let graph: std::sync::Arc<lb_graph::Graph> = GraphClass::Torus
        .build(target_n, 5)
        .expect("torus builds")
        .into();
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let speeds = Speeds::uniform(n);
    let initial = standard_initial_load(n, 32, d);
    let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 60_000)
        .expect("FOS constructs")
        .rounds()
        .max(samples);
    let stride = (t / samples).max(1);

    // Continuous reference trajectory.
    let fos =
        Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne).expect("FOS constructs");
    let mut continuous = ContinuousRunner::new(fos, initial.load_vector_f64());

    // Discrete processes under comparison.
    let mk = |discretizer| {
        build_balancer(&RunConfig {
            graph: graph.clone(),
            speeds: speeds.clone(),
            initial: initial.clone(),
            model: ContinuousModel::Fos,
            discretizer,
            rounds: t,
            seed: 3,
        })
        .expect("supported combination")
    };
    let mut alg1 = mk(Discretizer::Alg1);
    let mut alg2 = mk(Discretizer::Alg2);
    let mut round_down = mk(Discretizer::RoundDown);

    let mut table = Table::new(vec![
        "round".into(),
        "continuous".into(),
        "alg1".into(),
        "alg2".into(),
        "round-down".into(),
    ]);
    let mut record = ExperimentRecord::new(
        "E5-trajectory",
        "Flow-imitation shadowing (figure-style series)",
        format!(
            "Max-min discrepancy over time on {} (n = {n}), FOS model, single-source workload; \
             continuous process vs Algorithm 1, Algorithm 2 and round-down.",
            graph.name()
        ),
    );

    let mut round = 0usize;
    loop {
        let cont_disc = metrics::max_min_discrepancy(continuous.loads(), &speeds);
        let row = [
            cont_disc,
            alg1.metrics().max_min,
            alg2.metrics().max_min,
            round_down.metrics().max_min,
        ];
        table.add_row(vec![
            round.to_string(),
            format_value(row[0]),
            format_value(row[1]),
            format_value(row[2]),
            format_value(row[3]),
        ]);
        for (name, value) in [
            ("continuous(fos)", row[0]),
            ("alg1(fos)", row[1]),
            ("alg2(fos)", row[2]),
            ("round_down", row[3]),
        ] {
            record.push(Measurement {
                algorithm: name.into(),
                graph: graph.name().to_string(),
                nodes: n,
                max_degree: d as usize,
                rounds: round,
                max_min: Summary::of(&[value]),
                max_avg: Summary::of(&[value]),
                notes: vec![("series".into(), "max_min_vs_round".into())],
            });
        }
        if round >= t {
            break;
        }
        let next = (round + stride).min(t);
        for _ in round..next {
            continuous.step();
            alg1.step();
            alg2.step();
            round_down.step();
        }
        round = next;
    }

    let markdown = format!(
        "# E5 — Discrepancy vs round ({} , n = {n}, T = {t})\n\n{}\n\
         Algorithm 1 and 2 should track the continuous curve within an additive O(d) / \
         O(sqrt(d log n)) band, while round-down plateaus at a higher residual discrepancy.\n",
        graph.name(),
        table.render()
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_is_monotone_ish_and_alg1_tracks_continuous() {
        let report = run(true);
        // Final alg1 value must be close to the final continuous value.
        let finals: Vec<&Measurement> = report
            .record
            .measurements
            .iter()
            .filter(|m| m.rounds == report.record.measurements.last().unwrap().rounds)
            .collect();
        let get = |name: &str| {
            finals
                .iter()
                .find(|m| m.algorithm == name)
                .map(|m| m.max_min.mean)
                .expect("series present")
        };
        let continuous = get("continuous(fos)");
        let alg1 = get("alg1(fos)");
        let d = finals[0].max_degree as f64;
        assert!(alg1 <= continuous + 2.0 * d + 2.0 + 1e-9);
    }
}
