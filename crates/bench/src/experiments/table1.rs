//! Experiment E1 — reproduces **Table 1**: final max-min discrepancy of the
//! discrete diffusion processes on the four graph classes.
//!
//! The paper's Table 1 lists asymptotic bounds; this experiment measures the
//! empirical final discrepancy of every algorithm at the continuous balancing
//! time `T` and checks the qualitative ordering the table asserts:
//! Algorithm 1 stays `O(d)` (independent of `n` and of expansion), Algorithm
//! 2 stays `O(√(d·log n))`, while the round-down baseline degrades on
//! low-expansion / large-diameter families.

use super::{ExperimentReport, REPEAT_SEEDS};
use crate::harness::{
    measure_balancing_time, run_all, standard_initial_load, ContinuousModel, Discretizer,
    GraphClass, RunConfig,
};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::Speeds;

/// Average tokens per node in the workload (all initially on node 0).
const LOAD_PER_NODE: u64 = 32;
/// Cap on the continuous balancing-time search.
const MAX_T: usize = 60_000;

/// Runs the experiment. `quick` shrinks graphs and repeats for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let sizes: &[usize] = if quick { &[64] } else { &[256, 1024] };
    let repeats = if quick { 1 } else { 3 };

    let mut record = ExperimentRecord::new(
        "E1-table1",
        "Table 1",
        "Final max-min discrepancy of discrete diffusion processes (FOS model), \
         single-source workload of 32 tokens/node plus d tokens/node padding, measured at the \
         continuous balancing time T.",
    );
    let mut markdown = String::from("# E1 — Table 1 (diffusion model)\n\n");

    for &n in sizes {
        let mut table = Table::new({
            let mut header = vec!["algorithm".to_string()];
            header.extend(
                GraphClass::TABLE_CLASSES
                    .iter()
                    .map(|c| format!("{} (max-min)", c.label())),
            );
            header
        });

        // Build one graph per class and reuse it for every algorithm so the
        // comparison matches the paper's "same instance" setting.
        let mut columns = Vec::new();
        for class in GraphClass::TABLE_CLASSES {
            let graph: std::sync::Arc<lb_graph::Graph> = class
                .build(n, 0xC0FFEE)
                .expect("table graph families always build")
                .into();
            let nodes = graph.node_count();
            let d = graph.max_degree();
            let speeds = Speeds::uniform(nodes);
            let initial = standard_initial_load(nodes, LOAD_PER_NODE, d as u64);
            let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, MAX_T)
                .expect("FOS always constructs")
                .rounds();
            columns.push((class, graph, speeds, initial, t));
        }

        // Every (algorithm, class, seed) trial of this size is independent;
        // fan the whole batch out across worker threads. Cloning a config is
        // cheap — the graph is shared through an Arc.
        let mut batch = Vec::new();
        for discretizer in Discretizer::TABLE1 {
            for (_, graph, speeds, initial, t) in &columns {
                for seed in REPEAT_SEEDS.iter().take(repeats) {
                    batch.push(RunConfig {
                        graph: graph.clone(),
                        speeds: speeds.clone(),
                        initial: initial.clone(),
                        model: ContinuousModel::Fos,
                        discretizer,
                        rounds: *t,
                        seed: *seed,
                    });
                }
            }
        }
        let mut outcomes = run_all(&batch).into_iter();

        for discretizer in Discretizer::TABLE1 {
            let mut row = vec![discretizer.label().to_string()];
            for (class, graph, _, _, t) in &columns {
                let mut max_mins = Vec::new();
                let mut max_avgs = Vec::new();
                for _ in 0..repeats {
                    let outcome = outcomes
                        .next()
                        .expect("one outcome per scheduled trial")
                        .expect("table 1 combinations are all supported");
                    max_mins.push(outcome.max_min);
                    max_avgs.push(outcome.max_avg);
                }
                let summary = Summary::of(&max_mins);
                row.push(format_value(summary.mean));
                record.push(Measurement {
                    algorithm: discretizer.label().to_string(),
                    graph: format!("{} n={}", class.label(), graph.node_count()),
                    nodes: graph.node_count(),
                    max_degree: graph.max_degree(),
                    rounds: *t,
                    max_min: summary,
                    max_avg: Summary::of(&max_avgs),
                    notes: vec![("model".into(), "fos".into())],
                });
            }
            table.add_row(row);
        }

        markdown.push_str(&format!(
            "## n ≈ {n} (T = continuous FOS balancing time per column)\n\n{}\n",
            table.render()
        ));
    }

    markdown.push_str(
        "\nPaper reference (Table 1, asymptotic): alg1 = O(d); alg2 = O(sqrt(d log n)); \
         round-down [37] = O(d log n / (1 - lambda)); randomized rounding [26] = O(d log log n / (1 - lambda)); \
         quasirandom [26] analysed for hypercube/torus only; excess token [9] = O(d sqrt(log n) + ...).\n",
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_rows() {
        let report = run(true);
        // 6 algorithms x 4 graph classes x 1 size.
        assert_eq!(report.record.measurements.len(), 24);
        assert!(report.markdown.contains("alg1 (this paper)"));
        assert!(report.markdown.contains("hypercube"));
    }

    #[test]
    fn alg1_discrepancy_is_within_theorem_bound_in_quick_run() {
        let report = run(true);
        for m in &report.record.measurements {
            if m.algorithm.starts_with("alg1") {
                let bound = 2.0 * m.max_degree as f64 + 2.0;
                assert!(
                    m.max_min.max <= bound + 1e-9,
                    "{}: {} > {}",
                    m.graph,
                    m.max_min.max,
                    bound
                );
            }
        }
    }
}
