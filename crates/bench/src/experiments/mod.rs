//! One module per reproduced paper artefact (see the per-experiment index in
//! DESIGN.md).
//!
//! Every experiment exposes `run(quick) -> ExperimentReport`; `quick = true`
//! shrinks sizes and repeat counts so the same code path can be exercised by
//! unit tests and Criterion benches, while the experiment binaries run the
//! full configuration and write the JSON record used by EXPERIMENTS.md.

pub mod dummy_ablation;
pub mod dynamic_arrivals;
pub mod fos_vs_sos;
pub mod heterogeneous;
pub mod table1;
pub mod table2;
pub mod theorem3;
pub mod theorem8;
pub mod trajectory;

use lb_analysis::ExperimentRecord;
use std::path::PathBuf;

/// The rendered output of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Markdown report printed to stdout by the experiment binary.
    pub markdown: String,
    /// Machine-readable record written under `target/experiments/`.
    pub record: ExperimentRecord,
}

impl ExperimentReport {
    /// Prints the Markdown report and writes the JSON record to
    /// `target/experiments/`, returning the path written (if the write
    /// succeeded).
    pub fn emit(&self) -> Option<PathBuf> {
        println!("{}", self.markdown);
        match self.record.write_to_dir("target/experiments") {
            Ok(path) => {
                println!("(record written to {})", path.display());
                Some(path)
            }
            Err(err) => {
                eprintln!("warning: could not write experiment record: {err}");
                None
            }
        }
    }
}

/// Seeds used for repeated runs; experiments index into this list so repeat
/// counts stay consistent across experiments.
pub(crate) const REPEAT_SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment must complete in quick mode and produce a non-empty
    /// report with at least one measurement.
    #[test]
    fn all_experiments_run_in_quick_mode() {
        let reports = vec![
            ("table1", table1::run(true)),
            ("table2", table2::run(true)),
            ("theorem3", theorem3::run(true)),
            ("theorem8", theorem8::run(true)),
            ("trajectory", trajectory::run(true)),
            ("heterogeneous", heterogeneous::run(true)),
            ("dummy_ablation", dummy_ablation::run(true)),
            ("fos_vs_sos", fos_vs_sos::run(true)),
            ("dynamic_arrivals", dynamic_arrivals::run(true)),
        ];
        for (name, report) in reports {
            assert!(!report.markdown.is_empty(), "{name} produced no markdown");
            assert!(
                !report.record.measurements.is_empty(),
                "{name} produced no measurements"
            );
        }
    }
}
