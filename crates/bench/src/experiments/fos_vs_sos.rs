//! Experiment E8 — FOS vs SOS convergence (Section 2.1).
//!
//! The second-order scheme with the optimal `β` balances in
//! `O(log(Kn)/√(1 − λ))` rounds versus FOS's `O(log(Kn)/(1 − λ))`, a
//! quadratic speed-up that matters exactly on the poorly-expanding graphs
//! (cycles, tori). This experiment measures the balancing time of both
//! continuous schemes and confirms Algorithm 1's discrepancy bound is
//! unaffected by which of the two it imitates.

use super::ExperimentReport;
use crate::harness::{measure_balancing_time, run_once, ContinuousModel, Discretizer, RunConfig};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::Speeds;
use lb_graph::{generators, AlphaScheme, DiffusionMatrix, Graph, PowerIterationOptions};
use std::sync::Arc;

/// Runs the experiment. `quick` shrinks the instances for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let configs: Vec<(String, Arc<Graph>)> = if quick {
        vec![
            (
                "cycle".into(),
                generators::cycle(32).expect("cycle builds").into(),
            ),
            (
                "torus".into(),
                generators::torus(6, 6).expect("torus builds").into(),
            ),
        ]
    } else {
        vec![
            (
                "cycle".into(),
                generators::cycle(256).expect("cycle builds").into(),
            ),
            (
                "torus".into(),
                generators::torus(24, 24).expect("torus builds").into(),
            ),
            (
                "hypercube".into(),
                generators::hypercube(10).expect("hypercube builds").into(),
            ),
        ]
    };

    let mut record = ExperimentRecord::new(
        "E8-fos-vs-sos",
        "Section 2.1 (FOS vs SOS convergence)",
        "Continuous balancing time T of FOS vs SOS (optimal beta) on low-expansion graphs, \
         plus the final discrepancy of Algorithm 1 imitating each.",
    );
    let mut table = Table::new(vec![
        "graph".into(),
        "n".into(),
        "lambda".into(),
        "T (FOS)".into(),
        "T (SOS)".into(),
        "speedup".into(),
        "alg1@FOS max-min".into(),
        "alg1@SOS max-min".into(),
    ]);

    for (label, graph) in configs {
        let n = graph.node_count();
        let d = graph.max_degree() as u64;
        let speeds = Speeds::uniform(n);
        let matrix =
            DiffusionMatrix::uniform(&graph, AlphaScheme::MaxDegreePlusOne).expect("matrix builds");
        let lambda = lb_graph::spectral::second_eigenvalue(
            &graph,
            &matrix,
            PowerIterationOptions::default(),
        );
        let initial = crate::harness::standard_initial_load(n, 32, d);
        let max_rounds = if quick { 100_000 } else { 400_000 };
        let t_fos =
            measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, max_rounds)
                .expect("FOS constructs")
                .rounds();
        let t_sos =
            measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Sos, max_rounds)
                .expect("SOS constructs")
                .rounds();

        let run_alg1 = |model, rounds| {
            run_once(&RunConfig {
                graph: graph.clone(),
                speeds: speeds.clone(),
                initial: initial.clone(),
                model,
                discretizer: Discretizer::Alg1,
                rounds,
                seed: 1,
            })
            .expect("supported combination")
        };
        let alg1_fos = run_alg1(ContinuousModel::Fos, t_fos);
        let alg1_sos = run_alg1(ContinuousModel::Sos, t_sos);

        table.add_row(vec![
            label.clone(),
            n.to_string(),
            format!("{lambda:.4}"),
            t_fos.to_string(),
            t_sos.to_string(),
            format_value(t_fos as f64 / t_sos.max(1) as f64),
            format_value(alg1_fos.max_min),
            format_value(alg1_sos.max_min),
        ]);
        for (model_name, t, outcome) in [("fos", t_fos, &alg1_fos), ("sos", t_sos, &alg1_sos)] {
            record.push(Measurement {
                algorithm: format!("alg1({model_name})"),
                graph: format!("{label} n={n}"),
                nodes: n,
                max_degree: d as usize,
                rounds: t,
                max_min: Summary::of(&[outcome.max_min]),
                max_avg: Summary::of(&[outcome.max_avg]),
                notes: vec![
                    ("lambda".into(), format!("{lambda:.4}")),
                    ("T".into(), t.to_string()),
                ],
            });
        }
    }

    let markdown = format!(
        "# E8 — FOS vs SOS balancing time and Algorithm 1 discrepancy\n\n{}\n\
         SOS should show a clear speed-up on the cycle and torus (where lambda is close to 1); \
         the discrepancy of Algorithm 1 stays within 2·d·w_max + 2 regardless of which continuous \
         process it imitates — note that SOS may induce negative load, in which case only the \
         max-avg part of Theorem 3 is guaranteed.\n",
        table.render()
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sos_is_not_slower_than_fos_on_cycle() {
        let report = run(true);
        let t_of = |alg: &str, graph_prefix: &str| {
            report
                .record
                .measurements
                .iter()
                .find(|m| m.algorithm == alg && m.graph.starts_with(graph_prefix))
                .map(|m| m.rounds)
                .expect("measurement present")
        };
        assert!(t_of("alg1(sos)", "cycle") <= t_of("alg1(fos)", "cycle"));
    }
}
