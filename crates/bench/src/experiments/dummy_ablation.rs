//! Experiment E7 — ablation of the sufficient-initial-load condition
//! (Lemma 7 / Theorem 3(2)).
//!
//! Algorithm 1 never touches its infinite source when every node starts with
//! at least `d·w_max·s_i` load. This experiment scales the per-node padding
//! from 0 to 2× that threshold on a low-expansion barbell graph (where flows
//! through the bridge are most likely to drain nodes) and records how many
//! dummy tokens were created and what the final discrepancy was.

use super::ExperimentReport;
use crate::harness::{measure_balancing_time, ContinuousModel};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds};
use lb_graph::{generators, AlphaScheme, Graph};
use std::sync::Arc;

/// Runs the experiment. `quick` shrinks the instance for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let clique = if quick { 6 } else { 16 };
    let bridge = if quick { 4 } else { 16 };
    let graph: Arc<Graph> = generators::barbell(clique, bridge)
        .expect("barbell builds")
        .into();
    let n = graph.node_count();
    let d = graph.max_degree() as u64;
    let speeds = Speeds::uniform(n);

    // Padding levels as a fraction of the d·w_max threshold (w_max = 1).
    let levels: &[(f64, &str)] = &[
        (0.0, "0"),
        (0.5, "d/2"),
        (1.0, "d (threshold)"),
        (2.0, "2d"),
    ];

    let mut record = ExperimentRecord::new(
        "E7-dummy-ablation",
        "Lemma 7 / Theorem 3(2) ablation",
        format!(
            "Algorithm 1 (FOS) on barbell({clique},{bridge}): dummy-token usage and final \
             discrepancy as the per-node initial padding is scaled across the d*w_max threshold."
        ),
    );
    let mut table = Table::new(vec![
        "padding per node".into(),
        "dummies created".into(),
        "max-min".into(),
        "max-avg".into(),
        "real max-avg".into(),
    ]);

    for &(factor, label) in levels {
        let pad = (factor * d as f64).round() as u64;
        let mut counts = vec![pad; n];
        counts[0] += 40 * n as u64;
        let initial = InitialLoad::from_token_counts(counts);
        let original_avg = initial.total_weight() as f64 / n as f64;
        let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 200_000)
            .expect("FOS constructs")
            .rounds();
        let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne)
            .expect("FOS constructs");
        let mut alg1 =
            FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo).expect("valid");
        alg1.run(t);
        let m = alg1.metrics();
        let real = alg1.real_loads();
        let real_max_avg = lb_core::metrics::max_makespan(&real, &speeds) - original_avg;
        table.add_row(vec![
            label.to_string(),
            alg1.dummy_created().to_string(),
            format_value(m.max_min),
            format_value(m.max_avg),
            format_value(real_max_avg),
        ]);
        record.push(Measurement {
            algorithm: "alg1(fos)".into(),
            graph: graph.name().to_string(),
            nodes: n,
            max_degree: d as usize,
            rounds: t,
            max_min: Summary::of(&[m.max_min]),
            max_avg: Summary::of(&[m.max_avg]),
            notes: vec![
                ("padding".into(), label.to_string()),
                ("dummies".into(), alg1.dummy_created().to_string()),
                ("real_max_avg".into(), format_value(real_max_avg)),
            ],
        });
    }

    let markdown = format!(
        "# E7 — Infinite-source ablation (Algorithm 1, FOS on {})\n\n{}\n\
         At or above the d·w_max threshold the `dummies created` column must be exactly 0 \
         (Lemma 7); below it the algorithm may borrow dummy tokens but the real-load max-avg \
         discrepancy stays within 2·d·w_max + 2.\n",
        graph.name(),
        table.render()
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_dummies_at_or_above_threshold() {
        let report = run(true);
        for m in &report.record.measurements {
            let padding = m
                .notes
                .iter()
                .find(|(k, _)| k == "padding")
                .map(|(_, v)| v.clone())
                .expect("padding note");
            let dummies: u64 = m
                .notes
                .iter()
                .find(|(k, _)| k == "dummies")
                .and_then(|(_, v)| v.parse().ok())
                .expect("dummies note");
            if padding.contains("threshold") || padding == "2d" {
                assert_eq!(dummies, 0, "padding {padding} must not need dummies");
            }
        }
    }
}
