//! Experiment E2 — reproduces **Table 2**: final max-min discrepancy of the
//! discrete processes in the matching models (periodic matchings and random
//! matchings) on the four graph classes.

use super::{ExperimentReport, REPEAT_SEEDS};
use crate::harness::{
    measure_balancing_time, run_all, standard_initial_load, ContinuousModel, Discretizer,
    GraphClass, RunConfig,
};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::Speeds;

/// Average tokens per node in the workload (all initially on node 0).
const LOAD_PER_NODE: u64 = 32;
/// Cap on the continuous balancing-time search (matching models need more
/// rounds than diffusion since only a matching is active per round).
const MAX_T: usize = 200_000;

/// Runs the experiment. `quick` shrinks graphs and repeats for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 64 } else { 1024 };
    let repeats = if quick { 1 } else { 3 };

    let mut record = ExperimentRecord::new(
        "E2-table2",
        "Table 2",
        "Final max-min discrepancy of discrete processes in the matching models \
         (periodic matchings from a greedy edge colouring, and random maximal matchings), \
         single-source workload of 32 tokens/node plus d tokens/node padding, measured at the \
         continuous balancing time T of the respective matching model.",
    );
    let mut markdown = String::from("# E2 — Table 2 (matching models)\n\n");

    for (model_label, model) in [
        ("periodic matchings", ContinuousModel::PeriodicMatching),
        (
            "random matchings",
            ContinuousModel::RandomMatching { seed: 777 },
        ),
    ] {
        let mut table = Table::new({
            let mut header = vec!["algorithm".to_string()];
            header.extend(
                GraphClass::TABLE_CLASSES
                    .iter()
                    .map(|c| format!("{} (max-min)", c.label())),
            );
            header
        });

        let mut columns = Vec::new();
        for class in GraphClass::TABLE_CLASSES {
            let graph: std::sync::Arc<lb_graph::Graph> = class
                .build(n, 0xBEEF)
                .expect("table graph families always build")
                .into();
            let nodes = graph.node_count();
            let d = graph.max_degree();
            let speeds = Speeds::uniform(nodes);
            let initial = standard_initial_load(nodes, LOAD_PER_NODE, d as u64);
            let t = measure_balancing_time(&graph, &speeds, &initial, model, MAX_T)
                .expect("matching models always construct")
                .rounds();
            columns.push((class, graph, speeds, initial, t));
        }

        // Independent trials fan out across worker threads; the shared-Arc
        // graphs make per-trial config clones cheap.
        let mut batch = Vec::new();
        for discretizer in Discretizer::TABLE2 {
            for (_, graph, speeds, initial, t) in &columns {
                for seed in REPEAT_SEEDS.iter().take(repeats) {
                    batch.push(RunConfig {
                        graph: graph.clone(),
                        speeds: speeds.clone(),
                        initial: initial.clone(),
                        model,
                        discretizer,
                        rounds: *t,
                        seed: *seed,
                    });
                }
            }
        }
        let mut outcomes = run_all(&batch).into_iter();

        for discretizer in Discretizer::TABLE2 {
            let mut row = vec![discretizer.label().to_string()];
            for (class, graph, _, _, t) in &columns {
                let mut max_mins = Vec::new();
                let mut max_avgs = Vec::new();
                for _ in 0..repeats {
                    let outcome = outcomes
                        .next()
                        .expect("one outcome per scheduled trial")
                        .expect("table 2 combinations are all supported");
                    max_mins.push(outcome.max_min);
                    max_avgs.push(outcome.max_avg);
                }
                let summary = Summary::of(&max_mins);
                row.push(format_value(summary.mean));
                record.push(Measurement {
                    algorithm: discretizer.label().to_string(),
                    graph: format!("{} n={}", class.label(), graph.node_count()),
                    nodes: graph.node_count(),
                    max_degree: graph.max_degree(),
                    rounds: *t,
                    max_min: summary,
                    max_avg: Summary::of(&max_avgs),
                    notes: vec![("model".into(), model_label.into())],
                });
            }
            table.add_row(row);
        }

        markdown.push_str(&format!(
            "## {model_label} (n ≈ {n})\n\n{}\n",
            table.render()
        ));
    }

    markdown.push_str(
        "\nPaper reference (Table 2, asymptotic): alg1 = O(d) and alg2 = O(sqrt(d log n)) in both \
         matching models; round-down [37] = O(d log n / (1 - lambda)); randomized rounding [24] \
         depends on expansion. Alg1/alg2 are the only schemes whose bound is independent of n for \
         arbitrary, possibly non-regular graphs.\n",
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_rows() {
        let report = run(true);
        // 4 algorithms x 4 graph classes x 2 matching models.
        assert_eq!(report.record.measurements.len(), 32);
        assert!(report.markdown.contains("periodic matchings"));
        assert!(report.markdown.contains("random matchings"));
    }

    #[test]
    fn alg1_bound_holds_in_matching_models() {
        let report = run(true);
        for m in &report.record.measurements {
            if m.algorithm.starts_with("alg1") {
                let bound = 2.0 * m.max_degree as f64 + 2.0;
                assert!(
                    m.max_min.max <= bound + 1e-9,
                    "{}: {} > {}",
                    m.graph,
                    m.max_min.max,
                    bound
                );
            }
        }
    }
}
