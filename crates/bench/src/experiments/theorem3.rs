//! Experiment E3 — validates **Theorem 3**: the final discrepancy of
//! Algorithm 1 is at most `2·d·w_max + 2`, and scales linearly with both `d`
//! and `w_max` but not with `n`.
//!
//! Sweeps hypercube dimension (varying `d` and `n` together) and the maximum
//! task weight, and reports measured max-min discrepancy against the bound.

use super::ExperimentReport;
use crate::harness::{measure_balancing_time, ContinuousModel};
use lb_analysis::{format_value, linear_fit, ExperimentRecord, Measurement, Summary, Table};
use lb_core::continuous::Fos;
use lb_core::discrete::{DiscreteBalancer, FlowImitation, TaskPicker};
use lb_core::{InitialLoad, Speeds, Task, TaskId};
use lb_graph::{generators, AlphaScheme};
use lb_workloads::{pad_for_min_load, weighted_load, WeightModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the Theorem-3 workload on a hypercube of the given dimension:
/// `tasks_on_source` weighted tasks on node 0 plus the `d·w_max` per-node
/// padding required by part (2) of the theorem.
fn workload(dim: u32, w_max: u64, tasks_on_source: u64, seed: u64) -> (usize, InitialLoad) {
    let n = 1usize << dim;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_node = vec![0u64; n];
    per_node[0] = tasks_on_source;
    let model = if w_max == 1 {
        WeightModel::Unit
    } else {
        WeightModel::UniformRange { w_max }
    };
    let base = weighted_load(&per_node, model, &mut rng);
    // Force at least one task of weight exactly w_max so the reported w_max
    // is the configured one.
    let mut tasks = base.into_tasks();
    let next_id = tasks
        .iter()
        .flatten()
        .map(|t| t.id().0 + 1)
        .max()
        .unwrap_or(0);
    tasks[0].push(Task::new(TaskId(next_id), w_max));
    let base = InitialLoad::from_tasks(tasks);
    let speeds = Speeds::uniform(n);
    let padded = pad_for_min_load(&base, &speeds, dim as u64 * w_max);
    (n, padded)
}

/// Runs the experiment. `quick` shrinks the sweeps for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let dims: &[u32] = if quick { &[3, 4] } else { &[3, 4, 5, 6, 7] };
    let weights: &[u64] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };

    let mut record = ExperimentRecord::new(
        "E3-theorem3",
        "Theorem 3",
        "Algorithm 1 (FOS) on hypercubes: measured final max-min discrepancy vs the \
         2*d*w_max + 2 bound, sweeping the dimension d and the maximum task weight w_max, \
         with the d*w_max per-node padding of Theorem 3(2).",
    );
    let mut table = Table::new(vec![
        "dim (d)".into(),
        "n".into(),
        "w_max".into(),
        "T".into(),
        "max-min".into(),
        "bound 2d*w_max+2".into(),
        "dummies".into(),
    ]);

    let mut scaling_points_d = Vec::new();
    let mut scaling_points_w = Vec::new();

    for &dim in dims {
        for &w_max in weights {
            let (n, initial) = workload(dim, w_max, 40 * (1 << dim), 97);
            let speeds = Speeds::uniform(n);
            let graph: std::sync::Arc<lb_graph::Graph> = generators::hypercube(dim)
                .expect("hypercube dims are valid")
                .into();
            let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 60_000)
                .expect("FOS constructs")
                .rounds();
            let fos = Fos::new(graph.clone(), &speeds, AlphaScheme::MaxDegreePlusOne)
                .expect("FOS constructs");
            let mut alg1 = FlowImitation::new(fos, &initial, speeds.clone(), TaskPicker::Fifo)
                .expect("dimensions agree");
            alg1.run(t);
            let metrics = alg1.metrics();
            let bound = 2.0 * dim as f64 * w_max as f64 + 2.0;
            table.add_row(vec![
                dim.to_string(),
                n.to_string(),
                w_max.to_string(),
                t.to_string(),
                format_value(metrics.max_min),
                format_value(bound),
                alg1.dummy_created().to_string(),
            ]);
            record.push(Measurement {
                algorithm: "alg1(fos)".into(),
                graph: format!("hypercube({dim})"),
                nodes: n,
                max_degree: dim as usize,
                rounds: t,
                max_min: Summary::of(&[metrics.max_min]),
                max_avg: Summary::of(&[metrics.max_avg]),
                notes: vec![
                    ("w_max".into(), w_max.to_string()),
                    ("bound".into(), format_value(bound)),
                    ("dummies".into(), alg1.dummy_created().to_string()),
                ],
            });
            if w_max == *weights.last().expect("non-empty") {
                scaling_points_d.push((dim as f64, metrics.max_min));
            }
            if dim == *dims.last().expect("non-empty") {
                scaling_points_w.push((w_max as f64, metrics.max_min));
            }
        }
    }

    let (slope_d, _) = linear_fit(&scaling_points_d);
    let (slope_w, _) = linear_fit(&scaling_points_w);
    let markdown = format!(
        "# E3 — Theorem 3 bound check (Algorithm 1, FOS on hypercubes)\n\n{}\n\
         Linear-fit slope of max-min vs d (at largest w_max): {:.2}; vs w_max (at largest d): {:.2}.\n\
         The paper predicts at most linear growth in both and no dependence on n; the bound \
         2·d·w_max + 2 must never be exceeded and the `dummies` column must stay 0 (Theorem 3(2)).\n",
        table.render(),
        slope_d,
        slope_w
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_never_violated_and_no_dummies() {
        let report = run(true);
        for m in &report.record.measurements {
            let bound: f64 = m
                .notes
                .iter()
                .find(|(k, _)| k == "bound")
                .and_then(|(_, v)| v.parse().ok())
                .expect("bound note present");
            assert!(
                m.max_min.max <= bound + 1e-9,
                "{} w_max={:?}: {} > {}",
                m.graph,
                m.notes,
                m.max_min.max,
                bound
            );
            let dummies: u64 = m
                .notes
                .iter()
                .find(|(k, _)| k == "dummies")
                .and_then(|(_, v)| v.parse().ok())
                .expect("dummies note present");
            assert_eq!(dummies, 0, "{}: infinite source must stay unused", m.graph);
        }
    }
}
