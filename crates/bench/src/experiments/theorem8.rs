//! Experiment E4 — validates **Theorem 8**: the final max-min discrepancy of
//! Algorithm 2 grows like `O(√(d·log n))`, i.e. much slower than Algorithm
//! 1's `Θ(d)` for large degrees.
//!
//! Sweeps the degree of random regular graphs at fixed `n` and records the
//! measured discrepancy of Algorithm 2 next to Algorithm 1 and to the
//! `√(d·ln n)` reference curve.

use super::{ExperimentReport, REPEAT_SEEDS};
use crate::harness::{measure_balancing_time, run_once, ContinuousModel, Discretizer, RunConfig};
use lb_analysis::{correlation, format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_core::{InitialLoad, Speeds};
use lb_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment. `quick` shrinks the sweep for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let n = if quick { 64 } else { 1024 };
    let degrees: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 32, 64] };
    let repeats = if quick { 1 } else { 3 };

    let mut record = ExperimentRecord::new(
        "E4-theorem8",
        "Theorem 8",
        "Algorithm 2 (FOS) on random d-regular graphs at fixed n: measured final max-min \
         discrepancy vs sqrt(d ln n) and vs Algorithm 1, sweeping d. Padding per node is \
         ceil(d/4) + 2*ceil(sqrt(d ln n)) tokens (the Theorem 8(2) condition).",
    );
    let mut table = Table::new(vec![
        "d".into(),
        "n".into(),
        "T".into(),
        "alg2 max-min".into(),
        "alg1 max-min".into(),
        "sqrt(d ln n)".into(),
        "alg1 bound 2d+2".into(),
    ]);

    let mut alg2_points = Vec::new();

    for &d in degrees {
        let mut rng = StdRng::seed_from_u64(d as u64);
        let graph: std::sync::Arc<lb_graph::Graph> = generators::random_regular(n, d, &mut rng)
            .expect("regular graph builds")
            .into();
        let nodes = graph.node_count();
        let speeds = Speeds::uniform(nodes);
        let reference = (d as f64 * (nodes as f64).ln()).sqrt();
        let pad = (d as u64).div_ceil(4) + 2 * reference.ceil() as u64;
        let mut counts = vec![pad; nodes];
        counts[0] += 32 * nodes as u64;
        let initial = InitialLoad::from_token_counts(counts);
        let t = measure_balancing_time(&graph, &speeds, &initial, ContinuousModel::Fos, 60_000)
            .expect("FOS constructs")
            .rounds();

        let run_algo = |discretizer, seed| {
            run_once(&RunConfig {
                graph: graph.clone(),
                speeds: speeds.clone(),
                initial: initial.clone(),
                model: ContinuousModel::Fos,
                discretizer,
                rounds: t,
                seed,
            })
            .expect("supported combination")
        };

        let mut alg2_vals = Vec::new();
        for seed in REPEAT_SEEDS.iter().take(repeats) {
            alg2_vals.push(run_algo(Discretizer::Alg2, *seed).max_min);
        }
        let alg1_val = run_algo(Discretizer::Alg1, 0).max_min;
        let alg2_summary = Summary::of(&alg2_vals);
        alg2_points.push((reference, alg2_summary.mean));

        table.add_row(vec![
            d.to_string(),
            nodes.to_string(),
            t.to_string(),
            format_value(alg2_summary.mean),
            format_value(alg1_val),
            format_value(reference),
            format_value(2.0 * d as f64 + 2.0),
        ]);
        record.push(Measurement {
            algorithm: "alg2(fos)".into(),
            graph: format!("random_regular(n={nodes}, d={d})"),
            nodes,
            max_degree: d,
            rounds: t,
            max_min: alg2_summary,
            max_avg: Summary::of(&[alg1_val]),
            notes: vec![
                ("sqrt_d_ln_n".into(), format_value(reference)),
                ("alg1_max_min".into(), format_value(alg1_val)),
            ],
        });
    }

    let corr = correlation(&alg2_points);
    let markdown = format!(
        "# E4 — Theorem 8 scaling check (Algorithm 2, FOS on random regular graphs)\n\n{}\n\
         Correlation between alg2's measured discrepancy and the sqrt(d ln n) reference: {:.2}.\n\
         The paper predicts alg2 = O(sqrt(d log n)) — sub-linear in d — while alg1's guarantee is \
         Θ(d); for large d alg2 should therefore end below alg1's 2d+2 bound by a growing margin.\n",
        table.render(),
        corr
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_one_row_per_degree() {
        let report = run(true);
        assert_eq!(report.record.measurements.len(), 2);
        for m in &report.record.measurements {
            // Algorithm 2's discrepancy should stay well below the trivial
            // 2d + 2 deterministic bound on these small instances.
            assert!(m.max_min.mean <= 2.0 * m.max_degree as f64 + 2.0);
        }
    }
}
