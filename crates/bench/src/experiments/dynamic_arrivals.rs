//! Experiment E9 — **dynamic arrivals**: discrepancy behaviour under
//! sustained load, beyond the paper's static-drain setting.
//!
//! The paper measures a fixed initial load vector draining to balance. This
//! experiment runs Algorithm 1 (FOS twin) under four workloads on the same
//! graph family:
//!
//! * `static_drain` — the paper's setting (control);
//! * `poisson` — Poisson task arrivals on random nodes with matching
//!   per-node service capacity (sustained equilibrium);
//! * `hotspot` — the same arrival volume concentrated adversarially on one
//!   node;
//! * `poisson+rewire` — Poisson arrivals across an edge-churn event that
//!   rebuilds the (random-regular) topology mid-run.
//!
//! The headline observation: the max-min discrepancy stays `O(d)`-bounded
//! under sustained load and across churn — the flow-imitation invariant is
//! per-round, so it does not rely on the workload ever draining.

use super::{ExperimentReport, REPEAT_SEEDS};
use crate::dynamic::{RoundSample, Session};
use lb_analysis::{format_value, ExperimentRecord, Measurement, Summary, Table};
use lb_workloads::{
    AlgorithmSpec, ArrivalSpec, ChurnEvent, ChurnKind, InitialSpec, ModelSpec, PadSpec, Scenario,
    ServiceSpec, SpeedSpec, TokenDistribution, TopologySpec,
};

/// One workload column of the experiment.
struct Workload {
    label: &'static str,
    arrivals: ArrivalSpec,
    completions: ServiceSpec,
    churn: Vec<ChurnEvent>,
}

fn workloads(n: usize, rounds: usize) -> Vec<Workload> {
    let rate = 0.5;
    vec![
        Workload {
            label: "static_drain",
            arrivals: ArrivalSpec::None,
            completions: ServiceSpec::None,
            churn: Vec::new(),
        },
        Workload {
            label: "poisson",
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: rate,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
        },
        Workload {
            label: "hotspot",
            arrivals: ArrivalSpec::HotSpot {
                rate: rate * n as f64,
                node: 0,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: Vec::new(),
        },
        Workload {
            label: "poisson+rewire",
            arrivals: ArrivalSpec::Poisson {
                rate_per_node: rate,
                max_weight: 1,
            },
            completions: ServiceSpec::Uniform {
                weight_per_speed: 1,
            },
            churn: vec![ChurnEvent {
                round: rounds / 2,
                kind: ChurnKind::Rewire { seed: 0xC4A7 },
            }],
        },
    ]
}

/// Peak discrepancy over the second half of the trajectory (after burn-in).
fn steady_peak(trajectory: &[RoundSample], rounds: usize) -> f64 {
    trajectory
        .iter()
        .filter(|s| s.round >= rounds / 2)
        .map(|s| s.max_min)
        .fold(0.0, f64::max)
}

/// Runs the experiment. `quick` shrinks sizes and repeats for tests/benches.
pub fn run(quick: bool) -> ExperimentReport {
    let (n, rounds, repeats) = if quick { (64, 150, 1) } else { (256, 600, 3) };

    let mut record = ExperimentRecord::new(
        "E9-dynamic-arrivals",
        "beyond the paper: sustained load",
        "Algorithm 1 (FOS twin) on a random 4-regular expander under dynamic workloads: \
         Poisson arrivals with matching service capacity, an adversarial hot-spot, and \
         edge churn, against the paper's static-drain control. Discrepancy sampled over \
         the trajectory; the steady-state peak is taken over the second half of the run.",
    );
    let mut markdown = String::from("# E9 — dynamic arrivals (sustained load)\n\n");
    let mut table = Table::new(vec![
        "workload".into(),
        "final max-min (mean)".into(),
        "steady peak max-min (mean)".into(),
        "final real weight (mean)".into(),
        "dummy created (mean)".into(),
    ]);

    for workload in workloads(n, rounds) {
        let mut finals = Vec::new();
        let mut final_avgs = Vec::new();
        let mut peaks = Vec::new();
        let mut real_weights = Vec::new();
        let mut dummies = Vec::new();
        for &seed in REPEAT_SEEDS.iter().take(repeats) {
            let scenario = Scenario {
                name: format!("dynamic_arrivals_{}", workload.label),
                seed,
                rounds,
                sample_every: (rounds / 30).max(1),
                algorithm: AlgorithmSpec::Alg1,
                model: ModelSpec::Fos,
                topology: TopologySpec {
                    family: "expander".into(),
                    target_n: n,
                },
                speeds: SpeedSpec::Uniform,
                initial: InitialSpec {
                    distribution: TokenDistribution::SingleSource { source: 0 },
                    tokens_per_node: 8,
                    pad: PadSpec::Degree,
                },
                arrivals: workload.arrivals,
                completions: workload.completions,
                churn: workload.churn.clone(),
                shards: 1,
                federation: 1,
            };
            let outcome = Session::from_scenario(&scenario)
                .run(|_| {})
                .expect("experiment scenarios are valid");
            finals.push(outcome.last().max_min);
            final_avgs.push(outcome.last().max_avg);
            peaks.push(steady_peak(&outcome.trajectory, rounds));
            real_weights.push(outcome.last().real_weight);
            dummies.push(outcome.dummy_created as f64);
        }
        let final_summary = Summary::of(&finals);
        let peak_summary = Summary::of(&peaks);
        let weight_summary = Summary::of(&real_weights);
        let dummy_summary = Summary::of(&dummies);
        table.add_row(vec![
            workload.label.to_string(),
            format_value(final_summary.mean),
            format_value(peak_summary.mean),
            format_value(weight_summary.mean),
            format_value(dummy_summary.mean),
        ]);
        record.push(Measurement {
            algorithm: format!("alg1(fos) + {}", workload.label),
            graph: format!("expander(d=4) n={n}"),
            nodes: n,
            max_degree: 4,
            rounds,
            max_min: final_summary,
            max_avg: Summary::of(&final_avgs),
            notes: vec![
                ("workload".into(), workload.label.into()),
                (
                    "steady_peak_max_min".into(),
                    format_value(peak_summary.mean),
                ),
                ("dummy_created".into(), format_value(dummy_summary.mean)),
            ],
        });
    }

    markdown.push_str(&format!(
        "## Algorithm 1 (FOS) on expander(d=4), n = {n}, {rounds} rounds, {repeats} seed(s)\n\n{}\n",
        table.render()
    ));
    markdown.push_str(
        "\nReading: sustained Poisson load and even an adversarial hot-spot keep the \
         max-min discrepancy in the same O(d) regime as the paper's static drain — the \
         flow-imitation deviation bound (Observation 4) is per-round and workload-\
         independent. Edge churn resets the imitation ledger mid-run without breaking \
         the bound for the remaining epoch.\n",
    );

    ExperimentReport { markdown, record }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_workloads() {
        let report = run(true);
        assert_eq!(report.record.measurements.len(), 4);
        assert!(report.markdown.contains("static_drain"));
        assert!(report.markdown.contains("poisson+rewire"));
        // The control (static drain) obeys the Theorem 3 bound outright.
        let control = &report.record.measurements[0];
        assert!(control.max_min.max <= 2.0 * 4.0 + 2.0 + 1e-9);
        // Sustained load stays in a comparable O(d) regime (generous factor
        // to absorb in-flight arrivals at sample time).
        for m in &report.record.measurements {
            assert!(
                m.max_min.max <= 8.0 * 4.0 + 2.0,
                "{}: {}",
                m.algorithm,
                m.max_min.max
            );
        }
    }
}
